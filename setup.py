"""Setuptools shim so editable installs work without network access."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Optimizing GPU Deep Learning Operators with "
        "Polyhedral Scheduling Constraint Injection' (CGO 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
