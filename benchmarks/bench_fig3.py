"""Regenerate Fig. 3: the influence constraint tree of the running example.

Fig. 3(b) shows two prioritized branches: a fused variant constraining both
statements on the leading dimensions with the vectorization constraints on
j, and a relaxed variant keeping only the vectorization constraints.  The
artifact prints both the automatically built tree (Algorithm 2 + builder)
and the hand-built tree matching the figure's exact constraints.

The benchmark times Algorithm 2 + tree construction.
"""

from conftest import write_artifact

from repro.influence import (
    InfluenceNode,
    InfluenceTree,
    build_influence_tree,
    build_scenarios,
    theta_iter,
)
from repro.ir.examples import running_example
from repro.solver.problem import var


def hand_built_fig3_tree() -> InfluenceTree:
    """The tree of Fig. 3(b), written out by hand.

    Branch 1 (priority): dims 0-1 equate X and Y coefficients (fusion) and
    zero j's coefficient; dim 2 pins j's coefficient to exactly 1.
    Branch 2: only the vectorization constraints on j.
    """
    tree = InfluenceTree()
    # Y's iterators are (i, j, k): j is index 1.  X's are (i, k).
    fused0 = tree.root.add_child(InfluenceNode(label="fused/d0", constraints=[
        (var(theta_iter("X", 0, 0)) - var(theta_iter("Y", 0, 0))).eq(0),  # i
        (var(theta_iter("X", 0, 1)) - var(theta_iter("Y", 0, 2))).eq(0),  # k
        var(theta_iter("Y", 0, 1)).eq(0),                                 # j
    ]))
    fused1 = fused0.add_child(InfluenceNode(label="fused/d1", constraints=[
        (var(theta_iter("X", 1, 0)) - var(theta_iter("Y", 1, 0))).eq(0),
        (var(theta_iter("X", 1, 1)) - var(theta_iter("Y", 1, 2))).eq(0),
        var(theta_iter("Y", 1, 1)).eq(0),
    ]))
    fused1.add_child(InfluenceNode(label="fused/d2-vec", mark_vector=True,
                                   vector_width=4, constraints=[
        var(theta_iter("Y", 2, 1)).eq(1),
    ]))
    solo0 = tree.root.add_child(InfluenceNode(label="solo/d0", constraints=[
        var(theta_iter("Y", 0, 1)).eq(0),
    ]))
    solo1 = solo0.add_child(InfluenceNode(label="solo/d1", constraints=[
        var(theta_iter("Y", 1, 1)).eq(0),
    ]))
    solo1.add_child(InfluenceNode(label="solo/d2-vec", mark_vector=True,
                                  vector_width=4, constraints=[
        var(theta_iter("Y", 2, 1)).eq(1),
    ]))
    tree.validate()
    return tree


def test_fig3_artifact(benchmark, out_dir):
    kernel = running_example(16)
    auto_tree = benchmark.pedantic(lambda: build_influence_tree(kernel),
                                   rounds=1, iterations=1)
    hand_tree = hand_built_fig3_tree()
    scenarios = build_scenarios(kernel)

    parts = ["FIG. 3 — influence constraint tree for the running example",
             "",
             "Influenced dimension scenarios (Algorithm 2):"]
    for name, scens in scenarios.items():
        for s in scens:
            parts.append(f"  {name}: dims={s.dims} score={s.score:.2f} "
                         f"vector_width={s.vector_width}")
    parts += ["", "Automatically built tree (Algorithm 2 + Section V builder):",
              auto_tree.pretty(), "",
              "Hand-built tree matching Fig. 3(b):",
              hand_tree.pretty()]
    write_artifact("fig3.txt", "\n".join(parts))

    assert auto_tree.n_nodes() > 0
    assert hand_tree.n_nodes() == 6
    # The figure's vectorization target: j pinned at the innermost dim.
    assert any(s.innermost == "j" for s in scenarios["Y"])


def test_bench_tree_construction(benchmark):
    kernel = running_example(64)

    def build():
        return build_influence_tree(kernel)

    tree = benchmark(build)
    assert tree.n_nodes() > 0
