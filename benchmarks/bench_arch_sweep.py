"""Architecture sensitivity sweep.

MindSpore's motivation (Fig. 1(a)) is retargetability "from edge to
cloud"; this bench reruns a representative operator subset on three device
models and reports how the influenced speedup shifts: bandwidth-rich parts
shrink the coalescing gap, bandwidth-starved edge parts amplify it.
"""

from conftest import seed, write_artifact

import math

from repro.eval import EvaluationConfig, evaluate_network
from repro.gpu.arch import A100, EDGE, V100


def _geomean(values):
    values = [v for v in values if v > 0]
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_arch_sweep_artifact(benchmark, out_dir):
    networks = ("ResNet50", "BERT")

    def sweep():
        rows = []
        for arch in (V100, A100, EDGE):
            config = EvaluationConfig(seed=seed(), limit_per_network=5,
                                      arch=arch, sample_blocks=4)
            speedups = []
            for network in networks:
                result = evaluate_network(network, config)
                speedups.append(result.speedup("infl"))
            rows.append((arch.name, dict(zip(networks, speedups))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["ARCHITECTURE SWEEP — influenced speedup over the baseline "
             "(5 ops/network)",
             f"{'device':<20s}" + "".join(f"{n:>12s}" for n in networks)
             + f"{'geomean':>10s}"]
    for name, per_network in rows:
        values = [per_network[n] for n in networks]
        lines.append(f"{name:<20s}"
                     + "".join(f"{v:>11.2f}x" for v in values)
                     + f"{_geomean(values):>9.2f}x")
    write_artifact("arch_sweep.txt", "\n".join(lines))

    by_device = {name: per for name, per in rows}
    # The transpose-driven ResNet gap must persist on every device.
    for name in by_device:
        assert by_device[name]["ResNet50"] > 1.2
