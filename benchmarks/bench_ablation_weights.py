"""Ablation of the Algorithm 2 weight vector (Section V).

The paper reports that prioritizing vector-type *stores* over loads
(w1=5, w2=3, other weights 1) works best.  This bench sweeps alternative
weightings over a mixed operator set and reports the geomean influenced
speedup each weighting achieves, regenerating the design-choice evidence.
"""

from conftest import write_artifact

import math

from repro.influence.scenarios import CostWeights
from repro.pipeline import AkgPipeline
from repro.workloads import operators

WEIGHTINGS = {
    "paper (w1=5, w2=3)": CostWeights(w1=5, w2=3),
    "loads first (w1=3, w2=5)": CostWeights(w1=3, w2=5),
    "stores only (w1=5, w2=0)": CostWeights(w1=5, w2=0),
    "flat (all 1)": CostWeights(w1=1, w2=1),
    "no stride terms (w3=w4=0)": CostWeights(w1=5, w2=3, w3=0, w4=0),
}


def _operator_set():
    return [
        operators.layout_conversion_op("ab_conv", 2, 64, 64, 64),
        operators.layout_conversion_op("ab_conv_rev", 2, 64, 64, 64,
                                       to_nhwc=False),
        operators.elementwise_chain_op("ab_ew", rows=4096, cols=64, length=2),
        operators.reduce_producer_op("ab_red", rows=8192, red=16),
        operators.broadcast_bias_op("ab_bias", rows=4096, cols=64),
    ]


def _geomean_speedup(weights: CostWeights) -> float:
    pipe = AkgPipeline(weights=weights, sample_blocks=4)
    speedups = []
    for kernel in _operator_set():
        isl = pipe.compile_and_measure(kernel, "isl").time
        infl = pipe.compile_and_measure(kernel, "infl").time
        speedups.append(isl / infl)
    return math.exp(sum(math.log(s) for s in speedups) / len(speedups))


def test_ablation_artifact(benchmark, out_dir):
    def sweep():
        return [(label, _geomean_speedup(weights))
                for label, weights in WEIGHTINGS.items()]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["WEIGHTS ABLATION (Section V): geomean influenced speedup over "
             "the baseline on a mixed operator set",
             f"{'weighting':<28s}geomean speedup"]
    for label, speedup in rows:
        lines.append(f"{label:<28s}{speedup:10.3f}x")
    write_artifact("ablation_weights.txt", "\n".join(lines))

    by_label = dict(rows)
    # The paper's configuration must be at least as good as load-priority.
    assert by_label["paper (w1=5, w2=3)"] >= \
        by_label["loads first (w1=3, w2=5)"] - 1e-9


def test_bench_single_weighting(benchmark):
    kernel = operators.layout_conversion_op("ab_bench", 2, 64, 32, 32)
    pipe = AkgPipeline(sample_blocks=2)

    def run():
        return pipe.compile_and_measure(kernel, "infl").time

    time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert time > 0
