"""Regenerate Fig. 2: the running example's three code versions.

(a) the input fused operator (pseudo-code of the kernel builder),
(b) the baseline (isl-style) result: distributed nests, original loop
    order — the inefficient D[k][i][j] access,
(c) the influenced result: fused, outer forall, innermost forvec.

The benchmark times the full influenced compile of the running example.
"""

from conftest import write_artifact

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.codegen.ast import render_ast
from repro.influence import build_influence_tree
from repro.ir.examples import running_example
from repro.pipeline import AkgPipeline
from repro.schedule import InfluencedScheduler


def _source_listing(kernel) -> str:
    lines = []
    for s in kernel.statements:
        depth = 0
        for it in s.iterators:
            lines.append("  " * depth + f"for ({it} = 0; {it} < N; {it}++)")
            depth += 1
        reads = ", ".join(str(a) for a in s.reads)
        writes = ", ".join(str(a) for a in s.writes)
        lines.append("  " * depth + f"{s.name}: {writes} = f({reads});")
    return "\n".join(lines)


def test_fig2_artifact(benchmark, out_dir):
    kernel = running_example(16)
    pipe = AkgPipeline(sample_blocks=2)

    parts = ["FIG. 2(a) — input fused operator:", _source_listing(kernel), ""]

    isl = benchmark.pedantic(lambda: pipe.compile(kernel, "isl"),
                             rounds=1, iterations=1)
    parts += ["FIG. 2(b) — baseline (isl-style) scheduling, distributed:",
              isl.signature(), ""]

    infl = pipe.compile(kernel, "infl")
    parts += ["FIG. 2(c) — influenced scheduling (fused, forvec innermost):",
              infl.signature()]
    text = "\n".join(parts)
    write_artifact("fig2.txt", text)

    # Shape assertions mirroring the paper's points.
    assert isl.n_launches == 2, "baseline must distribute the two nests"
    assert infl.n_launches == 1, "influenced result must fuse"
    assert "forvec" in infl.signature(), "innermost loop must be vectorized"
    assert "forvec" not in isl.signature()


def test_bench_influenced_compile(benchmark):
    kernel = running_example(16)

    def compile_influenced():
        scheduler = InfluencedScheduler(kernel)
        tree = build_influence_tree(kernel)
        schedule = scheduler.schedule(tree)
        ast = generate_ast(kernel, schedule)
        ast = vectorize(ast, kernel, schedule, scheduler.relations)
        return map_to_gpu(kernel, ast, schedule)

    mapped = benchmark(compile_influenced)
    assert mapped.kernel.name == kernel.name
