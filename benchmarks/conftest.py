"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_TABLE2_LIMIT`` — operators per network for the Table II bench
  (default 6 for a quick run; set to ``0``/``full`` for the paper's full
  counts, ~10 minutes).
* ``REPRO_SEED`` — workload generator seed (default 0).

Every bench writes its regenerated table/figure to ``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def table2_limit() -> int | None:
    raw = os.environ.get("REPRO_TABLE2_LIMIT", "6").strip().lower()
    if raw in ("0", "full", "all", ""):
        return None
    return int(raw)


def seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n--- {name} ---")
    print(text)
    return path
