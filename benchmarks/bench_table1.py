"""Regenerate Table I (target end-to-end workloads).

The table itself is a static registry; the benchmark measures suite
generation (the part of the workload substrate that replaces MindSpore's
ModelZoo extraction).
"""

from conftest import seed, write_artifact

from repro.eval import format_table1
from repro.workloads import NETWORKS, generate_network_suite


def test_table1_artifact(benchmark, out_dir):
    text = benchmark(format_table1)
    write_artifact("table1.txt", text)
    assert "BERT" in text and "VGG16" in text
    assert len(text.splitlines()) == 3 + len(NETWORKS)


def test_bench_suite_generation(benchmark):
    def generate_all():
        return {name: generate_network_suite(name, seed=seed())
                for name in NETWORKS}

    suites = benchmark(generate_all)
    assert sum(len(s) for s in suites.values()) == \
        sum(spec.total_operators for spec in NETWORKS.values())
