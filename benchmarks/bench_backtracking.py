"""Backtracking statistics (Section IV-B's design validation).

The paper argues constraint injection is the right mechanism because, on
AI/DL fused operators, the backtracking ladder rarely activates ("we could
observe only few activation of the backtracking").  This bench schedules a
sampled workload under influence and reports how often each ladder step
fired per operator.
"""

from conftest import seed, write_artifact

from repro.deps.analysis import compute_dependences
from repro.influence import build_influence_tree
from repro.obs import MetricsRegistry, Obs, Tracer, use_obs
from repro.schedule import InfluencedScheduler
from repro.solver.dedup import SolveCache, use_solve_cache
from repro.solver.warmstart import WarmStartPool, use_warm_pool
from repro.workloads import NETWORKS, generate_network_suite


def _aggregate():
    totals = {
        "operators": 0,
        "ilp_solves": 0,
        "dimensions": 0,
        "coincidence_retries": 0,
        "sibling_fallbacks": 0,
        "permutability_drops": 0,
        "ancestor_backtracks": 0,
        "scc_separations": 0,
        "influence_abandoned": 0,
    }
    obs = Obs(Tracer(enabled=False), MetricsRegistry())
    for network in NETWORKS:
        for _, kernel in generate_network_suite(network, seed=seed(), limit=4):
            scheduler = InfluencedScheduler(kernel)
            # Influenced and plain construction of one operator share a
            # solver reuse scope, mirroring the pipeline's per-operator
            # scoping, so the artifact reports realistic reuse rates.
            with use_obs(obs), use_solve_cache(SolveCache()), \
                    use_warm_pool(WarmStartPool()):
                scheduler.schedule(build_influence_tree(kernel))
                InfluencedScheduler(kernel).schedule()
            stats = scheduler.stats
            totals["operators"] += 1
            totals["ilp_solves"] += stats.ilp_solves
            totals["dimensions"] += stats.dimensions_built
            totals["coincidence_retries"] += stats.coincidence_retries
            totals["sibling_fallbacks"] += stats.sibling_fallbacks
            totals["permutability_drops"] += stats.permutability_drops
            totals["ancestor_backtracks"] += stats.ancestor_backtracks
            totals["scc_separations"] += stats.scc_separations
            totals["influence_abandoned"] += int(stats.influence_abandoned)
    counters = obs.metrics.counters
    for name in ("solver.warmstart.hits", "solver.warmstart.misses",
                 "solver.dedup.hits", "solver.dedup.misses"):
        totals[name.replace("solver.", "").replace(".", "_")] = \
            int(counters.get(name, 0))
    return totals


def test_backtracking_artifact(benchmark, out_dir):
    totals = benchmark.pedantic(_aggregate, rounds=1, iterations=1)
    n = totals["operators"]
    lines = [
        "BACKTRACKING ACTIVATIONS under influenced scheduling "
        "(sampled suites, 4 ops/network)",
        f"{'counter':<24s}{'total':>8s}{'per operator':>14s}",
    ]
    for key in ("ilp_solves", "dimensions", "coincidence_retries",
                "sibling_fallbacks", "permutability_drops",
                "ancestor_backtracks", "scc_separations",
                "influence_abandoned"):
        lines.append(f"{key:<24s}{totals[key]:>8d}{totals[key] / n:>14.2f}")
    for label, prefix in (("warm-start", "warmstart"), ("dedup", "dedup")):
        hits = totals[f"{prefix}_hits"]
        misses = totals[f"{prefix}_misses"]
        rate = hits / (hits + misses) * 100 if hits + misses else 0.0
        lines.append(f"solver {label}: {hits} hits / {misses} misses "
                     f"({rate:.1f}% hit rate)")
    write_artifact("backtracking.txt", "\n".join(lines))

    # The paper's claim: fallbacks are rare on AI/DL operators.
    assert totals["ancestor_backtracks"] <= n
    assert totals["influence_abandoned"] <= n * 0.2


def test_bench_influenced_scheduling(benchmark):
    _, kernel = generate_network_suite("BERT", seed=seed(), limit=3)[1]
    relations = compute_dependences(kernel)

    def run():
        scheduler = InfluencedScheduler(kernel, relations=relations)
        return scheduler.schedule(build_influence_tree(kernel))

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.is_complete()
