"""Simulator fast-path benchmarks: fast vs reference ``simulate_kernel``.

The fast interpreter (:mod:`repro.gpu.fastpath`) must be a pure
performance change: bitwise-identical :class:`KernelProfile` counters at
a fraction of the reference backend's latency.  Each family benchmarks
both backends on the same mapped kernel so the BENCH_* trend tracks the
two latencies (and their ratio) over time, and the speedup test enforces
the acceptance floor — >= 5x on the transpose and reduction families,
where per-warp signature memoization pays off the most.

Parity itself is asserted here too (cheap, and a benchmark that drifted
from the reference would otherwise publish meaningless timings); the
exhaustive parity matrix lives in tests/test_gpu_fastpath.py.
"""

import time

import pytest
from conftest import write_artifact

from repro.codegen import generate_ast, map_to_gpu, vectorize
from repro.gpu.simulator import simulate_kernel
from repro.influence import build_influence_tree
from repro.schedule import InfluencedScheduler
from repro.workloads import operators

SAMPLE_BLOCKS = 8

# family -> (kernel factory, influenced, acceptance floor for fast/ref).
# The transpose runs the *natural* (uninfluenced) mapping: its strided
# warp accesses are exactly the repeated-signature workload the fast
# path memoizes.  The elementwise family is dominated by short guard-free
# vector bodies, so its floor is lower.
FAMILIES = {
    "elementwise": (lambda: operators.elementwise_chain_op(
        "bench_sim_ew", rows=4096, cols=64), False, 1.5),
    "transpose": (lambda: operators.transpose2d_op(
        "bench_sim_tr", rows=2048, cols=2048), False, 5.0),
    "reduction": (lambda: operators.reduce_producer_op(
        "bench_sim_red", rows=8192, red=32), False, 5.0),
}

_COMPILED: dict = {}


def _compiled(family):
    if family not in _COMPILED:
        factory, influenced, _ = FAMILIES[family]
        kernel = factory()
        scheduler = InfluencedScheduler(kernel)
        tree = build_influence_tree(kernel) if influenced else None
        schedule = scheduler.schedule(tree)
        ast = generate_ast(kernel, schedule)
        ast = vectorize(ast, kernel, schedule, scheduler.relations,
                        enable=True)
        _COMPILED[family] = map_to_gpu(kernel, ast, schedule,
                                       max_threads=256)
    return _COMPILED[family]


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("sim", ["fast", "reference"])
@pytest.mark.parametrize("family", list(FAMILIES))
def test_bench_simulate(benchmark, family, sim):
    """Per-backend simulate_kernel latency (one trend series each)."""
    mapped = _compiled(family)
    profile = benchmark.pedantic(
        lambda: simulate_kernel(mapped, sample_blocks=SAMPLE_BLOCKS, sim=sim),
        rounds=3, iterations=1, warmup_rounds=1)
    reference = simulate_kernel(mapped, sample_blocks=SAMPLE_BLOCKS,
                                sim="reference")
    assert profile.counters() == reference.counters()


def test_simulator_speedup():
    """The acceptance floor: fast/reference latency ratio per family.

    Warm measurements (best of 3 after a warmup run) — the fast backend's
    signature caches persist on the mapped kernel, which is exactly how
    the evaluation pipeline re-simulates operators."""
    lines = [f"simulate_kernel fast vs reference "
             f"(sample_blocks={SAMPLE_BLOCKS}, best of 3, warm):",
             f"  {'family':<14}{'reference ms':>14}{'fast ms':>10}"
             f"{'speedup':>9}{'floor':>7}"]
    failures = []
    for family, (_, _, floor) in FAMILIES.items():
        mapped = _compiled(family)
        run_fast = lambda: simulate_kernel(  # noqa: E731
            mapped, sample_blocks=SAMPLE_BLOCKS, sim="fast")
        run_ref = lambda: simulate_kernel(  # noqa: E731
            mapped, sample_blocks=SAMPLE_BLOCKS, sim="reference")
        run_fast()  # warm the per-kernel signature caches
        fast_s, fast_profile = _best_of(run_fast)
        ref_s, ref_profile = _best_of(run_ref)
        assert fast_profile.counters() == ref_profile.counters()
        speedup = ref_s / fast_s if fast_s else float("inf")
        lines.append(f"  {family:<14}{ref_s * 1e3:>14.1f}"
                     f"{fast_s * 1e3:>10.1f}{speedup:>8.1f}x"
                     f"{floor:>6.1f}x")
        if speedup < floor:
            failures.append(f"{family}: {speedup:.1f}x < {floor:.1f}x")
    write_artifact("simulator_speedup.txt", "\n".join(lines))
    assert not failures, "; ".join(failures)
