"""Scheduler performance: cost of influenced vs plain scheduling.

Not a paper table, but the implicit compile-time story: constraint
injection must not blow up scheduling time.  Benchmarks the per-kernel
scheduling cost for increasing statement counts and nest depths.
"""

import pytest
from conftest import write_artifact

from repro.deps.analysis import compute_dependences
from repro.influence import build_influence_tree
from repro.ir.examples import elementwise_chain, matmul, running_example
from repro.obs import MetricsRegistry, Obs, Tracer, use_obs
from repro.schedule import InfluencedScheduler
from repro.workloads import operators


CASES = {
    "matmul_3d": lambda: matmul(32),
    "running_example": lambda: running_example(32),
    "chain_len2": lambda: elementwise_chain(32, 2),
    "chain_len4": lambda: elementwise_chain(32, 4),
    "layout_conversion_4d": lambda: operators.layout_conversion_op(
        "perf_conv", 2, 16, 8, 8),
}


@pytest.mark.parametrize("case", list(CASES))
def test_bench_plain_scheduling(benchmark, case):
    kernel = CASES[case]()
    relations = compute_dependences(kernel)

    def run():
        return InfluencedScheduler(kernel, relations=relations).schedule()

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.is_complete()


@pytest.mark.parametrize("case", list(CASES))
def test_bench_influenced_scheduling(benchmark, case):
    kernel = CASES[case]()
    relations = compute_dependences(kernel)
    tree = build_influence_tree(kernel)

    def run():
        return InfluencedScheduler(kernel, relations=relations).schedule(tree)

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.is_complete()


def test_bench_influenced_scheduling_instrumented(benchmark):
    """Influenced scheduling with full observability (spans + metrics)
    installed as the ambient handle.  The plain `test_bench_influenced_*`
    cases above run against the disabled default handle, so comparing the
    two in BENCH_* runs bounds the instrumentation overhead (the budget:
    disabled tracing must stay within noise, enabled well under 2x)."""
    kernel = CASES["running_example"]()
    relations = compute_dependences(kernel)
    tree = build_influence_tree(kernel)
    obs = Obs(Tracer(enabled=True), MetricsRegistry())

    def run():
        with use_obs(obs):
            return InfluencedScheduler(kernel,
                                       relations=relations).schedule(tree)

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.is_complete()
    assert obs.metrics.counters["solver.lp_solves"] > 0
    assert any(s.name == "scheduler.schedule" for s in obs.tracer.roots)


def test_bench_influenced_scheduling_journaled(benchmark):
    """Influenced scheduling with the provenance journal enabled (the
    `repro explain` recording path).  The matching plain case is
    `test_bench_influenced_scheduling[running_example]`; the acceptance
    budget for journal recording is <= 5% over the disabled-journal run,
    since a disabled journal costs one global read + an `enabled` check
    per instrumented site."""
    from repro.obs.provenance import use_journal

    kernel = CASES["running_example"]()
    relations = compute_dependences(kernel)
    tree = build_influence_tree(kernel)
    journals = []

    def run():
        with use_journal() as journal:
            schedule = InfluencedScheduler(
                kernel, relations=relations).schedule(tree)
        journals.append(journal)
        return schedule

    schedule = benchmark.pedantic(run, rounds=2, iterations=1)
    assert schedule.is_complete()
    assert any(e["kind"] == "dimension" for e in journals[-1].events)


@pytest.mark.parametrize("supervised", ["off", "on"])
def test_bench_supervision_overhead(benchmark, supervised):
    """Parallel evaluation with the worker supervisor's heartbeat/timeout
    machinery disabled (`off`: no task timeout, so the loop only waits on
    results) vs fully armed (`on`: heartbeat checks + timeout accounting
    every poll).  Both run the same 2-operator LSTM slice on 2 workers;
    the acceptance budget is that `on` stays within noise of `off`, since
    supervision adds only a clock read per poll tick and a shared-memory
    write per variant on the worker side."""
    from repro.eval.runner import EvaluationConfig, evaluate_network

    config = EvaluationConfig(
        limit_per_network=2,
        sample_blocks=2,
        task_timeout_s=None if supervised == "off" else 60.0,
    )
    evaluate_network("LSTM", config)  # warm process-global caches

    def run():
        return evaluate_network("LSTM", config, jobs=2)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(op.status == "ok" and op.attempts == 1
               for op in result.operators)


def test_bench_dependence_analysis(benchmark):
    kernel = elementwise_chain(32, 4)
    relations = benchmark.pedantic(lambda: compute_dependences(kernel),
                                   rounds=2, iterations=1)
    assert relations


def test_bench_pipeline_passes_and_cache(benchmark):
    """Full-pipeline compile cost with the pass manager: round 1 populates
    the content-keyed schedule cache, round 2 rebuilds *equal* (but
    distinct) kernels and must be served from it.  The artifact captures
    the per-pass time breakdown and the cache hit-rate so the perf
    trajectory of the pass-manager refactor shows up in BENCH_* runs."""
    from repro.pipeline import AkgPipeline

    pipeline = AkgPipeline(sample_blocks=2)

    def run():
        compiled = []
        for case in CASES:
            # Fresh kernel objects each round: only content equality can hit.
            kernel = CASES[case]()
            compiled.append(pipeline.compile(kernel, "infl"))
        return compiled

    compiled = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(c.n_launches >= 1 for c in compiled)
    stats = pipeline.cache.stats()
    assert stats["hits"] > 0, "second round must hit the content cache"
    # The summary includes the solver warm-start and dedup hit-rate lines,
    # so reuse behaviour lands in the artifact alongside the pass table.
    summary = pipeline.context.format_summary()
    assert "solver dedup" in summary
    write_artifact(
        "scheduler_perf_passes.txt",
        summary
        + f"\n  cache entries: {stats['entries']}, "
          f"hit rate: {stats['hit_rate'] * 100:.1f}%")


@pytest.mark.parametrize("sim", ["fast", "reference"])
def test_bench_compile_and_measure(benchmark, sim):
    """Full compile+measure cost with the simulator backend forced.

    The two series bound the simulator's share of end-to-end pipeline
    wall time in the BENCH_* trend; the artifact breaks each round into
    compile vs simulate seconds so a simulator regression is attributable
    at a glance.  With the fast backend the pass summary must also show
    its fast-path counters (memoization working on real pipeline output,
    not just on the micro-bench kernels)."""
    import time

    from repro.pipeline import AkgPipeline

    pipeline = AkgPipeline(sample_blocks=4, sim=sim)
    breakdown = []  # (compile_s, measure_s) per round

    def run():
        compile_s = measure_s = 0.0
        timings = []
        for case in CASES:
            kernel = CASES[case]()
            started = time.perf_counter()
            compiled = pipeline.compile(kernel, "infl")
            mid = time.perf_counter()
            timings.append(pipeline.measure(compiled))
            compile_s += mid - started
            measure_s += time.perf_counter() - mid
        breakdown.append((compile_s, measure_s))
        return timings

    timings = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(t.time > 0 for t in timings)
    summary = pipeline.context.format_summary()
    if sim == "fast":
        assert "simulator fast path" in summary
    lines = [f"compile vs simulate wall time, sim={sim} "
             f"({len(CASES)} kernels per round):",
             f"  {'round':<7}{'compile ms':>12}{'simulate ms':>13}"]
    for index, (compile_s, measure_s) in enumerate(breakdown):
        lines.append(f"  {index:<7}{compile_s * 1e3:>12.1f}"
                     f"{measure_s * 1e3:>13.1f}")
    write_artifact(f"scheduler_perf_measure_{sim}.txt",
                   "\n".join(lines) + "\n" + summary)
