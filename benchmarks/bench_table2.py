"""Regenerate Table II (fused operators execution times).

Each per-network benchmark compiles and measures that network's suite under
all four variants (isl / tvm / novec / infl) and contributes one row; the
final test assembles and writes the full table plus the geomean headline.

Set ``REPRO_TABLE2_LIMIT=full`` to use the paper's full operator counts
(about 10 minutes); the default limit keeps the run short while sampling
every operator class.
"""

import pytest
from conftest import seed, table2_limit, write_artifact

from repro.eval import EvaluationConfig, evaluate_network, format_table2
from repro.eval.tables import geomean_speedup
from repro.workloads import NETWORKS

_RESULTS = {}


def _config() -> EvaluationConfig:
    return EvaluationConfig(seed=seed(), limit_per_network=table2_limit())


@pytest.mark.parametrize("network", list(NETWORKS))
def test_bench_network(benchmark, network):
    """Compile+measure one network's suite (one Table II row)."""

    def run():
        return evaluate_network(network, _config())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[network] = result
    assert result.count_total > 0
    assert result.total_time("isl") > 0


def test_table2_artifact(benchmark, out_dir):
    """Assemble the Table II artifact from the per-network rows."""
    def fill_missing():
        for network in [n for n in NETWORKS if n not in _RESULTS]:
            _RESULTS[network] = evaluate_network(network, _config())
        return True

    benchmark.pedantic(fill_missing, rounds=1, iterations=1)
    results = [_RESULTS[n] for n in NETWORKS]
    text = format_table2(results)
    geomean = geomean_speedup(results)
    text += (f"\n\ngeomean speedup (infl over isl, all operators): "
             f"{geomean:.2f}x  [paper: 1.7x]")
    limit = table2_limit()
    if limit is not None:
        text += (f"\nNOTE: run with REPRO_TABLE2_LIMIT={limit} operators per "
                 f"network; set REPRO_TABLE2_LIMIT=full for the paper's "
                 f"counts.")
    write_artifact("table2.txt", text)

    # Shape assertions: the reproduction must preserve who wins and where.
    # They are statistical, so they need a representative sample per
    # network; smoke runs (e.g. CI with REPRO_TABLE2_LIMIT=1) only check
    # that the pipeline ran end-to-end.
    if limit is not None and limit < 6:
        return
    by_name = {r.network: r for r in results}
    assert by_name["ResNet50"].speedup("infl") > 1.3
    assert by_name["ResNet101"].speedup("infl") > 1.3
    assert 0.8 <= by_name["LSTM"].speedup("infl") <= 1.6
    assert by_name["BERT"].speedup("tvm") < 1.0  # TVM loses on BERT
    assert geomean > 1.0
