"""Operator-family benchmarks: scheduler variants vs template baselines.

Each new operator family (depthwise conv, attention block, 2D stencils)
is compiled under the ``isl``/``tvm``/``infl`` variants and under its
TVM-style template (:mod:`repro.workloads.templates`), at production-ish
shapes.  Two things feed the trend store:

* per-family *compile* latency (wall clock) for each variant — the
  scheduler-cost trend on dependence structures the older families never
  exercised (windowed reuse, reduce -> broadcast -> reduce chains, mixed
  iteration spaces);
* a simulated-execution artifact table comparing variant times against
  the family template, which is the per-family headline of
  EXPERIMENTS.md.
"""

import pytest
from conftest import write_artifact

from repro.ir.examples import heat_2d, jacobi_2d
from repro.pipeline import AkgPipeline
from repro.workloads.operators import attention_block_op, depthwise_conv_op
from repro.workloads.templates import template_measure

SAMPLE_BLOCKS = 8

# family -> (kernel factory, template op class).
FAMILIES = {
    "depthwise_conv": (lambda: depthwise_conv_op(
        "bench_fam_dw", channels=16, height=16, width=16, kernel_size=3),
        "depthwise_conv"),
    "attention_block": (lambda: attention_block_op(
        "bench_fam_attn", seq=32, dmodel=32), "attention_block"),
    "jacobi_2d": (lambda: jacobi_2d(64, name="bench_fam_jacobi"),
                  "stencil_2d"),
    "heat_2d": (lambda: heat_2d(64, name="bench_fam_heat"), "stencil_2d"),
}

BENCH_VARIANTS = ("isl", "tvm", "infl")

_KERNELS: dict = {}


def _kernel(family):
    if family not in _KERNELS:
        _KERNELS[family] = FAMILIES[family][0]()
    return _KERNELS[family]


@pytest.mark.parametrize("variant", BENCH_VARIANTS)
@pytest.mark.parametrize("family", list(FAMILIES))
def test_bench_family_compile(benchmark, family, variant):
    """Wall-clock compile latency per family and variant (trend series)."""
    kernel = _kernel(family)
    compiled = benchmark.pedantic(
        lambda: AkgPipeline(sample_blocks=SAMPLE_BLOCKS).compile(
            kernel, variant),
        rounds=3, iterations=1, warmup_rounds=1)
    assert compiled.n_launches >= 1
    assert compiled.degradation == "none"


def test_family_exec_vs_template():
    """Simulated execution time: variants against the family template.

    The artifact is the per-family comparison EXPERIMENTS.md quotes; the
    assertions only pin what must always hold (positive times, template
    launch count = statement count) — the variant/template ordering is an
    experimental result, not an invariant.
    """
    lines = [f"operator families: simulated execution vs template "
             f"(sample_blocks={SAMPLE_BLOCKS}):",
             f"  {'family':<17}{'isl us':>9}{'tvm us':>9}{'infl us':>9}"
             f"{'tmpl us':>9}{'infl/tmpl':>11}"]
    for family, (_, op_class) in FAMILIES.items():
        kernel = _kernel(family)
        pipeline = AkgPipeline(sample_blocks=SAMPLE_BLOCKS)
        times = {}
        for variant in BENCH_VARIANTS:
            timing = pipeline.compile_and_measure(kernel, variant)
            times[variant] = timing.time
            assert timing.time > 0
        template = template_measure(kernel, op_class,
                                    sample_blocks=SAMPLE_BLOCKS)
        assert template.time > 0
        assert template.n_launches == len(kernel.statements)
        ratio = times["infl"] / template.time
        lines.append(f"  {family:<17}{times['isl'] * 1e6:>9.1f}"
                     f"{times['tvm'] * 1e6:>9.1f}"
                     f"{times['infl'] * 1e6:>9.1f}"
                     f"{template.time * 1e6:>9.1f}{ratio:>10.2f}x")
    write_artifact("operator_families.txt", "\n".join(lines))
