"""Tile-size auto-tuning bench (the "auto-tuners select tile sizes" stage).

Regenerates a candidate table for the baseline 4D layout conversion and
checks the instructive crossover: tiling the baseline recovers what
constraint injection achieves through scheduling — two remedies for the
same write-amplification problem.
"""

from conftest import write_artifact

from repro.gpu import simulate_kernel
from repro.pipeline.autotune import autotune_tile_sizes, compile_tiled
from repro.workloads.operators import layout_conversion_op


def test_autotune_artifact(benchmark, out_dir):
    kernel = layout_conversion_op("bench_conv", batch=2, channels=64,
                                  height=64, width=64)

    def tune():
        return autotune_tile_sizes(kernel, influenced=False, sample_blocks=4)

    result = benchmark.pedantic(tune, rounds=1, iterations=1)

    mapped, _ = compile_tiled(kernel, (), influenced=True, enable_vec=True)
    influenced = simulate_kernel(mapped, sample_blocks=4)

    lines = ["TILE-SIZE AUTOTUNING — baseline 4D layout conversion "
             "(2 x 64 x 64 x 64)",
             f"{'tiles':>10s}{'time (us)':>12s}{'DRAM (MB)':>12s}"]
    for candidate in sorted(result.candidates, key=lambda c: c.time):
        sizes = "x".join(map(str, candidate.tile_sizes)) or "untiled"
        lines.append(f"{sizes:>10s}{candidate.time * 1e6:>12.1f}"
                     f"{candidate.dram_bytes / 1e6:>12.2f}")
    lines.append("")
    lines.append(f"best tiled baseline : {result.best.time * 1e6:9.1f} us")
    lines.append(f"influenced untiled  : {influenced.time * 1e6:9.1f} us")
    write_artifact("autotune.txt", "\n".join(lines))

    assert result.speedup_over_untiled() > 1.5
    # The two remedies land in the same ballpark (within 2x).
    assert result.best.time < influenced.time * 2
    assert influenced.time < result.best.time * 2
