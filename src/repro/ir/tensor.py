"""Tensor declarations.

Shapes are concrete integers: fused AI/DL operators are compiled for static
shapes (as in AKG/MindSpore, where the graph is shape-specialized before
kernel generation).  Iteration domains may still be written over symbolic
parameters; the kernel records the binding from parameter names to the
concrete extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.types import DType, FLOAT32


@dataclass(frozen=True)
class Tensor:
    """An n-dimensional row-major tensor."""

    name: str
    shape: tuple[int, ...]
    dtype: DType = FLOAT32

    def __post_init__(self):
        if not self.name.isidentifier():
            raise ValueError(f"bad tensor name {self.name!r}")
        if not self.shape:
            raise ValueError("tensors must have at least one dimension")
        for extent in self.shape:
            if not isinstance(extent, int) or extent <= 0:
                raise ValueError(f"bad extent {extent!r} in tensor {self.name}")

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def n_elements(self) -> int:
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    @property
    def n_bytes(self) -> int:
        return self.n_elements * self.dtype.size_bytes

    def strides(self) -> tuple[int, ...]:
        """Row-major strides in *elements* (innermost subscript has stride 1)."""
        strides = [1] * self.rank
        for d in range(self.rank - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        return tuple(strides)

    def __str__(self):
        dims = "x".join(str(s) for s in self.shape)
        return f"{self.name}[{dims}]:{self.dtype}"
