"""Affine tensor accesses and a small affine-expression parser.

An access is a tensor reference with one affine subscript per tensor
dimension, e.g. ``D[k][i][j]`` in the paper's running example.  Subscripts
are :class:`~repro.solver.problem.LinExpr` over iterator and parameter
names; for convenience they can be written as strings (``"i"``, ``"k+1"``,
``"2*i - 1"``) and parsed with :func:`parse_affine`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Union

from repro.ir.tensor import Tensor
from repro.solver.problem import LinExpr, var

_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|\d+|[+\-*])")


def parse_affine(text: str) -> LinExpr:
    """Parse an affine expression over named variables.

    Grammar: ``expr := term (('+'|'-') term)*``;
    ``term := INT | NAME | INT '*' NAME | NAME '*' INT``.
    """
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise ValueError(f"bad affine expression {text!r} at {pos}")
            break
        tokens.append(m.group(1))
        pos = m.end()

    expr = LinExpr()
    sign = 1
    i = 0

    def take_term(idx: int) -> tuple[LinExpr, int]:
        tok = tokens[idx]
        if tok.isdigit():
            if idx + 2 < len(tokens) and tokens[idx + 1] == "*":
                name = tokens[idx + 2]
                if not name.isidentifier():
                    raise ValueError(f"expected name after '*' in {text!r}")
                return LinExpr({name: Fraction(int(tok))}), idx + 3
            return LinExpr(const=int(tok)), idx + 1
        if tok.isidentifier():
            if idx + 2 < len(tokens) and tokens[idx + 1] == "*":
                factor = tokens[idx + 2]
                if not factor.isdigit():
                    raise ValueError(f"expected integer after '*' in {text!r}")
                return LinExpr({tok: Fraction(int(factor))}), idx + 3
            return var(tok), idx + 1
        raise ValueError(f"unexpected token {tok!r} in {text!r}")

    expect_term = True
    while i < len(tokens):
        tok = tokens[i]
        if expect_term:
            if tok == "-":
                sign = -sign
                i += 1
                continue
            if tok == "+":
                i += 1
                continue
            term, i = take_term(i)
            expr = expr + sign * term
            sign = 1
            expect_term = False
        else:
            if tok == "+":
                sign = 1
            elif tok == "-":
                sign = -1
            else:
                raise ValueError(f"expected '+' or '-' before {tok!r} in {text!r}")
            i += 1
            expect_term = True
    if expect_term and tokens:
        raise ValueError(f"dangling operator in {text!r}")
    return expr


Subscript = Union[str, int, LinExpr]


def _coerce_subscript(sub: Subscript) -> LinExpr:
    if isinstance(sub, LinExpr):
        return sub
    if isinstance(sub, bool):
        raise TypeError("boolean subscript")
    if isinstance(sub, int):
        return LinExpr(const=sub)
    if isinstance(sub, str):
        return parse_affine(sub)
    raise TypeError(f"bad subscript {sub!r}")


@dataclass(frozen=True)
class Access:
    """One read or write reference to a tensor."""

    tensor: Tensor
    subscripts: tuple[LinExpr, ...]
    is_write: bool = False

    @classmethod
    def build(cls, tensor: Tensor, subscripts: Sequence[Subscript],
              is_write: bool = False) -> "Access":
        subs = tuple(_coerce_subscript(s) for s in subscripts)
        if len(subs) != tensor.rank:
            raise ValueError(
                f"{tensor.name} has rank {tensor.rank}, got {len(subs)} subscripts")
        return cls(tensor, subs, is_write)

    def variables(self) -> set[str]:
        """All iterator/parameter names appearing in the subscripts."""
        names: set[str] = set()
        for s in self.subscripts:
            names |= s.variables()
        return names

    def coefficient(self, dim: int, name: str) -> Fraction:
        """Coefficient of ``name`` in the ``dim``-th subscript."""
        return self.subscripts[dim].coeffs.get(name, Fraction(0))

    def stride_along(self, name: str) -> int:
        """Memory stride (in elements) when iterator ``name`` advances by 1.

        This is the quantity Algorithm 2's cost model reasons about:
        ``sum_d coeff(name, d) * tensor_stride(d)``.  A result of 0 means the
        access is invariant along ``name``; 1 means contiguous.
        """
        strides = self.tensor.strides()
        total = Fraction(0)
        for d, sub in enumerate(self.subscripts):
            total += sub.coeffs.get(name, Fraction(0)) * strides[d]
        if total.denominator != 1:
            raise ValueError("non-integer stride; subscripts must be integral")
        return abs(int(total))

    def linearized(self, point: dict[str, Fraction]) -> int:
        """Element offset of this access at a concrete iteration point."""
        strides = self.tensor.strides()
        offset = Fraction(0)
        for d, sub in enumerate(self.subscripts):
            offset += sub.evaluate(point) * strides[d]
        if offset.denominator != 1:
            raise ValueError("non-integer offset")
        return int(offset)

    def byte_address(self, point: dict[str, Fraction], base: int = 0) -> int:
        """Byte address at a concrete iteration point (``base`` in bytes)."""
        return base + self.linearized(point) * self.tensor.dtype.size_bytes

    def __str__(self):
        def render(expr: LinExpr) -> str:
            parts = []
            for name, coeff in sorted(expr.coeffs.items()):
                if coeff == 1:
                    parts.append(name)
                elif coeff == -1:
                    parts.append(f"-{name}")
                else:
                    parts.append(f"{coeff}*{name}")
            if expr.const != 0 or not parts:
                parts.append(str(expr.const))
            return " + ".join(parts).replace("+ -", "- ")

        subs = "][".join(render(s) for s in self.subscripts)
        return f"{self.tensor.name}[{subs}]"
