"""Reference kernels, starting with the paper's running example.

:func:`running_example` builds the Fig. 2(a) kernel
(``fused_mul_sub_mul_tensoradd``, a simplified fused operator from BERT):

.. code-block:: c

    for (i = 0; i < N; i++)
      for (k = 0; k < N; k++)
        X: B[i][k] = f(A[i][k]);
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        for (k = 0; k < N; k++)
          Y: C[i][j] = g(C[i][j], B[i][k], D[k][i][j]);
"""

from __future__ import annotations

from repro.ir.kernel import Kernel
from repro.ir.types import FLOAT32


def running_example(n: int = 64) -> Kernel:
    """The paper's running example (Fig. 2(a)) with parameter ``N = n``."""
    kernel = Kernel("fused_mul_sub_mul_tensoradd", params={"N": n})
    kernel.add_tensor("A", (n, n), FLOAT32)
    kernel.add_tensor("B", (n, n), FLOAT32)
    kernel.add_tensor("C", (n, n), FLOAT32)
    kernel.add_tensor("D", (n, n, n), FLOAT32)
    kernel.add_statement(
        "X",
        iters=[("i", 0, "N"), ("k", 0, "N")],
        writes=[("B", ["i", "k"])],
        reads=[("A", ["i", "k"])],
    )
    kernel.add_statement(
        "Y",
        iters=[("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")],
        writes=[("C", ["i", "j"])],
        reads=[("C", ["i", "j"]), ("B", ["i", "k"]), ("D", ["k", "i", "j"])],
        flops=3,
    )
    kernel.validate()
    return kernel


def matmul(n: int = 32) -> Kernel:
    """A plain matrix multiply (one statement, reduction on k)."""
    kernel = Kernel("matmul", params={"N": n})
    kernel.add_tensor("A", (n, n))
    kernel.add_tensor("B", (n, n))
    kernel.add_tensor("C", (n, n))
    kernel.add_statement(
        "S",
        iters=[("i", 0, "N"), ("j", 0, "N"), ("k", 0, "N")],
        writes=[("C", ["i", "j"])],
        reads=[("C", ["i", "j"]), ("A", ["i", "k"]), ("B", ["k", "j"])],
        flops=2,
    )
    kernel.validate()
    return kernel


def elementwise_chain(n: int = 64, length: int = 3) -> Kernel:
    """A chain of fused element-wise operators: T1 = f(T0), T2 = f(T1), ..."""
    kernel = Kernel(f"elementwise_chain_{length}", params={"N": n})
    for idx in range(length + 1):
        kernel.add_tensor(f"T{idx}", (n, n))
    for idx in range(length):
        kernel.add_statement(
            f"S{idx}",
            iters=[("i", 0, "N"), ("j", 0, "N")],
            writes=[(f"T{idx + 1}", ["i", "j"])],
            reads=[(f"T{idx}", ["i", "j"])],
        )
    kernel.validate()
    return kernel


def jacobi_1d(n: int = 64) -> Kernel:
    """A ping-pong 1D Jacobi step pair: shifted reads, two statements.

    Exercises negative and positive subscript offsets through dependence
    analysis and scheduling: B[i] = f(A[i-1], A[i], A[i+1]) then the
    reverse direction back into A's copy.
    """
    kernel = Kernel("jacobi_1d", params={"N": n})
    kernel.add_tensor("A", (n,))
    kernel.add_tensor("B", (n,))
    kernel.add_tensor("C", (n,))
    kernel.add_statement(
        "S1", [("i", 1, "N - 1")],
        writes=[("B", ["i"])],
        reads=[("A", ["i - 1"]), ("A", ["i"]), ("A", ["i + 1"])],
        flops=2)
    kernel.add_statement(
        "S2", [("i", 1, "N - 1")],
        writes=[("C", ["i"])],
        reads=[("B", ["i - 1"]), ("B", ["i"]), ("B", ["i + 1"])],
        flops=2)
    kernel.validate()
    return kernel


def jacobi_2d(n: int = 64, name: str = "jacobi_2d") -> Kernel:
    """A two-statement 2D Jacobi step pair (5-point star, interior domain).

    The 2D generalization of :func:`jacobi_1d`: both statements iterate the
    interior ``[1, N-1) x [1, N-1)`` and read the four face neighbours plus
    the centre, so dependence analysis sees +/-1 shifts along *both*
    dimensions and fusion at identical dates is invalid in either one.
    """
    kernel = Kernel(name, params={"N": n})
    kernel.add_tensor("A", (n, n))
    kernel.add_tensor("B", (n, n))
    kernel.add_tensor("C", (n, n))
    interior = [("i", 1, "N - 1"), ("j", 1, "N - 1")]
    kernel.add_statement(
        "S1", interior,
        writes=[("B", ["i", "j"])],
        reads=[("A", ["i - 1", "j"]), ("A", ["i + 1", "j"]),
               ("A", ["i", "j - 1"]), ("A", ["i", "j + 1"]),
               ("A", ["i", "j"])],
        flops=4)
    kernel.add_statement(
        "S2", interior,
        writes=[("C", ["i", "j"])],
        reads=[("B", ["i - 1", "j"]), ("B", ["i + 1", "j"]),
               ("B", ["i", "j - 1"]), ("B", ["i", "j + 1"]),
               ("B", ["i", "j"])],
        flops=4)
    kernel.validate()
    return kernel


def heat_2d(n: int = 64, name: str = "heat_2d") -> Kernel:
    """A three-statement 2D heat pipeline with a full-domain middle stage.

    Two 5-point diffusion steps separated by a whole-domain pointwise
    rescale: the stencil statements iterate the interior while the rescale
    iterates the full ``[0, N) x [0, N)`` square, so the pipeline mixes
    iteration spaces (the isl baseline distributes at the space change)
    *and* carries shifted flow dependences across the middle stage.
    """
    kernel = Kernel(name, params={"N": n})
    kernel.add_tensor("A", (n, n))
    kernel.add_tensor("B", (n, n))
    kernel.add_tensor("Bs", (n, n))
    kernel.add_tensor("C", (n, n))
    interior = [("i", 1, "N - 1"), ("j", 1, "N - 1")]
    kernel.add_statement(
        "Step1", interior,
        writes=[("B", ["i", "j"])],
        reads=[("A", ["i", "j"]), ("A", ["i - 1", "j"]),
               ("A", ["i + 1", "j"]), ("A", ["i", "j - 1"]),
               ("A", ["i", "j + 1"])],
        flops=5)
    kernel.add_statement(
        "Scale", [("i", 0, "N"), ("j", 0, "N")],
        writes=[("Bs", ["i", "j"])],
        reads=[("B", ["i", "j"])])
    kernel.add_statement(
        "Step2", interior,
        writes=[("C", ["i", "j"])],
        reads=[("Bs", ["i", "j"]), ("Bs", ["i - 1", "j"]),
               ("Bs", ["i + 1", "j"]), ("Bs", ["i", "j - 1"]),
               ("Bs", ["i", "j + 1"])],
        flops=5)
    kernel.validate()
    return kernel


def transpose_add(n: int = 64) -> Kernel:
    """Transpose fused with an element-wise add — the class of operators
    where the paper reports the largest gains (ResNet-50/101)."""
    kernel = Kernel("transpose_add", params={"N": n})
    kernel.add_tensor("A", (n, n))
    kernel.add_tensor("B", (n, n))
    kernel.add_tensor("C", (n, n))
    kernel.add_statement(
        "T",
        iters=[("i", 0, "N"), ("j", 0, "N")],
        writes=[("B", ["i", "j"])],
        reads=[("A", ["j", "i"])],
    )
    kernel.add_statement(
        "E",
        iters=[("i", 0, "N"), ("j", 0, "N")],
        writes=[("C", ["i", "j"])],
        reads=[("B", ["i", "j"]), ("C", ["i", "j"])],
    )
    kernel.validate()
    return kernel
