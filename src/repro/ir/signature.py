"""Canonical content signatures of kernel IR.

The signature is the content-equality key used by every content-keyed
cache in the stack (the pipeline's schedule cache, the dependence-analysis
memo): a canonical, hashable rendering of the IR — parameters, statement
structure, iteration domains, accesses with tensor shapes and dtypes —
with kernel *names* deliberately excluded (generated operators carry
unique names; distributed baselines suffix ``_k0`` per cluster).

Constraint order inside iteration domains is kept (not sorted away): the
ILP's variable/constraint layout follows it, and two kernels must only
share cached results when the whole solve is bit-for-bit identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.access import Access
    from repro.ir.kernel import Kernel
    from repro.ir.statement import Statement
    from repro.sets.polyhedron import Polyhedron


def _domain_signature(domain: "Polyhedron") -> tuple:
    constraints = tuple((c.sense, c.expr.signature())
                        for c in domain.constraints)
    return (tuple(domain.dims), constraints)


def _access_signature(access: "Access") -> tuple:
    tensor = access.tensor
    return (tensor.name, tensor.shape, tensor.dtype, access.is_write,
            tuple(s.signature() for s in access.subscripts))


def _statement_signature(statement: "Statement") -> tuple:
    return (statement.name,
            tuple(statement.iterators),
            _domain_signature(statement.domain),
            tuple(statement.betas),
            statement.flops,
            tuple(_access_signature(a) for a in statement.writes),
            tuple(_access_signature(a) for a in statement.reads))


def kernel_signature(kernel: "Kernel") -> tuple:
    """Canonical, hashable content signature of a kernel.

    Excludes the kernel name; preserves parameter and statement order
    (both feed the scheduler's variable ordering).  Tensors enter through
    the accesses that reference them, so unused declarations — e.g. the
    parent tensors shared into a distributed sub-kernel — do not split
    otherwise-equal entries.
    """
    return (tuple(kernel.params.items()),
            tuple(_statement_signature(s) for s in kernel.statements))
