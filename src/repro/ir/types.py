"""Element types for tensors.

The GPU backend cares about two properties: the element size in bytes (it
determines how many lanes fit a 64/128-bit vector load) and a display name.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """A tensor element type."""

    name: str
    size_bytes: int

    def __post_init__(self):
        if self.size_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported element size {self.size_bytes}")

    def vector_widths(self, max_bits: int = 128) -> list[int]:
        """Lane counts usable for vector-type loads/stores of this dtype.

        CUDA vector types move 64 or 128 bits per instruction; the paper
        restricts lane counts to 2 and 4 (3 unsupported, §V condition (b)).
        """
        widths = []
        for lanes in (2, 4):
            if lanes * self.size_bytes * 8 in (64, 128) and \
                    lanes * self.size_bytes * 8 <= max_bits:
                widths.append(lanes)
        return widths

    def __str__(self):
        return self.name


FLOAT16 = DType("float16", 2)
FLOAT32 = DType("float32", 4)
FLOAT64 = DType("float64", 8)
INT32 = DType("int32", 4)
INT8 = DType("int8", 1)
