"""Statements: iteration domain + accesses + original position.

The original (textual) execution order is encoded 2d+1 style: a statement
with iterators ``(i, k)`` and betas ``(b0, b1, b2)`` executes at the
interleaved logical date ``(b0, i, b1, k, b2)``.  Dependence analysis
compares these interleaved dates lexicographically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from repro.ir.access import Access
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import LinExpr, var


@dataclass
class Statement:
    """One statement of a fused-operator kernel."""

    name: str
    iterators: list[str]
    domain: Polyhedron
    writes: list[Access]
    reads: list[Access]
    betas: list[int]
    flops: int = 1

    def __post_init__(self):
        if len(self.betas) != len(self.iterators) + 1:
            raise ValueError(
                f"{self.name}: need {len(self.iterators) + 1} betas, "
                f"got {len(self.betas)}")
        if len(set(self.iterators)) != len(self.iterators):
            raise ValueError(f"{self.name}: duplicate iterators")
        missing = [it for it in self.iterators if it not in self.domain.dims]
        if missing:
            raise ValueError(f"{self.name}: domain lacks iterators {missing}")
        if not self.writes:
            raise ValueError(f"{self.name}: statements must write something")

    @property
    def depth(self) -> int:
        """Number of enclosing loops."""
        return len(self.iterators)

    @property
    def accesses(self) -> list[Access]:
        """All accesses, writes first (matches the paper's store priority)."""
        return list(self.writes) + list(self.reads)

    @property
    def parameters(self) -> list[str]:
        """Parameter dims of the domain (non-iterator dims)."""
        return [d for d in self.domain.dims if d not in self.iterators]

    def interleaved_entries(self) -> list[tuple[str, object]]:
        """The 2d+1 original-order entries: ('beta', b) / ('iter', name)."""
        entries: list[tuple[str, object]] = []
        for level, it in enumerate(self.iterators):
            entries.append(("beta", self.betas[level]))
            entries.append(("iter", it))
        entries.append(("beta", self.betas[len(self.iterators)]))
        return entries

    def original_date(self, point: dict[str, Fraction]) -> tuple:
        """Concrete interleaved logical date of one execution."""
        date = []
        for kind, value in self.interleaved_entries():
            if kind == "beta":
                date.append(Fraction(value))
            else:
                date.append(Fraction(point[value]))
        return tuple(date)

    def iteration_points(self, params: dict[str, int],
                         limit: int = 100_000) -> list[dict[str, Fraction]]:
        """Enumerate the integer points of the domain under concrete params.

        Used by the GPU simulator and by semantics-preservation tests; raises
        if the domain has more than ``limit`` points.
        """
        bound_domain = self.domain.with_constraints(
            [var(p).eq(v) for p, v in params.items() if p in self.domain.dims])
        points: list[dict[str, Fraction]] = []

        def recurse(assigned: dict[str, Fraction], remaining: list[str]):
            if not remaining:
                points.append(dict(assigned))
                if len(points) > limit:
                    raise ValueError(f"domain of {self.name} exceeds {limit} points")
                return
            it = remaining[0]
            # Bounds of `it` given already-assigned outer iterators: project
            # out the inner iterators, then read the affine bounds.
            shadow = bound_domain.eliminate_all(remaining[1:])
            lowers, uppers = shadow.bounds_of(it)
            env = dict(assigned)
            env.update({p: Fraction(v) for p, v in params.items()})
            los = [e.evaluate(env) for e in lowers]
            his = [e.evaluate(env) for e in uppers]
            if not los or not his:
                raise ValueError(f"unbounded iterator {it} in {self.name}")
            lo = max(los)
            hi = min(his)
            start = math.ceil(lo)
            stop = math.floor(hi)
            for value in range(start, stop + 1):
                assigned[it] = Fraction(value)
                recurse(assigned, remaining[1:])
            assigned.pop(it, None)

        recurse({}, list(self.iterators))
        return points

    def __str__(self):
        its = ", ".join(self.iterators)
        return f"{self.name}({its})"
