"""Program intermediate representation for fused AI/DL operators.

A :class:`~repro.ir.kernel.Kernel` is the unit the polyhedral pipeline
consumes: a list of statements, each with an iteration domain (a
:class:`~repro.sets.Polyhedron` over its iterators and the kernel's
parameters), affine tensor accesses, and an original (textual) execution
order encoded 2d+1-style through per-statement beta vectors.

The running example of the paper (Fig. 2(a), ``fused_mul_sub_mul_tensoradd``)
is available from :func:`repro.ir.examples.running_example`.
"""

from repro.ir.types import DType, FLOAT16, FLOAT32, FLOAT64, INT32, INT8
from repro.ir.tensor import Tensor
from repro.ir.access import Access, parse_affine
from repro.ir.statement import Statement
from repro.ir.kernel import Kernel
from repro.ir.kparser import KernelParseError, parse_kernel, parse_kernel_file

__all__ = [
    "DType", "FLOAT16", "FLOAT32", "FLOAT64", "INT32", "INT8",
    "Tensor", "Access", "parse_affine", "Statement", "Kernel",
    "KernelParseError", "parse_kernel", "parse_kernel_file",
]
