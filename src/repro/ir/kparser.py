"""A compact textual format for fused-operator kernels.

Grammar (line based; ``#`` starts a comment)::

    kernel NAME (PARAM=INT, ...)
    tensor NAME[EXTENT]...[EXTENT] [: DTYPE]
    STMT[it: LO..HI, ...] [flops=INT]: OUT[SUB]... = f(IN[SUB]..., ...)

* extents are integers or parameter names;
* iterator ranges are half-open (``0..N`` means ``0 <= it < N``) and the
  bounds may be affine expressions of parameters and outer iterators;
* subscripts are affine expressions (``i``, ``k+1``, ``2*i``);
* everything right of ``=`` must be wrapped in a single call ``f(...)``
  whose arguments are the read accesses (the function name is decorative —
  the IR only models the memory behaviour, as the paper's scheduler does).

Example::

    kernel fused_mul_sub_mul_tensoradd (N=64)
    tensor A[N][N]
    tensor B[N][N]
    tensor C[N][N]
    tensor D[N][N][N]
    X[i: 0..N, k: 0..N]: B[i][k] = f(A[i][k])
    Y[i: 0..N, j: 0..N, k: 0..N] flops=3: C[i][j] = g(C[i][j], B[i][k], D[k][i][j])
"""

from __future__ import annotations

import re
from typing import Optional

from repro.ir.kernel import Kernel
from repro.ir.types import DType, FLOAT16, FLOAT32, FLOAT64, INT32, INT8


class KernelParseError(Exception):
    """Syntax or semantic error in a kernel description."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_DTYPES: dict[str, DType] = {
    "float16": FLOAT16, "float32": FLOAT32, "float64": FLOAT64,
    "int32": INT32, "int8": INT8,
    "f16": FLOAT16, "f32": FLOAT32, "f64": FLOAT64,
}

_KERNEL_RE = re.compile(
    r"^kernel\s+(?P<name>\w+)\s*(?:\((?P<params>[^)]*)\))?\s*$")
_TENSOR_RE = re.compile(
    r"^tensor\s+(?P<name>\w+)\s*(?P<dims>(?:\[[^\]]+\])+)\s*"
    r"(?::\s*(?P<dtype>\w+))?\s*$")
_STMT_RE = re.compile(
    r"^(?P<name>\w+)\s*\[(?P<iters>[^\]]*)\]\s*"
    r"(?:flops\s*=\s*(?P<flops>\d+)\s*)?:\s*(?P<body>.+)$")
_ACCESS_RE = re.compile(r"(?P<tensor>\w+)\s*(?P<subs>(?:\[[^\]]*\])+)")
_BRACKET_RE = re.compile(r"\[([^\]]*)\]")


def _parse_params(text: Optional[str], line_no: int) -> dict[str, int]:
    params: dict[str, int] = {}
    if not text or not text.strip():
        return params
    for item in text.split(","):
        if "=" not in item:
            raise KernelParseError(line_no,
                                   f"expected PARAM=INT, got {item.strip()!r}")
        name, _, value = item.partition("=")
        name = name.strip()
        try:
            params[name] = int(value.strip())
        except ValueError as exc:
            raise KernelParseError(
                line_no, f"parameter {name!r} needs an integer value") from exc
    return params


def _parse_extent(text: str, params: dict[str, int],
                  line_no: int) -> int:
    text = text.strip()
    if text.isdigit():
        return int(text)
    if text in params:
        return params[text]
    raise KernelParseError(
        line_no, f"tensor extent {text!r} is neither an integer nor a "
                 f"declared parameter")


def _parse_accesses(text: str, line_no: int) -> list[tuple[str, list[str]]]:
    out = []
    for m in _ACCESS_RE.finditer(text):
        subs = _BRACKET_RE.findall(m.group("subs"))
        if any(not s.strip() for s in subs):
            raise KernelParseError(line_no, f"empty subscript in {m.group(0)!r}")
        out.append((m.group("tensor"), [s.strip() for s in subs]))
    return out


def parse_kernel(text: str) -> Kernel:
    """Parse a kernel description; raises :class:`KernelParseError`."""
    kernel: Optional[Kernel] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("kernel"):
            m = _KERNEL_RE.match(line)
            if not m:
                raise KernelParseError(line_no, "malformed kernel header")
            if kernel is not None:
                raise KernelParseError(line_no, "duplicate kernel header")
            kernel = Kernel(m.group("name"),
                            params=_parse_params(m.group("params"), line_no))
            continue

        if kernel is None:
            raise KernelParseError(line_no,
                                   "the file must start with a kernel header")

        if line.startswith("tensor"):
            m = _TENSOR_RE.match(line)
            if not m:
                raise KernelParseError(line_no, "malformed tensor declaration")
            extents = [_parse_extent(e, kernel.params, line_no)
                       for e in _BRACKET_RE.findall(m.group("dims"))]
            dtype_name = m.group("dtype") or "float32"
            dtype = _DTYPES.get(dtype_name.lower())
            if dtype is None:
                raise KernelParseError(
                    line_no, f"unknown dtype {dtype_name!r} "
                             f"(known: {sorted(set(_DTYPES))})")
            try:
                kernel.add_tensor(m.group("name"), extents, dtype)
            except ValueError as exc:
                raise KernelParseError(line_no, str(exc)) from exc
            continue

        m = _STMT_RE.match(line)
        if not m:
            raise KernelParseError(line_no, f"unrecognized line {line!r}")
        iters = []
        for item in m.group("iters").split(","):
            item = item.strip()
            if not item:
                continue
            im = re.match(r"^(\w+)\s*:\s*(.+?)\s*\.\.\s*(.+)$", item)
            if not im:
                raise KernelParseError(
                    line_no, f"expected 'it: lo..hi', got {item!r}")
            lo, hi = im.group(2).strip(), im.group(3).strip()
            iters.append((im.group(1),
                          int(lo) if lo.lstrip("-").isdigit() else lo,
                          int(hi) if hi.lstrip("-").isdigit() else hi))
        body = m.group("body")
        if "=" not in body:
            raise KernelParseError(line_no, "statement body needs '='")
        left, _, right = body.partition("=")
        writes = _parse_accesses(left, line_no)
        if not writes:
            raise KernelParseError(line_no, "no write access before '='")
        call = re.match(r"^\s*\w+\s*\((?P<args>.*)\)\s*$", right)
        reads_text = call.group("args") if call else right
        reads = _parse_accesses(reads_text, line_no)
        try:
            kernel.add_statement(
                m.group("name"), iters, writes=writes, reads=reads,
                flops=int(m.group("flops") or 1))
        except (ValueError, KeyError) as exc:
            raise KernelParseError(line_no, str(exc)) from exc

    if kernel is None:
        raise KernelParseError(0, "empty kernel description")
    kernel.validate()
    return kernel


def parse_kernel_file(path) -> Kernel:
    """Parse a kernel description from a file path."""
    with open(path) as handle:
        return parse_kernel(handle.read())
