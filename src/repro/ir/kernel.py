"""Kernels: the compilation unit of the pipeline.

A kernel bundles tensors, parameters (with their concrete values — fused
AI/DL operators are shape-specialized) and statements.  The builder API
turns bound descriptions like ``("i", 0, "N")`` into iteration-domain
polyhedra.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.access import Access, Subscript, parse_affine
from repro.ir.statement import Statement
from repro.ir.tensor import Tensor
from repro.ir.types import DType, FLOAT32
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import Constraint, LinExpr, var

Bound = Union[int, str, LinExpr]


def _bound_expr(bound: Bound) -> LinExpr:
    if isinstance(bound, LinExpr):
        return bound
    if isinstance(bound, bool):
        raise TypeError("boolean loop bound")
    if isinstance(bound, int):
        return LinExpr(const=bound)
    return parse_affine(bound)


class Kernel:
    """A fused operator: tensors + parameters + statements."""

    def __init__(self, name: str, params: Optional[dict[str, int]] = None):
        self.name = name
        self.params: dict[str, int] = dict(params or {})
        for p, v in self.params.items():
            if not p.isidentifier():
                raise ValueError(f"bad parameter name {p!r}")
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"parameter {p} must have a positive value")
        self.tensors: dict[str, Tensor] = {}
        self.statements: list[Statement] = []

    # -- declaration ---------------------------------------------------------

    def add_tensor(self, name: str, shape: Sequence[int],
                   dtype: DType = FLOAT32) -> Tensor:
        """Declare a tensor; returns it."""
        if name in self.tensors:
            raise ValueError(f"tensor {name!r} already declared")
        tensor = Tensor(name, tuple(shape), dtype)
        self.tensors[name] = tensor
        return tensor

    def add_statement(self, name: str,
                      iters: Sequence[tuple[str, Bound, Bound]],
                      writes: Sequence[tuple[str, Sequence[Subscript]]],
                      reads: Sequence[tuple[str, Sequence[Subscript]]] = (),
                      betas: Optional[Sequence[int]] = None,
                      flops: int = 1) -> Statement:
        """Add a statement.

        ``iters`` lists ``(iterator, lower, upper)`` with a *half-open*
        range ``lower <= iterator < upper``; bounds may reference parameters
        and outer iterators.  ``writes``/``reads`` are
        ``(tensor_name, subscripts)`` pairs.  ``betas`` defaults to placing
        the statement in its own loop nest after all previous statements,
        which matches the shape of fused operators emitted by graph-kernel
        fusion (a sequence of per-operator nests, as in Fig. 2(a)).
        """
        if any(s.name == name for s in self.statements):
            raise ValueError(f"statement {name!r} already exists")
        iterator_names = [it for it, _, _ in iters]
        dims = iterator_names + [p for p in self.params if p not in iterator_names]
        constraints: list[Constraint] = []
        for it, lower, upper in iters:
            lo = _bound_expr(lower)
            hi = _bound_expr(upper)
            self._check_names(name, lo.variables() | hi.variables(), dims)
            constraints.append(var(it) - lo >= 0)
            constraints.append(hi - var(it) - 1 >= 0)
        domain = Polyhedron(dims, constraints)

        def build_accesses(specs, is_write):
            out = []
            for tensor_name, subscripts in specs:
                if tensor_name not in self.tensors:
                    raise KeyError(f"unknown tensor {tensor_name!r} in {name}")
                access = Access.build(self.tensors[tensor_name], subscripts,
                                      is_write=is_write)
                self._check_names(name, access.variables(), dims)
                out.append(access)
            return out

        if betas is None:
            betas = [len(self.statements)] + [0] * len(iterator_names)
        statement = Statement(
            name=name,
            iterators=iterator_names,
            domain=domain,
            writes=build_accesses(writes, True),
            reads=build_accesses(reads, False),
            betas=list(betas),
            flops=flops,
        )
        self.statements.append(statement)
        return statement

    def _check_names(self, stmt: str, names: set[str], dims: list[str]) -> None:
        unknown = names - set(dims)
        if unknown:
            raise ValueError(f"{stmt}: unknown names {sorted(unknown)} "
                             f"(declare parameters on the kernel)")

    # -- queries -----------------------------------------------------------------

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(f"no statement {name!r} in kernel {self.name}")

    @property
    def parameter_names(self) -> list[str]:
        return list(self.params)

    def total_bytes_touched(self) -> int:
        """Footprint of all distinct tensors referenced by the kernel."""
        seen = set()
        total = 0
        for s in self.statements:
            for a in s.accesses:
                if a.tensor.name not in seen:
                    seen.add(a.tensor.name)
                    total += a.tensor.n_bytes
        return total

    def validate(self) -> None:
        """Check consistency invariants; raises ValueError on violation."""
        if not self.statements:
            raise ValueError(f"kernel {self.name} has no statements")
        for s in self.statements:
            for p in s.parameters:
                if p not in self.params:
                    raise ValueError(f"{s.name}: domain parameter {p} "
                                     f"has no concrete value")
            bound = s.domain.with_constraints(
                [var(p).eq(v) for p, v in self.params.items()
                 if p in s.domain.dims])
            if bound.is_empty():
                raise ValueError(f"{s.name}: empty iteration domain")

    def __str__(self):
        stmts = ", ".join(s.name for s in self.statements)
        return f"Kernel({self.name}: {stmts})"
