"""Warm-start handles: reuse of prior solver results that provably cannot
change any answer.

A :class:`WarmStartHandle` captures what a finished ``Problem.solve`` knew:
the final variable assignment (the branch-and-bound incumbent) and the final
simplex basis.  The *only* reuse mechanism is the incumbent strict bound:
when a candidate assignment is verified feasible and integral on the next
problem, its objective value ``V`` is handed to branch and bound, which may
then discard nodes whose relaxation is *strictly* worse than ``V``.

Why this is bitwise-safe (sketch; the parity property test and the
``simplex-nowarm`` CI job enforce it empirically):

* every subtree the extra prune removes has relaxation value ``> V`` and
  hence contains only integral points worse than the optimum (which is
  ``<= V`` because a feasible point of value ``V`` exists) — removing it
  cannot remove the returned point;
* the cold search never prunes a node with relaxation ``<= V`` before its
  own incumbent reaches ``<= V``, so the first node where the cold search
  accepts an incumbent of value ``<= V`` is visited by the warm search too,
  and from there the two searches carry identical state;
* the candidate is *never* seeded as the incumbent itself — doing so could
  win objective ties against the point the cold depth-first order finds
  first and return a different (equally optimal) assignment.

The simplex basis is captured for completeness of the protocol (an external
incremental backend could factorize from it) but the built-in simplex never
replays it: re-starting phase 2 from a foreign basis changes the pivot path
and may land on a different tie vertex, which would break golden files.
"""

from __future__ import annotations

from contextlib import contextmanager
from fractions import Fraction
from typing import Iterator, Optional

#: Most-recent candidates kept per handle; feasibility checks are O(nnz) so
#: a few candidates cost far less than one saved branch-and-bound node.
MAX_CANDIDATES = 3


class WarmStartHandle:
    """Captured state of solved problems, offered to subsequent solves."""

    __slots__ = ("candidates", "basis")

    def __init__(self):
        #: Most-recent-first full variable assignments of prior optima.
        self.candidates: list[dict[str, Fraction]] = []
        #: Final simplex basis of the most recent solve (opaque, not replayed
        #: by the built-in backend; see module docstring).
        self.basis: Optional[list[int]] = None

    def offer(self, assignment: Optional[dict[str, Fraction]],
              basis: Optional[list[int]] = None) -> None:
        """Record a solved assignment (and optionally its final basis)."""
        if assignment:
            self.candidates = ([dict(assignment)]
                               + [c for c in self.candidates
                                  if c != assignment])[:MAX_CANDIDATES]
        if basis is not None:
            self.basis = list(basis)

    def __bool__(self) -> bool:
        return bool(self.candidates)

    @staticmethod
    def merged(*handles: Optional["WarmStartHandle"]) -> "WarmStartHandle":
        """Combine several handles (earlier arguments take precedence)."""
        merged = WarmStartHandle()
        for handle in reversed([h for h in handles if h]):
            for candidate in reversed(handle.candidates):
                merged.offer(candidate)
            if handle.basis is not None:
                merged.basis = list(handle.basis)
        return merged


class WarmStartPool:
    """Depth-keyed warm-start handles shared across sibling solve scenarios.

    One pool is installed per operator evaluation (and per pipeline compile
    when no wider scope exists): the four variants, their degradation rungs,
    and the per-cluster sub-kernels of one operator pose closely related
    dimension problems over overlapping variable sets, so an accepted
    solution at depth ``d`` of one scenario is frequently feasible — and
    hence a valid incumbent bound — at depth ``d`` of the next.  Candidates
    that do not cover a problem's variables or violate its constraints are
    filtered by :func:`incumbent_bound`, so sharing is always safe.
    """

    __slots__ = ("_handles",)

    def __init__(self):
        self._handles: dict[int, WarmStartHandle] = {}

    def handle(self, depth: int) -> WarmStartHandle:
        """The (auto-created) shared handle for dimension ``depth``."""
        handle = self._handles.get(depth)
        if handle is None:
            handle = self._handles[depth] = WarmStartHandle()
        return handle

    def peek(self, depth: int) -> Optional[WarmStartHandle]:
        """The shared handle for ``depth`` if it exists, else ``None``."""
        return self._handles.get(depth)


_current_pool: Optional[WarmStartPool] = None


def get_warm_pool() -> Optional[WarmStartPool]:
    """The ambient warm-start pool, or ``None`` when sharing is off."""
    return _current_pool


@contextmanager
def use_warm_pool(pool: Optional[WarmStartPool]) -> Iterator[
        Optional[WarmStartPool]]:
    """Install ``pool`` as the ambient warm-start pool for the dynamic
    extent (mirrors :func:`repro.solver.dedup.use_solve_cache`)."""
    global _current_pool
    previous = _current_pool
    _current_pool = pool
    try:
        yield pool
    finally:
        _current_pool = previous


def incumbent_bound(problem, objective,
                    handle: Optional[WarmStartHandle]) -> Optional[Fraction]:
    """Objective value of the first handle candidate feasible on ``problem``.

    ``problem`` is a (typically presolve-reduced) ``Problem``; a candidate is
    usable only when it assigns *every* variable of the problem, respects all
    bounds and integrality flags, and satisfies every constraint.  Returns
    ``None`` when no candidate qualifies (or no objective is given — with a
    zero objective the strict prune can never fire, so checking would be
    wasted work).
    """
    if handle is None or objective is None or not handle.candidates:
        return None
    order = problem.variables
    for candidate in handle.candidates:
        restricted = {}
        usable = True
        for name in order:
            value = candidate.get(name)
            if value is None:
                usable = False
                break
            restricted[name] = value
        if not usable:
            continue
        if not _respects_declarations(problem, restricted):
            continue
        if all(c.satisfied_by(restricted) for c in problem.constraints):
            return objective.evaluate(restricted)
    return None


def _respects_declarations(problem, assignment: dict[str, Fraction]) -> bool:
    for name, value in assignment.items():
        if problem._integer[name] and Fraction(value).denominator != 1:
            return False
        lo = problem._lower[name]
        if lo is not None and value < lo:
            return False
        hi = problem._upper[name]
        if hi is not None and value > hi:
            return False
    return True
