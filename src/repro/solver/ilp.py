"""Mixed-integer branch and bound on top of the exact simplex.

Only the variables flagged in ``integer_mask`` are branched on; the rest
(e.g. Farkas multipliers, which need not be integral) stay continuous.  All
integer variables are expected to be bounded — the scheduling problems built
by this library always bound schedule coefficients — which guarantees
termination.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction
from typing import Optional, Sequence

from repro.errors import BranchLimitExceeded
from repro.obs.runtime import get_obs
from repro.solver.budget import get_budget
from repro.solver.lp import LinearProgram, LPResult, LPStatus, solve_lp

__all__ = ["BranchLimitExceeded", "solve_ilp", "integer_feasible"]


def _report_bb_nodes(nodes: int) -> None:
    """Feed branch-and-bound activity to the ambient metrics registry."""
    metrics = get_obs().metrics
    if metrics.enabled:
        metrics.count("solver.ilp_solves")
        metrics.count("solver.bb_nodes", nodes)


def _is_integral(value: Fraction) -> bool:
    return value.denominator == 1


def _first_fractional(x: Sequence[Fraction], integer_mask: Sequence[bool]) -> Optional[int]:
    for i, (v, is_int) in enumerate(zip(x, integer_mask)):
        if is_int and not _is_integral(v):
            return i
    return None


def solve_ilp(lp: LinearProgram,
              integer_mask: Optional[Sequence[bool]] = None,
              max_nodes: int = 100_000) -> LPResult:
    """Solve a mixed-integer program by branch and bound.

    ``integer_mask[i]`` marks variable ``i`` as integral (all variables by
    default).  Returns an :class:`LPResult` whose ``x`` satisfies the
    integrality requirements, or status INFEASIBLE/UNBOUNDED.
    """
    if integer_mask is None:
        integer_mask = [True] * lp.n_vars
    if len(integer_mask) != lp.n_vars:
        raise ValueError("integer_mask length does not match variable count")

    root = solve_lp(lp)
    if root.status is not LPStatus.OPTIMAL:
        return root

    best: Optional[LPResult] = None
    # Stack of (lower bounds, upper bounds) overrides; depth-first search.
    stack: list[tuple[list, list]] = [(list(lp.lower), list(lp.upper))]
    nodes = 0

    try:
        while stack:
            lower, upper = stack.pop()
            nodes += 1
            if nodes > max_nodes:
                raise BranchLimitExceeded(f"exceeded {max_nodes} branch-and-bound nodes")
            budget = get_budget()
            if budget is not None:
                budget.charge_node()
            node_lp = replace(lp, lower=list(lower), upper=list(upper))
            result = solve_lp(node_lp)
            if result.status is not LPStatus.OPTIMAL:
                continue
            if best is not None and result.objective >= best.objective:
                continue  # bound: the relaxation cannot beat the incumbent
            branch_var = _first_fractional(result.x, integer_mask)
            if branch_var is None:
                best = result
                continue
            value = result.x[branch_var]
            floor_val = Fraction(value.numerator // value.denominator)
            # Explore the floor side first (schedule coefficients tend small).
            up_lower = list(lower)
            up_lower[branch_var] = floor_val + 1
            stack.append((up_lower, list(upper)))
            down_upper = list(upper)
            down_upper[branch_var] = floor_val
            stack.append((list(lower), down_upper))
    finally:
        _report_bb_nodes(nodes)

    if best is None:
        return LPResult(LPStatus.INFEASIBLE)
    return best


def integer_feasible(lp: LinearProgram,
                     integer_mask: Optional[Sequence[bool]] = None,
                     max_nodes: int = 100_000) -> bool:
    """True iff the system has a (mixed-)integer point.

    The objective of ``lp`` is ignored; feasibility is checked with a zero
    objective so branch and bound stops at the first integral point.
    """
    zero_obj = replace(lp, objective=[Fraction(0)] * lp.n_vars)
    if integer_mask is None:
        integer_mask = [True] * lp.n_vars

    root = solve_lp(zero_obj)
    if root.status is not LPStatus.OPTIMAL:
        return False

    stack: list[tuple[list, list]] = [(list(lp.lower), list(lp.upper))]
    nodes = 0
    try:
        while stack:
            lower, upper = stack.pop()
            nodes += 1
            if nodes > max_nodes:
                raise BranchLimitExceeded(f"exceeded {max_nodes} branch-and-bound nodes")
            budget = get_budget()
            if budget is not None:
                budget.charge_node()
            node_lp = replace(zero_obj, lower=list(lower), upper=list(upper))
            result = solve_lp(node_lp)
            if result.status is not LPStatus.OPTIMAL:
                continue
            branch_var = _first_fractional(result.x, integer_mask)
            if branch_var is None:
                return True
            value = result.x[branch_var]
            floor_val = Fraction(value.numerator // value.denominator)
            up_lower = list(lower)
            up_lower[branch_var] = floor_val + 1
            stack.append((up_lower, list(upper)))
            down_upper = list(upper)
            down_upper[branch_var] = floor_val
            stack.append((list(lower), down_upper))
        return False
    finally:
        _report_bb_nodes(nodes)
