"""Mixed-integer branch and bound on top of the exact simplex.

Only the variables flagged in ``integer_mask`` are branched on; the rest
(e.g. Farkas multipliers, which need not be integral) stay continuous.  All
integer variables are expected to be bounded — the scheduling problems built
by this library always bound schedule coefficients — which guarantees
termination.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction
from typing import Optional, Sequence

from repro.errors import BranchLimitExceeded
from repro.obs.runtime import get_obs
from repro.solver.budget import get_budget
from repro.solver.lp import LinearProgram, LPResult, LPStatus, solve_lp

__all__ = ["BranchLimitExceeded", "solve_ilp", "integer_feasible"]


def _with_bounds(lp: LinearProgram, lower: list, upper: list) -> LinearProgram:
    """A bounds-override node LP sharing ``lp``'s (read-only) matrices.

    ``dataclasses.replace`` would re-run ``__post_init__`` — revalidating
    and re-converting the entire constraint matrix on every branch-and-bound
    node.  All values already are exact :class:`Fraction`s here, so the node
    LP is assembled directly.
    """
    node = object.__new__(LinearProgram)
    node.objective = lp.objective
    node.a_ub = lp.a_ub
    node.b_ub = lp.b_ub
    node.a_eq = lp.a_eq
    node.b_eq = lp.b_eq
    node.lower = lower
    node.upper = upper
    return node


def _report_bb_nodes(nodes: int) -> None:
    """Feed branch-and-bound activity to the ambient metrics registry."""
    metrics = get_obs().metrics
    if metrics.enabled:
        metrics.count("solver.ilp_solves")
        metrics.count("solver.bb_nodes", nodes)


def _is_integral(value: Fraction) -> bool:
    return value.denominator == 1


def _first_fractional(x: Sequence[Fraction], integer_mask: Sequence[bool]) -> Optional[int]:
    for i, (v, is_int) in enumerate(zip(x, integer_mask)):
        if is_int and not _is_integral(v):
            return i
    return None


def solve_ilp(lp: LinearProgram,
              integer_mask: Optional[Sequence[bool]] = None,
              max_nodes: int = 100_000,
              incumbent_bound: Optional[Fraction] = None) -> LPResult:
    """Solve a mixed-integer program by branch and bound.

    ``integer_mask[i]`` marks variable ``i`` as integral (all variables by
    default).  Returns an :class:`LPResult` whose ``x`` satisfies the
    integrality requirements, or status INFEASIBLE/UNBOUNDED.

    ``incumbent_bound`` is the objective value of a *known feasible integral
    point* (from a warm-start handle or a previous lexicographic level).  It
    enables one extra prune — discarding nodes whose relaxation is *strictly*
    worse than the bound — which provably cannot change the returned point:
    every subtree it removes contains only values worse than the optimum, and
    the first node at which the plain search would accept an incumbent of
    value <= bound is reached unpruned.  The candidate is never seeded as
    ``best`` (that could win objective ties against the point the cold search
    finds first), so warm results stay bitwise-identical to cold ones.
    """
    if integer_mask is None:
        integer_mask = [True] * lp.n_vars
    if len(integer_mask) != lp.n_vars:
        raise ValueError("integer_mask length does not match variable count")

    root = solve_lp(lp)
    if root.status is not LPStatus.OPTIMAL:
        return root

    best: Optional[LPResult] = None
    # Stack of (lower bounds, upper bounds, pre-solved relaxation) entries;
    # depth-first search.  The root node reuses ``root`` instead of solving
    # the identical LP a second time.
    stack: list = [(list(lp.lower), list(lp.upper), root)]
    nodes = 0

    try:
        while stack:
            lower, upper, presolved = stack.pop()
            nodes += 1
            if nodes > max_nodes:
                raise BranchLimitExceeded(f"exceeded {max_nodes} branch-and-bound nodes")
            budget = get_budget()
            if budget is not None:
                budget.charge_node()
            if presolved is not None:
                result = presolved
            else:
                result = solve_lp(_with_bounds(lp, list(lower), list(upper)))
            if result.status is not LPStatus.OPTIMAL:
                continue
            if best is not None and result.objective >= best.objective:
                continue  # bound: the relaxation cannot beat the incumbent
            if incumbent_bound is not None and result.objective > incumbent_bound:
                continue  # a known feasible point already does at least this well
            branch_var = _first_fractional(result.x, integer_mask)
            if branch_var is None:
                best = result
                continue
            value = result.x[branch_var]
            floor_val = Fraction(value.numerator // value.denominator)
            # Explore the floor side first (schedule coefficients tend small).
            up_lower = list(lower)
            up_lower[branch_var] = floor_val + 1
            stack.append((up_lower, list(upper), None))
            down_upper = list(upper)
            down_upper[branch_var] = floor_val
            stack.append((list(lower), down_upper, None))
    finally:
        _report_bb_nodes(nodes)

    if best is None:
        return LPResult(LPStatus.INFEASIBLE)
    return best


def integer_feasible(lp: LinearProgram,
                     integer_mask: Optional[Sequence[bool]] = None,
                     max_nodes: int = 100_000) -> bool:
    """True iff the system has a (mixed-)integer point.

    The objective of ``lp`` is ignored; feasibility is checked with a zero
    objective so branch and bound stops at the first integral point.
    """
    zero_obj = replace(lp, objective=[Fraction(0)] * lp.n_vars)
    if integer_mask is None:
        integer_mask = [True] * lp.n_vars

    root = solve_lp(zero_obj)
    if root.status is not LPStatus.OPTIMAL:
        return False

    stack: list = [(list(lp.lower), list(lp.upper), root)]
    nodes = 0
    try:
        while stack:
            lower, upper, presolved = stack.pop()
            nodes += 1
            if nodes > max_nodes:
                raise BranchLimitExceeded(f"exceeded {max_nodes} branch-and-bound nodes")
            budget = get_budget()
            if budget is not None:
                budget.charge_node()
            if presolved is not None:
                result = presolved
            else:
                result = solve_lp(
                    _with_bounds(zero_obj, list(lower), list(upper)))
            if result.status is not LPStatus.OPTIMAL:
                continue
            branch_var = _first_fractional(result.x, integer_mask)
            if branch_var is None:
                return True
            value = result.x[branch_var]
            floor_val = Fraction(value.numerator // value.denominator)
            up_lower = list(lower)
            up_lower[branch_var] = floor_val + 1
            stack.append((up_lower, list(upper), None))
            down_upper = list(upper)
            down_upper[branch_var] = floor_val
            stack.append((list(lower), down_upper, None))
        return False
    finally:
        _report_bb_nodes(nodes)
