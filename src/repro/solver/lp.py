"""Two-phase primal simplex over exact rationals.

The solver accepts problems in the general form::

    minimize    c . x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lo_i <= x_i <= hi_i      (either bound may be absent)

and reduces them internally to standard form (equalities over non-negative
variables) before running a tableau simplex with Bland's anti-cycling rule.
All arithmetic is on :class:`fractions.Fraction`, so results are exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from repro.linalg.rational import frac
from repro.obs.runtime import get_obs
from repro.solver.budget import get_budget

# Shared immutable zero/one: the hot loops below allocate these constantly.
_F0 = Fraction(0)
_F1 = Fraction(1)


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LinearProgram:
    """A minimization LP in general (inequality/equality/bounds) form."""

    objective: list[Fraction]
    a_ub: list[list[Fraction]] = field(default_factory=list)
    b_ub: list[Fraction] = field(default_factory=list)
    a_eq: list[list[Fraction]] = field(default_factory=list)
    b_eq: list[Fraction] = field(default_factory=list)
    lower: list[Optional[Fraction]] = field(default_factory=list)
    upper: list[Optional[Fraction]] = field(default_factory=list)

    def __post_init__(self):
        n = len(self.objective)
        self.objective = [frac(x) for x in self.objective]
        self.a_ub = [[frac(x) for x in row] for row in self.a_ub]
        self.b_ub = [frac(x) for x in self.b_ub]
        self.a_eq = [[frac(x) for x in row] for row in self.a_eq]
        self.b_eq = [frac(x) for x in self.b_eq]
        if not self.lower:
            self.lower = [Fraction(0)] * n
        if not self.upper:
            self.upper = [None] * n
        self.lower = [None if lo is None else frac(lo) for lo in self.lower]
        self.upper = [None if hi is None else frac(hi) for hi in self.upper]
        for row in self.a_ub + self.a_eq:
            if len(row) != n:
                raise ValueError("constraint row length does not match objective")
        if len(self.b_ub) != len(self.a_ub) or len(self.b_eq) != len(self.a_eq):
            raise ValueError("rhs length does not match constraint matrix")
        if len(self.lower) != n or len(self.upper) != n:
            raise ValueError("bounds length does not match variable count")

    @classmethod
    def _trusted(cls, objective, a_ub, b_ub, a_eq, b_eq, lower, upper
                 ) -> "LinearProgram":
        """Constructor for callers that guarantee the invariants.

        ``__post_init__`` coerces and validates every matrix entry — right
        for hand-written programs, pure overhead for machine-built ones.
        All entries must already be exact :class:`Fraction`s (bounds may be
        None) with consistent shapes.
        """
        lp = object.__new__(cls)
        lp.objective = objective
        lp.a_ub = a_ub
        lp.b_ub = b_ub
        lp.a_eq = a_eq
        lp.b_eq = b_eq
        lp.lower = lower
        lp.upper = upper
        return lp

    @property
    def n_vars(self) -> int:
        return len(self.objective)


@dataclass
class LPResult:
    """Result of an LP solve: status, primal point and objective value.

    ``basis`` is the final simplex basis (standard-form column indices, one
    per tableau row).  It is diagnostic state for warm-start handles; it is
    never replayed into a later solve, so results stay pivot-for-pivot
    reproducible.
    """

    status: LPStatus
    x: Optional[list[Fraction]] = None
    objective: Optional[Fraction] = None
    basis: Optional[list[int]] = None


def solve_lp(lp: LinearProgram) -> LPResult:
    """Solve ``lp`` exactly; see :class:`LinearProgram` for the form."""
    std = _Standardizer(lp)
    tableau = _Tableau(std.rows, std.rhs, std.n_std_vars)
    try:
        if not tableau.phase_one(std.row_slack):
            return LPResult(LPStatus.INFEASIBLE)
        status = tableau.phase_two(std.std_objective)
        if status is LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED)
        x_std = tableau.primal_solution()
        x = std.recover(x_std)
        value = sum((c * v for c, v in zip(lp.objective, x)), _F0)
        return LPResult(LPStatus.OPTIMAL, x, value, basis=list(tableau.basis))
    finally:
        metrics = get_obs().metrics
        if metrics.enabled:
            metrics.count("solver.lp_solves")
            metrics.count("solver.pivots", tableau.pivots)


class _Standardizer:
    """Rewrites a general-form LP into ``A x = b, x >= 0``.

    Each original variable maps to either a shifted non-negative variable, a
    reflected one, or a difference of two non-negative variables; finite
    bounds on the opposite side become extra inequality rows.
    """

    def __init__(self, lp: LinearProgram):
        self.lp = lp
        # Mapping for original variable i:
        #   ("shift", j, lo)    x_i = lo + y_j
        #   ("reflect", j, hi)  x_i = hi - y_j
        #   ("free", j, k)      x_i = y_j - y_k
        self.mapping: list[tuple] = []
        self.n_std_vars = 0
        extra_ub: list[tuple[int, Fraction]] = []  # (std var, bound) rows y_j <= b

        for i in range(lp.n_vars):
            lo, hi = lp.lower[i], lp.upper[i]
            if lo is not None:
                j = self._new_var()
                self.mapping.append(("shift", j, lo))
                if hi is not None:
                    extra_ub.append((j, hi - lo))
            elif hi is not None:
                j = self._new_var()
                self.mapping.append(("reflect", j, hi))
            else:
                j = self._new_var()
                k = self._new_var()
                self.mapping.append(("free", j, k))

        # Rows stay sparse (column -> coefficient dicts) end to end; the
        # tableau consumes them directly, so no densify/re-sparsify round trip.
        self.rows: list[dict[int, Fraction]] = []
        self.rhs: list[Fraction] = []
        # For each row, the slack column usable as an initial basic variable
        # (only when the row was not sign-flipped), or None.
        self.row_slack: list[Optional[int]] = []

        for row, b in zip(lp.a_ub, lp.b_ub):
            coeffs, shift = self._translate(row)
            slack = self._new_var()
            coeffs[slack] = _F1
            self._append(coeffs, b - shift, slack)
        for row, b in zip(lp.a_eq, lp.b_eq):
            coeffs, shift = self._translate(row)
            self._append(coeffs, b - shift, None)
        for j, bound in extra_ub:
            slack = self._new_var()
            self._append({j: _F1, slack: _F1}, bound, slack)

        # Standard-form objective over the y variables.
        obj, self.obj_shift = self._translate(lp.objective)
        self.std_objective = [obj.get(j, _F0) for j in range(self.n_std_vars)]

    def _new_var(self) -> int:
        self.n_std_vars += 1
        return self.n_std_vars - 1

    def _translate(self, row: Sequence[Fraction]) -> tuple[dict[int, Fraction], Fraction]:
        """Express ``row . x`` as ``coeffs . y + shift``."""
        coeffs: dict[int, Fraction] = {}
        shift = _F0
        for i, a in enumerate(row):
            if not a.numerator:
                continue
            kind = self.mapping[i]
            if kind[0] == "shift":
                _, j, lo = kind
                coeffs[j] = coeffs.get(j, _F0) + a
                shift += a * lo
            elif kind[0] == "reflect":
                _, j, hi = kind
                coeffs[j] = coeffs.get(j, _F0) - a
                shift += a * hi
            else:
                _, j, k = kind
                coeffs[j] = coeffs.get(j, _F0) + a
                coeffs[k] = coeffs.get(k, _F0) - a
        return coeffs, shift

    def _append(self, coeffs: dict[int, Fraction], rhs: Fraction,
                slack: Optional[int]) -> None:
        if rhs < 0:
            coeffs = {j: -a for j, a in coeffs.items()}
            rhs = -rhs
            slack = None  # the flipped slack has coefficient -1: unusable
        self.rows.append(coeffs)
        self.rhs.append(rhs)
        self.row_slack.append(slack)

    def recover(self, y: list[Fraction]) -> list[Fraction]:
        """Map a standard-form point back to original variables."""
        x = []
        for kind in self.mapping:
            if kind[0] == "shift":
                _, j, lo = kind
                x.append(lo + y[j])
            elif kind[0] == "reflect":
                _, j, hi = kind
                x.append(hi - y[j])
            else:
                _, j, k = kind
                x.append(y[j] - y[k])
        return x


class _Tableau:
    """Sparse simplex tableau (rows as dicts) with Bland's rule."""

    def __init__(self, rows: list[dict[int, Fraction]], rhs: list[Fraction],
                 n_vars: int):
        self.n_vars = n_vars
        self.n_rows = len(rows)
        # Translation can leave exact-zero entries behind; drop them here so
        # sparsity invariants hold (absent == zero) throughout the pivots.
        self.rows: list[dict[int, Fraction]] = [
            {j: a for j, a in r.items() if a.numerator} for r in rows]
        self.rhs = list(rhs)
        self.basis: list[int] = [-1] * self.n_rows
        self.pivots = 0

    def phase_one(self, row_slack: Optional[list[Optional[int]]] = None) -> bool:
        """Find a feasible basis; True iff one exists.

        Rows carrying a usable slack column (coefficient +1, nonnegative
        rhs) start with that slack basic — only the remaining rows get
        artificial variables, which usually makes phase one trivial for
        inequality-dominated systems.
        """
        n = self.n_vars
        art_rows = []
        for i in range(self.n_rows):
            slack = row_slack[i] if row_slack else None
            if slack is not None and self.rows[i].get(slack) == 1:
                self.basis[i] = slack
                self._clear_column_except(slack, i)
            else:
                art_rows.append(i)
        if art_rows:
            width = n
            cost: dict[int, Fraction] = {}
            for i in art_rows:
                art = width
                width += 1
                self.rows[i][art] = _F1
                self.basis[i] = art
                cost[art] = _F1
            self._run(cost, width)
            value = sum((self.rhs[i] for i in range(self.n_rows)
                         if self.basis[i] >= n), _F0)
            if value != 0:
                return False
            # Drive artificials out of the basis where possible.
            for i in range(self.n_rows):
                if self.basis[i] >= n:
                    pivot_col = next((j for j in sorted(self.rows[i])
                                      if j < n and self.rows[i][j] != 0), None)
                    if pivot_col is not None:
                        self._pivot(i, pivot_col)
            # Drop artificial columns; rows whose basic variable is still
            # artificial have zero rhs and are redundant.
            keep = [i for i in range(self.n_rows) if self.basis[i] < n]
            self.rows = [{j: a for j, a in self.rows[i].items() if j < n}
                         for i in keep]
            self.rhs = [self.rhs[i] for i in keep]
            self.basis = [self.basis[i] for i in keep]
            self.n_rows = len(keep)
        return True

    def _clear_column_except(self, col: int, pivot_row: int) -> None:
        """Make ``col`` a unit column (it already is in typical input, but a
        slack may appear in bound rows added later)."""
        if self.rows[pivot_row].get(col) != 1:
            return
        for i in range(self.n_rows):
            if i != pivot_row and col in self.rows[i]:
                self._eliminate(i, pivot_row, self.rows[i][col])

    def phase_two(self, objective: list[Fraction]) -> LPStatus:
        """Minimize ``objective`` from the current feasible basis."""
        cost = {j: c for j, c in enumerate(objective) if c.numerator}
        return self._run(cost, self.n_vars)

    def _reduced_costs(self, cost: dict[int, Fraction],
                       width: int) -> dict[int, Fraction]:
        # Rows are already B^{-1} A, so reduced = c - sum_i c_B[i] * row_i.
        reduced = dict(cost)
        for i, b in enumerate(self.basis):
            cb = cost.get(b, _F0)
            if cb.numerator:
                for j, a in self.rows[i].items():
                    if j < width:
                        value = reduced.get(j, _F0) - cb * a
                        if value:
                            reduced[j] = value
                        else:
                            reduced.pop(j, None)
        return reduced

    def _run(self, cost: dict[int, Fraction], width: int) -> LPStatus:
        basis_set = set(self.basis)
        # Reduced costs are computed once and then maintained across pivots:
        # after pivoting on (row r, col e), r'_j = r_j - r_e * a'_rj where
        # a'_r is the NEW (normalized) pivot row.  This is the exact algebraic
        # identity for the price update, so the entering-column choices (and
        # hence every pivot) match the full recomputation bit for bit.
        reduced = self._reduced_costs(cost, width)
        while True:
            # Bland: smallest eligible index.  ``v.numerator < 0`` is the
            # sign of the Fraction (denominators are always positive) —
            # an int compare instead of a rational comparison.
            entering = min(
                (j for j, v in reduced.items()
                 if v.numerator < 0 and j not in basis_set),
                default=None)
            if entering is None:
                return LPStatus.OPTIMAL
            # Ratio test with Bland's tie-break on the leaving basic variable.
            leaving = None
            best = None
            for i in range(self.n_rows):
                a = self.rows[i].get(entering)
                if a is not None and a.numerator > 0:
                    ratio = self.rhs[i] / a
                    if best is None or ratio < best or (
                            ratio == best and self.basis[i] < self.basis[leaving]):
                        best = ratio
                        leaving = i
            if leaving is None:
                return LPStatus.UNBOUNDED
            basis_set.discard(self.basis[leaving])
            self._pivot(leaving, entering)
            basis_set.add(entering)
            r_e = reduced[entering]
            for j, a in self.rows[leaving].items():
                if j < width:
                    value = reduced.get(j, _F0) - r_e * a
                    if value:
                        reduced[j] = value
                    else:
                        reduced.pop(j, None)

    def _pivot(self, row: int, col: int) -> None:
        self.pivots += 1
        budget = get_budget()
        if budget is not None:
            budget.charge_pivot()
        pivot_row = self.rows[row]
        inv = 1 / pivot_row[col]
        if inv != 1:
            self.rows[row] = pivot_row = {j: a * inv for j, a in pivot_row.items()}
            self.rhs[row] *= inv
        for i in range(self.n_rows):
            if i != row:
                factor = self.rows[i].get(col)
                if factor:
                    self._eliminate(i, row, factor)
        self.basis[row] = col

    def _eliminate(self, target: int, source: int, factor: Fraction) -> None:
        """row[target] -= factor * row[source]; rhs too."""
        src = self.rows[source]
        dst = self.rows[target]
        if factor == 1:  # +/-1 factors dominate; skip the multiply
            for j, a in src.items():
                value = dst.get(j, _F0) - a
                if value:
                    dst[j] = value
                else:
                    dst.pop(j, None)
        elif factor == -1:
            for j, a in src.items():
                value = dst.get(j, _F0) + a
                if value:
                    dst[j] = value
                else:
                    dst.pop(j, None)
        else:
            for j, a in src.items():
                value = dst.get(j, _F0) - factor * a
                if value:
                    dst[j] = value
                else:
                    dst.pop(j, None)
        self.rhs[target] -= factor * self.rhs[source]

    def primal_solution(self) -> list[Fraction]:
        x = [_F0] * self.n_vars
        for i, b in enumerate(self.basis):
            if b < self.n_vars:
                x[b] = self.rhs[i]
        return x
