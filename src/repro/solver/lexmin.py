"""Lexicographic minimization over integer points.

isl's scheduler solves each per-dimension problem by lexicographically
minimizing a sequence of objectives (sum of parameter-bound coefficients,
the constant bound, then the schedule coefficients themselves).  We reproduce
that here: minimize objective 0, pin it with an equality, minimize objective
1, and so on.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction
from typing import Optional, Sequence

from repro.solver.lp import LinearProgram, LPResult, LPStatus
from repro.solver.ilp import solve_ilp


def lexicographic_minimize(lp: LinearProgram,
                           objectives: Sequence[Sequence[Fraction]],
                           integer_mask: Optional[Sequence[bool]] = None,
                           max_nodes: int = 100_000,
                           incumbent_bound: Optional[Fraction] = None) -> LPResult:
    """Lexicographically minimize ``objectives`` over the feasible set of ``lp``.

    ``lp.objective`` is ignored; each row of ``objectives`` is one level of
    the lexicographic order.  Returns the final point (status OPTIMAL), or
    INFEASIBLE/UNBOUNDED from the first failing level.

    Levels chain their incumbents: the optimum of level ``k`` is a feasible
    integral point of level ``k+1``'s pinned problem, so its value under the
    next objective seeds that solve's strict bound (see
    :func:`repro.solver.ilp.solve_ilp`).  ``incumbent_bound`` optionally
    seeds level 0 the same way (e.g. from a warm-start candidate).
    """
    if not objectives:
        raise ValueError("need at least one objective level")
    current = lp
    result: Optional[LPResult] = None
    bound = incumbent_bound
    levels = [[Fraction(c) for c in level] for level in objectives]
    for index, level in enumerate(levels):
        if len(level) != lp.n_vars:
            raise ValueError("objective level length does not match variable count")
        current = replace(current, objective=level)
        result = solve_ilp(current, integer_mask=integer_mask,
                           max_nodes=max_nodes, incumbent_bound=bound)
        if result.status is not LPStatus.OPTIMAL:
            return result
        # Pin this level's value and move to the next one.
        current = replace(
            current,
            a_eq=current.a_eq + [level],
            b_eq=current.b_eq + [result.objective],
        )
        if index + 1 < len(levels):
            nxt = levels[index + 1]
            bound = sum((c * v for c, v in zip(nxt, result.x)), Fraction(0))
    assert result is not None
    return result
