"""Pluggable solver backends.

The scheduling stack never calls :func:`repro.solver.lp.solve_lp` /
:func:`repro.solver.ilp.solve_ilp` directly any more; it goes through a
:class:`SolverBackend` resolved from a registry.  This keeps the exact
rational simplex as the default while leaving the door open for an
external exact solver (isl, a GMP-backed simplex, ...) to slot in without
touching the schedulers.

Selection order for :func:`resolve_backend`:

1. an explicit ``name`` argument (``SchedulerOptions.solver`` / ``--solver``),
2. the ``REPRO_SOLVER`` environment variable,
3. the default ``"simplex"``.

Backends advertise ``incremental``: whether warm-start handles and the
content-keyed solve cache may be used with them.  ``simplex-nowarm`` is the
same rational simplex with all reuse disabled — CI runs the full test suite
against both to prove warm-started results are bitwise-identical to cold
ones.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from repro.solver.lp import LinearProgram, LPResult, solve_lp
from repro.solver.ilp import solve_ilp
from repro.solver.lexmin import lexicographic_minimize

ENV_VAR = "REPRO_SOLVER"
DEFAULT_BACKEND = "simplex"


@runtime_checkable
class SolverBackend(Protocol):
    """Thin per-engine abstraction over the three solver entry points."""

    name: str
    #: Whether warm-start handles and the ambient solve cache apply.
    incremental: bool

    def solve_lp(self, lp: LinearProgram) -> LPResult:
        ...

    def solve_ilp(self, lp: LinearProgram,
                  integer_mask: Optional[Sequence[bool]] = None,
                  max_nodes: int = 100_000,
                  incumbent_bound: Optional[Fraction] = None) -> LPResult:
        ...

    def lexmin(self, lp: LinearProgram,
               objectives: Sequence[Sequence[Fraction]],
               integer_mask: Optional[Sequence[bool]] = None,
               max_nodes: int = 100_000,
               incumbent_bound: Optional[Fraction] = None) -> LPResult:
        ...


class RationalSimplexBackend:
    """The default backend: exact two-phase simplex + branch and bound."""

    name = "simplex"
    incremental = True

    def solve_lp(self, lp: LinearProgram) -> LPResult:
        return solve_lp(lp)

    def solve_ilp(self, lp: LinearProgram,
                  integer_mask: Optional[Sequence[bool]] = None,
                  max_nodes: int = 100_000,
                  incumbent_bound: Optional[Fraction] = None) -> LPResult:
        return solve_ilp(lp, integer_mask=integer_mask, max_nodes=max_nodes,
                         incumbent_bound=incumbent_bound)

    def lexmin(self, lp: LinearProgram,
               objectives: Sequence[Sequence[Fraction]],
               integer_mask: Optional[Sequence[bool]] = None,
               max_nodes: int = 100_000,
               incumbent_bound: Optional[Fraction] = None) -> LPResult:
        return lexicographic_minimize(lp, objectives,
                                      integer_mask=integer_mask,
                                      max_nodes=max_nodes,
                                      incumbent_bound=incumbent_bound)


class NoWarmstartSimplexBackend(RationalSimplexBackend):
    """Same simplex, with every reuse path disabled.

    ``incremental = False`` makes ``Problem.solve`` skip the solve cache and
    warm-start candidates, and the incumbent bounds passed down here are
    dropped.  Running tier-1 under ``REPRO_SOLVER=simplex-nowarm`` therefore
    exercises the pure cold paths — any divergence from the default backend
    is a reuse bug.
    """

    name = "simplex-nowarm"
    incremental = False

    def solve_ilp(self, lp: LinearProgram,
                  integer_mask: Optional[Sequence[bool]] = None,
                  max_nodes: int = 100_000,
                  incumbent_bound: Optional[Fraction] = None) -> LPResult:
        return solve_ilp(lp, integer_mask=integer_mask, max_nodes=max_nodes)

    def lexmin(self, lp: LinearProgram,
               objectives: Sequence[Sequence[Fraction]],
               integer_mask: Optional[Sequence[bool]] = None,
               max_nodes: int = 100_000,
               incumbent_bound: Optional[Fraction] = None) -> LPResult:
        return lexicographic_minimize(lp, objectives,
                                      integer_mask=integer_mask,
                                      max_nodes=max_nodes)


_REGISTRY: dict[str, Callable[[], SolverBackend]] = {}
_INSTANCES: dict[str, SolverBackend] = {}


def register_backend(name: str, factory: Callable[[], SolverBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Registered backend names, registration order."""
    return list(_REGISTRY)


def resolve_backend(name: Optional[str] = None) -> SolverBackend:
    """Resolve a backend by name / ``REPRO_SOLVER`` / default.

    Instances are cached per name — backends are expected to be stateless.
    """
    chosen = name or os.environ.get(ENV_VAR, "") or DEFAULT_BACKEND
    factory = _REGISTRY.get(chosen)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown solver backend {chosen!r} (registered: {known})")
    instance = _INSTANCES.get(chosen)
    if instance is None:
        instance = _INSTANCES[chosen] = factory()
    return instance


register_backend(RationalSimplexBackend.name, RationalSimplexBackend)
register_backend(NoWarmstartSimplexBackend.name, NoWarmstartSimplexBackend)
