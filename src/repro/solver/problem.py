"""Named-variable problem builder with a small linear-expression DSL.

The constraint builders in :mod:`repro.schedule` manipulate dozens of named
unknowns (schedule coefficients per statement and dimension, Farkas
multipliers, bound coefficients).  Building raw coefficient rows by hand is
error-prone, so this module provides:

* :class:`LinExpr` — an affine expression ``sum(c_i * v_i) + const`` over
  named variables, supporting ``+ - *`` and comparisons that yield
  :class:`Constraint` objects.
* :class:`Problem` — collects variables (with bounds and integrality) and
  constraints and lowers everything to a :class:`LinearProgram`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Union

from repro.linalg.rational import frac
from repro.obs.runtime import get_obs
from repro.solver.lp import LinearProgram, LPResult, LPStatus
from repro.solver.lexmin import lexicographic_minimize
from repro.solver.ilp import solve_ilp

Scalar = Union[int, Fraction, str]


class LinExpr:
    """An affine expression over named variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[dict[str, Fraction]] = None, const=0):
        self.coeffs: dict[str, Fraction] = {}
        if coeffs:
            for name, c in coeffs.items():
                c = frac(c)
                if c != 0:
                    self.coeffs[name] = c
        self.const = frac(const)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def of(cls, value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        return cls(const=frac(value))

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.const)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.of(other)
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.of(other) + (-self)

    def __mul__(self, k) -> "LinExpr":
        k = frac(k)
        return LinExpr({n: k * c for n, c in self.coeffs.items()}, k * self.const)

    __rmul__ = __mul__

    # -- comparisons produce constraints -------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.of(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.of(other), ">=")

    def eq(self, other) -> "Constraint":
        """Equality constraint (``==`` is kept as identity comparison)."""
        return Constraint(self - LinExpr.of(other), "==")

    # -- equality (structural; ``.eq()`` builds constraints instead) ----------

    def __eq__(self, other):
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self):
        return hash((tuple(sorted(self.coeffs.items())), self.const))

    # -- inspection ------------------------------------------------------------

    def evaluate(self, assignment: dict[str, Fraction]) -> Fraction:
        """Value of the expression under a full variable assignment."""
        total = self.const
        for name, c in self.coeffs.items():
            total += c * frac(assignment[name])
        return total

    def variables(self) -> set[str]:
        return set(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def __repr__(self):
        parts = [f"{c}*{n}" for n, c in sorted(self.coeffs.items())]
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def var(name: str) -> LinExpr:
    """A :class:`LinExpr` consisting of the single variable ``name``."""
    return LinExpr({name: Fraction(1)})


@dataclass(frozen=True)
class Constraint:
    """``expr (<=|>=|==) 0`` — the rhs is folded into the expression."""

    expr: LinExpr
    sense: str  # "<=", ">=", "=="

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {self.sense!r}")

    def satisfied_by(self, assignment: dict[str, Fraction]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return value <= 0
        if self.sense == ">=":
            return value >= 0
        return value == 0

    def __repr__(self):
        return f"{self.expr!r} {self.sense} 0"


class Problem:
    """Collects named variables and constraints; lowers to LinearProgram."""

    def __init__(self):
        self._order: list[str] = []
        self._lower: dict[str, Optional[Fraction]] = {}
        self._upper: dict[str, Optional[Fraction]] = {}
        self._integer: dict[str, bool] = {}
        self._constraints: list[Constraint] = []

    # -- declaration -----------------------------------------------------------

    def add_variable(self, name: str, lower=None, upper=None,
                     integer: bool = True) -> LinExpr:
        """Declare a variable; returns its expression.  Idempotent bounds
        updates tighten (never loosen) existing declarations."""
        if name not in self._integer:
            self._order.append(name)
            self._lower[name] = None if lower is None else frac(lower)
            self._upper[name] = None if upper is None else frac(upper)
            self._integer[name] = integer
        else:
            if lower is not None:
                old = self._lower[name]
                self._lower[name] = frac(lower) if old is None else max(old, frac(lower))
            if upper is not None:
                old = self._upper[name]
                self._upper[name] = frac(upper) if old is None else min(old, frac(upper))
            self._integer[name] = self._integer[name] or integer
        return var(name)

    def add_constraint(self, constraint: Constraint) -> None:
        """Add one constraint; its variables must be declared."""
        missing = constraint.expr.variables() - set(self._integer)
        if missing:
            raise KeyError(f"undeclared variables in constraint: {sorted(missing)}")
        self._constraints.append(constraint)

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for c in constraints:
            self.add_constraint(c)

    @property
    def variables(self) -> list[str]:
        return list(self._order)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def clone(self) -> "Problem":
        """Independent copy (shares immutable constraints)."""
        clone = Problem()
        clone._order = list(self._order)
        clone._lower = dict(self._lower)
        clone._upper = dict(self._upper)
        clone._integer = dict(self._integer)
        clone._constraints = list(self._constraints)
        return clone

    # -- lowering ---------------------------------------------------------------

    def _row(self, expr: LinExpr) -> list[Fraction]:
        index = {name: i for i, name in enumerate(self._order)}
        row = [Fraction(0)] * len(self._order)
        for name, c in expr.coeffs.items():
            row[index[name]] = c
        return row

    def lower_to_lp(self, objective: Optional[LinExpr] = None) -> LinearProgram:
        """Produce the equivalent :class:`LinearProgram`."""
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for c in self._constraints:
            row = self._row(c.expr)
            rhs = -c.expr.const
            if c.sense == "<=":
                a_ub.append(row)
                b_ub.append(rhs)
            elif c.sense == ">=":
                a_ub.append([-x for x in row])
                b_ub.append(-rhs)
            else:
                a_eq.append(row)
                b_eq.append(rhs)
        obj_row = self._row(objective) if objective is not None \
            else [Fraction(0)] * len(self._order)
        return LinearProgram(
            objective=obj_row,
            a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            lower=[self._lower[n] for n in self._order],
            upper=[self._upper[n] for n in self._order],
        )

    def integer_mask(self) -> list[bool]:
        return [self._integer[n] for n in self._order]

    # -- presolve -----------------------------------------------------------------
    #
    # Farkas linearization introduces many continuous multipliers tied to the
    # integer unknowns through equality constraints.  Substituting them away
    # before the simplex shrinks the tableau dramatically (the multipliers
    # reappear only as extra inequalities for their lower bounds).

    def presolved(self, protect: Optional[set[str]] = None
                  ) -> tuple["Problem", list[tuple[str, LinExpr]]]:
        """Eliminate continuous variables pinned by equality constraints.

        Returns the reduced problem and the elimination trail
        ``[(name, expr), ...]`` (evaluate in reverse order to recover the
        eliminated values).  ``protect`` names variables that must survive.
        """
        protect = protect or set()
        constraints = list(self._constraints)
        lower = dict(self._lower)
        upper = dict(self._upper)
        eliminated: list[tuple[str, LinExpr]] = []
        removed: set[str] = set()

        progress = True
        while progress:
            progress = False
            for idx, c in enumerate(constraints):
                if c.sense != "==":
                    continue
                victim = None
                for name in c.expr.coeffs:
                    if (not self._integer[name] and name not in protect
                            and name not in removed):
                        victim = name
                        break
                if victim is None:
                    continue
                k = c.expr.coeffs[victim]
                rest = LinExpr({n: v for n, v in c.expr.coeffs.items()
                                if n != victim}, c.expr.const)
                expr = (-1 / k) * rest
                eliminated.append((victim, expr))
                removed.add(victim)
                replacement: list[Constraint] = []
                # The victim's bounds survive as inequalities on `expr`.
                if lower[victim] is not None:
                    replacement.append(expr >= lower[victim])
                if upper[victim] is not None:
                    replacement.append(expr <= upper[victim])
                new_constraints = []
                for j, other in enumerate(constraints):
                    if j == idx:
                        continue
                    coeff = other.expr.coeffs.get(victim)
                    if not coeff:
                        new_constraints.append(other)
                        continue
                    without = LinExpr({n: v for n, v in other.expr.coeffs.items()
                                       if n != victim}, other.expr.const)
                    new_constraints.append(
                        Constraint(without + coeff * expr, other.sense))
                constraints = new_constraints + replacement
                progress = True
                break

        reduced = Problem()
        for name in self._order:
            if name not in removed:
                reduced.add_variable(name, self._lower[name],
                                     self._upper[name], self._integer[name])
        for c in constraints:
            # Constant constraints may remain; keep only the violated check.
            if not c.expr.coeffs:
                if not c.satisfied_by({}):
                    # Encode infeasibility explicitly.
                    flag = reduced.add_variable("__infeasible__", lower=0, upper=0)
                    reduced.add_constraint(flag >= 1)
                continue
            reduced.add_constraint(c)
        return reduced, eliminated

    @staticmethod
    def _recover(assignment: dict[str, Fraction],
                 eliminated: list[tuple[str, LinExpr]]) -> dict[str, Fraction]:
        for name, expr in reversed(eliminated):
            assignment[name] = expr.evaluate(assignment)
        return assignment

    # -- solving ----------------------------------------------------------------

    def solve(self, objective: Optional[LinExpr] = None,
              max_nodes: int = 100_000,
              presolve: bool = True) -> Optional[dict[str, Fraction]]:
        """Minimize ``objective`` (feasibility check if None).

        Returns the assignment dict, or None if infeasible/unbounded.
        """
        if presolve:
            # Public entry: the recursive presolve=False call below is part
            # of the same solve, so only this level feeds the histogram.
            started = time.perf_counter()
            try:
                protect = objective.variables() if objective is not None else set()
                reduced, eliminated = self.presolved(protect=protect)
                sub = reduced.solve(objective, max_nodes=max_nodes,
                                    presolve=False)
                if sub is None:
                    return None
                return self._recover(sub, eliminated)
            finally:
                metrics = get_obs().metrics
                if metrics.enabled:
                    metrics.observe("solver.solve_seconds",
                                    time.perf_counter() - started)
        lp = self.lower_to_lp(objective)
        result = solve_ilp(lp, integer_mask=self.integer_mask(), max_nodes=max_nodes)
        if result.status is not LPStatus.OPTIMAL:
            return None
        return dict(zip(self._order, result.x))

    def lexmin(self, objectives: Sequence[LinExpr],
               max_nodes: int = 100_000,
               presolve: bool = True) -> Optional[dict[str, Fraction]]:
        """Lexicographically minimize the given objective expressions."""
        if presolve:
            started = time.perf_counter()
            try:
                protect = set()
                for obj in objectives:
                    protect |= obj.variables()
                reduced, eliminated = self.presolved(protect=protect)
                sub = reduced.lexmin(objectives, max_nodes=max_nodes,
                                     presolve=False)
                if sub is None:
                    return None
                return self._recover(sub, eliminated)
            finally:
                metrics = get_obs().metrics
                if metrics.enabled:
                    metrics.observe("solver.solve_seconds",
                                    time.perf_counter() - started)
        lp = self.lower_to_lp()
        rows = [self._row(obj) for obj in objectives]
        result = lexicographic_minimize(lp, rows,
                                        integer_mask=self.integer_mask(),
                                        max_nodes=max_nodes)
        if result.status is not LPStatus.OPTIMAL:
            return None
        return dict(zip(self._order, result.x))

    def fold_objectives(self, objectives: Sequence[LinExpr]) -> Optional[LinExpr]:
        """Collapse a lexicographic objective list into one weighted
        expression, exact when every level's variables are bounded.

        Returns None when some level has an unbounded range (callers should
        fall back to true lexicographic solving)."""
        spans: list[Fraction] = []
        for obj in objectives:
            span = Fraction(0)
            for name, coeff in obj.coeffs.items():
                lo, hi = self._lower[name], self._upper[name]
                if lo is None or hi is None:
                    return None
                span += abs(coeff) * (hi - lo)
            spans.append(span)
        folded = LinExpr()
        weight = Fraction(1)
        for obj, span in zip(reversed(objectives), reversed(spans)):
            folded = folded + weight * obj
            weight *= span + 1
        return folded
