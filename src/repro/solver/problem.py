"""Named-variable problem builder with a small linear-expression DSL.

The constraint builders in :mod:`repro.schedule` manipulate dozens of named
unknowns (schedule coefficients per statement and dimension, Farkas
multipliers, bound coefficients).  Building raw coefficient rows by hand is
error-prone, so this module provides:

* :class:`LinExpr` — an affine expression ``sum(c_i * v_i) + const`` over
  named variables, supporting ``+ - *`` and comparisons that yield
  :class:`Constraint` objects.
* :class:`Problem` — collects variables (with bounds and integrality) and
  constraints and lowers everything to a :class:`LinearProgram`.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Iterable, Optional, Sequence, Union

from repro.linalg.rational import frac
from repro.obs.runtime import get_obs
from repro.solver.backend import SolverBackend, resolve_backend
from repro.solver.budget import get_budget
from repro.solver.dedup import get_solve_cache, is_miss
from repro.solver.lp import LinearProgram, LPStatus
from repro.solver.warmstart import WarmStartHandle, incumbent_bound

Scalar = Union[int, Fraction, str]


class LinExpr:
    """An affine expression over named variables."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[dict[str, Fraction]] = None, const=0):
        self.coeffs: dict[str, Fraction] = {}
        if coeffs:
            for name, c in coeffs.items():
                c = frac(c)
                if c != 0:
                    self.coeffs[name] = c
        self.const = frac(const)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def of(cls, value) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        return cls(const=frac(value))

    @classmethod
    def _raw(cls, coeffs: dict, const: Fraction) -> "LinExpr":
        """Constructor for callers that guarantee the invariants.

        ``coeffs`` must be a fresh dict of zero-free exact Fractions and
        ``const`` an exact Fraction; the normalizing loop of ``__init__``
        is skipped.  Hot paths (presolve substitution, Farkas matching)
        build their dicts directly and hand them off through this.
        """
        expr = object.__new__(cls)
        expr.coeffs = coeffs
        expr.const = const
        return expr

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.const)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.of(other)
        coeffs = dict(self.coeffs)
        for name, c in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.of(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.of(other) + (-self)

    def __mul__(self, k) -> "LinExpr":
        k = frac(k)
        return LinExpr({n: k * c for n, c in self.coeffs.items()}, k * self.const)

    __rmul__ = __mul__

    # -- comparisons produce constraints -------------------------------------

    def __le__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.of(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - LinExpr.of(other), ">=")

    def eq(self, other) -> "Constraint":
        """Equality constraint (``==`` is kept as identity comparison)."""
        return Constraint(self - LinExpr.of(other), "==")

    # -- equality (structural; ``.eq()`` builds constraints instead) ----------

    def signature(self) -> tuple:
        """Canonical content: sorted coefficient items plus the constant.

        The constructor already normalizes (zero coefficients dropped, all
        values :class:`Fraction`), so two expressions are ``==`` iff their
        signatures are equal — ``__eq__``/``__hash__`` both defer to it,
        keeping the pair consistent under coefficient normalization.
        """
        return (tuple(sorted(self.coeffs.items())), self.const)

    def __eq__(self, other):
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self):
        return hash(self.signature())

    # -- inspection ------------------------------------------------------------

    def evaluate(self, assignment: dict[str, Fraction]) -> Fraction:
        """Value of the expression under a full variable assignment."""
        total = self.const
        for name, c in self.coeffs.items():
            total += c * frac(assignment[name])
        return total

    def variables(self) -> set[str]:
        return set(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def __repr__(self):
        parts = [f"{c}*{n}" for n, c in sorted(self.coeffs.items())]
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


def var(name: str) -> LinExpr:
    """A :class:`LinExpr` consisting of the single variable ``name``."""
    return LinExpr({name: Fraction(1)})


class Constraint:
    """``expr (<=|>=|==) 0`` — the rhs is folded into the expression.

    Immutable by convention (a plain ``__slots__`` class rather than a
    frozen dataclass: constraints are built in bulk on the hot path, and
    ``object.__setattr__``-mediated init is measurably slower).
    """

    __slots__ = ("expr", "sense")

    def __init__(self, expr: LinExpr, sense: str):
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {sense!r}")
        self.expr = expr
        self.sense = sense  # "<=", ">=", "=="

    def __eq__(self, other):
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.sense == other.sense and self.expr == other.expr

    def __hash__(self):
        return hash((self.expr, self.sense))

    def satisfied_by(self, assignment: dict[str, Fraction]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return value <= 0
        if self.sense == ">=":
            return value >= 0
        return value == 0

    def __repr__(self):
        return f"{self.expr!r} {self.sense} 0"


# Memo for :meth:`Problem.fold_objectives`: the fold is pure content →
# content (level signatures + the mentioned variables' bounds) and every
# scheduling dimension of a kernel folds the same objective, so results are
# shared process-wide.  Entries (None included — the unbounded case) are
# immutable by contract.
_FOLD_CACHE: dict = {}
_FOLD_CACHE_MAX = 4096
_FOLD_MISS = object()


class Problem:
    """Collects named variables and constraints; lowers to LinearProgram."""

    def __init__(self):
        self._order: list[str] = []
        # Column index per name, maintained incrementally so lowering does
        # not rebuild the mapping on every call.
        self._index: dict[str, int] = {}
        self._lower: dict[str, Optional[Fraction]] = {}
        self._upper: dict[str, Optional[Fraction]] = {}
        self._integer: dict[str, bool] = {}
        self._constraints: list[Constraint] = []
        # Cached objective-independent part of ``lower_to_lp`` (constraint
        # matrix and bounds columns); invalidated by ``add_variable`` /
        # ``add_constraint``.  Solving the same problem under several
        # objectives (lexmin levels, warm/cold comparisons) re-lowers for
        # free.
        self._lowered: Optional[tuple] = None
        #: Final simplex basis of the most recent ``solve``/``lexmin`` (for
        #: warm-start handles); ``None`` until solved or when unsolvable.
        self.last_basis: Optional[list[int]] = None

    # -- declaration -----------------------------------------------------------

    def add_variable(self, name: str, lower=None, upper=None,
                     integer: bool = True) -> LinExpr:
        """Declare a variable; returns its expression.  Idempotent bounds
        updates tighten (never loosen) existing declarations."""
        self._lowered = None
        if name not in self._integer:
            self._index[name] = len(self._order)
            self._order.append(name)
            self._lower[name] = None if lower is None else frac(lower)
            self._upper[name] = None if upper is None else frac(upper)
            self._integer[name] = integer
        else:
            if lower is not None:
                old = self._lower[name]
                self._lower[name] = frac(lower) if old is None else max(old, frac(lower))
            if upper is not None:
                old = self._upper[name]
                self._upper[name] = frac(upper) if old is None else min(old, frac(upper))
            self._integer[name] = self._integer[name] or integer
        return var(name)

    def add_constraint(self, constraint: Constraint) -> None:
        """Add one constraint; its variables must be declared."""
        missing = constraint.expr.variables() - set(self._integer)
        if missing:
            raise KeyError(f"undeclared variables in constraint: {sorted(missing)}")
        self._lowered = None
        self._constraints.append(constraint)

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for c in constraints:
            self.add_constraint(c)

    @property
    def variables(self) -> list[str]:
        return list(self._order)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def clone(self) -> "Problem":
        """Independent copy (shares immutable constraints)."""
        clone = Problem()
        clone._order = list(self._order)
        clone._index = dict(self._index)
        clone._lower = dict(self._lower)
        clone._upper = dict(self._upper)
        clone._integer = dict(self._integer)
        clone._constraints = list(self._constraints)
        return clone

    # -- lowering ---------------------------------------------------------------

    def _row(self, expr: LinExpr) -> list[Fraction]:
        index = self._index
        row = [Fraction(0)] * len(self._order)
        for name, c in expr.coeffs.items():
            row[index[name]] = c
        return row

    def lower_to_lp(self, objective: Optional[LinExpr] = None) -> LinearProgram:
        """Produce the equivalent :class:`LinearProgram`.

        The constraint matrix and bounds columns depend only on the declared
        variables and constraints, so they are lowered once and cached until
        the next mutation; only the objective row is built per call.  The
        cached lists are shared between the returned programs — downstream
        consumers (simplex, branch and bound) treat them as read-only and
        copy before modifying bounds.
        """
        index = self._index
        zero = Fraction(0)
        width = len(self._order)
        if self._lowered is None:
            a_ub, b_ub, a_eq, b_eq = [], [], [], []
            for c in self._constraints:
                if c.sense == ">=":
                    # Build the negated row directly instead of negating a
                    # dense row element by element (that negates every zero
                    # too).
                    row = [zero] * width
                    for name, v in c.expr.coeffs.items():
                        row[index[name]] = -v
                    a_ub.append(row)
                    b_ub.append(c.expr.const)
                elif c.sense == "<=":
                    row = [zero] * width
                    for name, v in c.expr.coeffs.items():
                        row[index[name]] = v
                    a_ub.append(row)
                    b_ub.append(-c.expr.const)
                else:
                    row = [zero] * width
                    for name, v in c.expr.coeffs.items():
                        row[index[name]] = v
                    a_eq.append(row)
                    b_eq.append(-c.expr.const)
            self._lowered = (a_ub, b_ub, a_eq, b_eq,
                             [self._lower[n] for n in self._order],
                             [self._upper[n] for n in self._order])
        a_ub, b_ub, a_eq, b_eq, lower, upper = self._lowered
        obj_row = self._row(objective) if objective is not None \
            else [zero] * width
        # All entries are exact Fractions by construction (``add_variable``
        # and the LinExpr constructor coerce on entry), so the re-validating
        # public constructor is skipped.
        return LinearProgram._trusted(
            obj_row, a_ub, b_ub, a_eq, b_eq, lower, upper)

    def integer_mask(self) -> list[bool]:
        return [self._integer[n] for n in self._order]

    # -- presolve -----------------------------------------------------------------
    #
    # Farkas linearization introduces many continuous multipliers tied to the
    # integer unknowns through equality constraints.  Substituting them away
    # before the simplex shrinks the tableau dramatically (the multipliers
    # reappear only as extra inequalities for their lower bounds).

    def presolved(self, protect: Optional[set[str]] = None
                  ) -> tuple["Problem", list[tuple[str, LinExpr]]]:
        """Eliminate continuous variables pinned by equality constraints.

        Returns the reduced problem and the elimination trail
        ``[(name, expr), ...]`` (evaluate in reverse order to recover the
        eliminated values).  ``protect`` names variables that must survive.
        """
        protect = protect or set()
        constraints = list(self._constraints)
        lower = dict(self._lower)
        upper = dict(self._upper)
        eliminated: list[tuple[str, LinExpr]] = []
        removed: set[str] = set()

        progress = True
        while progress:
            progress = False
            for idx, c in enumerate(constraints):
                if c.sense != "==":
                    continue
                victim = None
                for name in c.expr.coeffs:
                    if (not self._integer[name] and name not in protect
                            and name not in removed):
                        victim = name
                        break
                if victim is None:
                    continue
                k = c.expr.coeffs[victim]
                scale = -1 / k
                expr = LinExpr._raw(
                    {n: scale * v for n, v in c.expr.coeffs.items()
                     if n != victim},
                    scale * c.expr.const)
                eliminated.append((victim, expr))
                removed.add(victim)
                replacement: list[Constraint] = []
                # The victim's bounds survive as inequalities on `expr`.
                if lower[victim] is not None:
                    replacement.append(expr >= lower[victim])
                if upper[victim] is not None:
                    replacement.append(expr <= upper[victim])
                zero = Fraction(0)
                new_constraints = []
                for j, other in enumerate(constraints):
                    if j == idx:
                        continue
                    coeff = other.expr.coeffs.get(victim)
                    if not coeff:
                        new_constraints.append(other)
                        continue
                    # ``without + coeff * expr`` without the two intermediate
                    # LinExpr copies.
                    merged = {n: v for n, v in other.expr.coeffs.items()
                              if n != victim}
                    for n, v in expr.coeffs.items():
                        value = merged.get(n, zero) + coeff * v
                        if value:
                            merged[n] = value
                        else:
                            merged.pop(n, None)
                    new_constraints.append(Constraint(
                        LinExpr._raw(merged,
                                     other.expr.const + coeff * expr.const),
                        other.sense))
                constraints = new_constraints + replacement
                progress = True
                break

        if not removed and all(c.expr.coeffs for c in constraints):
            # Nothing eliminated and no constant constraints to audit: the
            # reduced problem would be an exact copy, so skip the rebuild.
            # Callers only solve the result, never mutate it.
            return self, eliminated

        reduced = Problem()
        for name in self._order:
            if name not in removed:
                reduced.add_variable(name, self._lower[name],
                                     self._upper[name], self._integer[name])
        for c in constraints:
            # Constant constraints may remain; keep only the violated check.
            if not c.expr.coeffs:
                if not c.satisfied_by({}):
                    # Encode infeasibility explicitly.
                    flag = reduced.add_variable("__infeasible__", lower=0, upper=0)
                    reduced.add_constraint(flag >= 1)
                continue
            reduced.add_constraint(c)
        return reduced, eliminated

    @staticmethod
    def _recover(assignment: dict[str, Fraction],
                 eliminated: list[tuple[str, LinExpr]]) -> dict[str, Fraction]:
        for name, expr in reversed(eliminated):
            assignment[name] = expr.evaluate(assignment)
        return assignment

    # -- content keys (for the ambient solve cache) ------------------------------

    def _expr_key(self, expr: Optional[LinExpr]) -> Optional[tuple]:
        """Positional signature of an objective expression.

        Fractions are flattened to ``(numerator, denominator)`` int pairs
        throughout the key machinery: the representation is unique, and
        hashing ints is far cheaper than ``Fraction.__hash__`` (which
        computes a modular inverse per value).
        """
        if expr is None:
            return None
        index = self._index
        return (tuple(sorted((index[n], c.numerator, c.denominator)
                             for n, c in expr.coeffs.items())),
                expr.const.numerator, expr.const.denominator)

    def _content_key(self, kind: str, objective_key, max_nodes: int,
                     backend_name: str) -> tuple:
        """Name-erased content of the whole problem.

        Variables appear only as column positions, so two problems that
        differ in nothing but variable names (e.g. per-statement sub-kernels
        of the ``tvm`` variant) share a key.  Constraint order and each
        constraint's coefficient *insertion* order are preserved — presolve's
        victim selection walks them in order, so order is part of the
        content that determines the exact result.
        """
        index = self._index
        constraints = tuple(
            (c.sense,
             tuple((index[n], v.numerator, v.denominator)
                   for n, v in c.expr.coeffs.items()),
             c.expr.const.numerator, c.expr.const.denominator)
            for c in self._constraints)
        lower, upper = self._lower, self._upper
        declarations = tuple(
            (None if lower[n] is None
             else (lower[n].numerator, lower[n].denominator),
             None if upper[n] is None
             else (upper[n].numerator, upper[n].denominator),
             self._integer[n])
            for n in self._order)
        return (kind, backend_name, max_nodes, declarations, constraints,
                objective_key)

    # -- solving ----------------------------------------------------------------

    def solve(self, objective: Optional[LinExpr] = None,
              max_nodes: int = 100_000,
              presolve: bool = True,
              warm: Optional[WarmStartHandle] = None,
              backend: Optional[SolverBackend] = None,
              _incumbent_bound: Optional[Fraction] = None,
              ) -> Optional[dict[str, Fraction]]:
        """Minimize ``objective`` (feasibility check if None).

        Returns the assignment dict, or None if infeasible/unbounded.
        ``warm`` offers prior solutions as incumbent bounds and ``backend``
        overrides the registry default; both leave the result
        bitwise-identical to a cold solve (see :mod:`repro.solver.warmstart`).
        """
        if backend is None:
            backend = resolve_backend()
        if presolve:
            # Public entry: the recursive presolve=False call below is part
            # of the same solve, so only this level feeds the histogram.
            started = time.perf_counter()
            warm_hit = False
            try:
                metrics = get_obs().metrics
                cache = get_solve_cache() if backend.incremental else None
                if cache is not None:
                    key = self._content_key("solve", self._expr_key(objective),
                                            max_nodes, backend.name)
                    value = cache.lookup(key)
                    if not is_miss(value):
                        if metrics.enabled:
                            metrics.count("solver.dedup.hits")
                        budget = get_budget()
                        if budget is not None:
                            budget.check_deadline()
                        self.last_basis = None
                        if value is None:
                            return None
                        return dict(zip(self._order, value))
                    if metrics.enabled:
                        metrics.count("solver.dedup.misses")
                protect = objective.variables() if objective is not None else set()
                reduced, eliminated = self.presolved(protect=protect)
                bound = None
                if warm is not None and warm and backend.incremental:
                    bound = incumbent_bound(reduced, objective, warm)
                    warm_hit = bound is not None
                    if metrics.enabled:
                        metrics.count("solver.warmstart.hits" if warm_hit
                                      else "solver.warmstart.misses")
                sub = reduced.solve(objective, max_nodes=max_nodes,
                                    presolve=False, backend=backend,
                                    _incumbent_bound=bound)
                self.last_basis = reduced.last_basis
                result = None if sub is None else self._recover(sub, eliminated)
                if cache is not None:
                    cache.store(key, None if result is None
                                else [result[n] for n in self._order])
                return result
            finally:
                metrics = get_obs().metrics
                if metrics.enabled:
                    elapsed = time.perf_counter() - started
                    metrics.observe("solver.solve_seconds", elapsed)
                    if warm_hit:
                        metrics.observe("solver.warmstart.reuse_seconds",
                                        elapsed)
        lp = self.lower_to_lp(objective)
        result = backend.solve_ilp(lp, integer_mask=self.integer_mask(),
                                   max_nodes=max_nodes,
                                   incumbent_bound=_incumbent_bound)
        if result.status is not LPStatus.OPTIMAL:
            self.last_basis = None
            return None
        self.last_basis = result.basis
        return dict(zip(self._order, result.x))

    def lexmin(self, objectives: Sequence[LinExpr],
               max_nodes: int = 100_000,
               presolve: bool = True,
               warm: Optional[WarmStartHandle] = None,
               backend: Optional[SolverBackend] = None,
               _incumbent_bound: Optional[Fraction] = None,
               ) -> Optional[dict[str, Fraction]]:
        """Lexicographically minimize the given objective expressions.

        ``warm`` candidates seed the first level's incumbent bound; later
        levels chain their own incumbents (see
        :func:`repro.solver.lexmin.lexicographic_minimize`).
        """
        if backend is None:
            backend = resolve_backend()
        if presolve:
            started = time.perf_counter()
            warm_hit = False
            try:
                metrics = get_obs().metrics
                cache = get_solve_cache() if backend.incremental else None
                if cache is not None:
                    key = self._content_key(
                        "lexmin",
                        tuple(self._expr_key(obj) for obj in objectives),
                        max_nodes, backend.name)
                    value = cache.lookup(key)
                    if not is_miss(value):
                        if metrics.enabled:
                            metrics.count("solver.dedup.hits")
                        budget = get_budget()
                        if budget is not None:
                            budget.check_deadline()
                        self.last_basis = None
                        if value is None:
                            return None
                        return dict(zip(self._order, value))
                    if metrics.enabled:
                        metrics.count("solver.dedup.misses")
                protect = set()
                for obj in objectives:
                    protect |= obj.variables()
                reduced, eliminated = self.presolved(protect=protect)
                bound = None
                if warm is not None and warm and backend.incremental \
                        and objectives:
                    bound = incumbent_bound(reduced, objectives[0], warm)
                    warm_hit = bound is not None
                    if metrics.enabled:
                        metrics.count("solver.warmstart.hits" if warm_hit
                                      else "solver.warmstart.misses")
                sub = reduced.lexmin(objectives, max_nodes=max_nodes,
                                     presolve=False, backend=backend,
                                     _incumbent_bound=bound)
                self.last_basis = reduced.last_basis
                result = None if sub is None else self._recover(sub, eliminated)
                if cache is not None:
                    cache.store(key, None if result is None
                                else [result[n] for n in self._order])
                return result
            finally:
                metrics = get_obs().metrics
                if metrics.enabled:
                    elapsed = time.perf_counter() - started
                    metrics.observe("solver.solve_seconds", elapsed)
                    if warm_hit:
                        metrics.observe("solver.warmstart.reuse_seconds",
                                        elapsed)
        lp = self.lower_to_lp()
        rows = [self._row(obj) for obj in objectives]
        result = backend.lexmin(lp, rows,
                                integer_mask=self.integer_mask(),
                                max_nodes=max_nodes,
                                incumbent_bound=_incumbent_bound)
        if result.status is not LPStatus.OPTIMAL:
            self.last_basis = None
            return None
        self.last_basis = result.basis
        return dict(zip(self._order, result.x))

    def fold_objectives(self, objectives: Sequence[LinExpr]) -> Optional[LinExpr]:
        """Collapse a lexicographic objective list into one weighted
        expression, exact when every level's variables are bounded.

        Returns None when some level has an unbounded range (callers should
        fall back to true lexicographic solving).

        The result depends only on the levels' content and the bounds of the
        variables they mention — identical for every scheduling dimension of
        a kernel — so it is memoized process-wide.  Returned expressions are
        shared and must not be mutated.
        """
        names: list[str] = []
        seen: set[str] = set()
        for obj in objectives:
            for name in obj.coeffs:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        lower, upper = self._lower, self._upper
        key = (tuple(
                   (tuple(sorted((n, c.numerator, c.denominator)
                                 for n, c in obj.coeffs.items())),
                    obj.const.numerator, obj.const.denominator)
                   for obj in objectives),
               tuple((n,
                      None if lower[n] is None
                      else (lower[n].numerator, lower[n].denominator),
                      None if upper[n] is None
                      else (upper[n].numerator, upper[n].denominator))
                     for n in names))
        cached = _FOLD_CACHE.get(key, _FOLD_MISS)
        if cached is not _FOLD_MISS:
            return cached
        folded = self._fold_objectives(objectives)
        if len(_FOLD_CACHE) >= _FOLD_CACHE_MAX:
            _FOLD_CACHE.clear()
        _FOLD_CACHE[key] = folded
        return folded

    def _fold_objectives(self, objectives: Sequence[LinExpr]) -> Optional[LinExpr]:
        spans: list[Fraction] = []
        for obj in objectives:
            span = Fraction(0)
            for name, coeff in obj.coeffs.items():
                lo, hi = self._lower[name], self._upper[name]
                if lo is None or hi is None:
                    return None
                span += abs(coeff) * (hi - lo)
            spans.append(span)
        coeffs: dict[str, Fraction] = {}
        const = Fraction(0)
        zero = Fraction(0)
        weight = Fraction(1)
        for obj, span in zip(reversed(objectives), reversed(spans)):
            for name, coeff in obj.coeffs.items():
                value = coeffs.get(name, zero) + weight * coeff
                if value:
                    coeffs[name] = value
                else:
                    coeffs.pop(name, None)
            const += weight * obj.const
            weight *= span + 1
        return LinExpr(coeffs, const)
