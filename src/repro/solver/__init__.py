"""Exact linear and integer-linear programming.

This package replaces the ILP core that the paper obtains from the isl
library.  It provides:

* :mod:`repro.solver.lp` — a two-phase primal simplex over exact rationals
  (Bland's rule, hence guaranteed termination).
* :mod:`repro.solver.ilp` — mixed-integer branch and bound on top of the LP.
* :mod:`repro.solver.lexmin` — lexicographic (multi-objective) minimization,
  the optimization mode used by isl's scheduler and by Algorithm 1.
* :mod:`repro.solver.problem` — a named-variable problem builder with a small
  linear-expression DSL, used by the constraint builders.
* :mod:`repro.solver.budget` — ambient wall-clock/pivot/node budgets; the
  hot loops above charge against the active budget and raise a typed
  :class:`repro.errors.SolverTimeout` when it runs out.
* :mod:`repro.solver.backend` — the :class:`SolverBackend` protocol plus a
  registry (``--solver`` / ``REPRO_SOLVER``); the rational simplex above is
  the default ``"simplex"`` backend.
* :mod:`repro.solver.warmstart` — :class:`WarmStartHandle`, incumbent-bound
  reuse of prior solutions that provably cannot change any result.
* :mod:`repro.solver.dedup` — ambient content-keyed cache replaying solves
  of structurally identical constraint systems.
"""

from repro.solver.backend import (DEFAULT_BACKEND, NoWarmstartSimplexBackend,
                                  RationalSimplexBackend, SolverBackend,
                                  available_backends, register_backend,
                                  resolve_backend)
from repro.solver.budget import SolveBudget, get_budget, use_budget
from repro.solver.dedup import SolveCache, get_solve_cache, use_solve_cache
from repro.solver.lp import LinearProgram, LPResult, LPStatus, solve_lp
from repro.solver.ilp import BranchLimitExceeded, solve_ilp, integer_feasible
from repro.solver.lexmin import lexicographic_minimize
from repro.solver.problem import LinExpr, Constraint, Problem, var
from repro.solver.warmstart import WarmStartHandle, incumbent_bound

__all__ = [
    "LinearProgram",
    "LPResult",
    "LPStatus",
    "solve_lp",
    "solve_ilp",
    "integer_feasible",
    "BranchLimitExceeded",
    "lexicographic_minimize",
    "LinExpr",
    "Constraint",
    "Problem",
    "var",
    "SolveBudget",
    "get_budget",
    "use_budget",
    "SolverBackend",
    "RationalSimplexBackend",
    "NoWarmstartSimplexBackend",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "resolve_backend",
    "WarmStartHandle",
    "incumbent_bound",
    "SolveCache",
    "get_solve_cache",
    "use_solve_cache",
]
