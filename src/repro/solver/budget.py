"""Wall-clock and work budgets for solver calls.

A :class:`SolveBudget` declares how much work one scheduling attempt may
spend: a wall-clock deadline plus cumulative simplex-pivot and
branch-and-bound-node allowances.  Starting a budget yields an
:class:`ActiveBudget` whose charge methods the hot solver loops call;
when any allowance runs out they raise
:class:`~repro.errors.SolverTimeout` instead of letting a degenerate ILP
hang an evaluation run.

The active budget is ambient, mirroring ``repro.obs.runtime``: the
scheduler installs it with :func:`use_budget` around one construction
attempt and ``solver/lp.py``/``solver/ilp.py`` pick it up with
:func:`get_budget` — no threading of a handle through ``Problem`` /
``DimensionProblem`` call chains.  With no budget installed
``get_budget()`` returns ``None`` and the solvers stay on their fast
path (one global load + identity check per pivot).

Budgets are cumulative across every solve of one attempt, which is what
distinguishes them from the per-call ``max_nodes`` cap: exceeding
``max_nodes`` raises :class:`~repro.errors.BranchLimitExceeded` and the
scheduler treats that single dimension as infeasible (backtracking
ladder); exhausting a budget raises :class:`SolverTimeout` and aborts
the whole attempt (degradation ladder in the pipeline).

Interaction with solver reuse (``repro.solver.warmstart`` /
``repro.solver.dedup``): warm-started solves still run the simplex and
branch and bound, so every pivot and node they execute is charged as
usual — a warm start simply leaves fewer of them to charge.  Replays
from the content-keyed solve cache do no solver work at all and charge
nothing, but they still call :meth:`ActiveBudget.check_deadline` so an
expired deadline fires even on an all-hit attempt.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import SolverTimeout

# The monotonic clock is only consulted every this many pivots: a pivot is
# a handful of dict operations, so per-pivot clock reads would dominate.
_DEADLINE_CHECK_INTERVAL = 64


@dataclass(frozen=True)
class SolveBudget:
    """Declarative work allowance for one scheduling attempt.

    ``deadline_s`` is wall-clock seconds from :meth:`start`;
    ``max_pivots`` / ``max_ilp_nodes`` bound the *cumulative* simplex
    pivots and branch-and-bound nodes across all solves of the attempt.
    ``None`` disables the corresponding limit.
    """

    deadline_s: Optional[float] = None
    max_pivots: Optional[int] = None
    max_ilp_nodes: Optional[int] = None

    def start(self) -> "ActiveBudget":
        """Begin the countdown (anchors the deadline to ``monotonic()``)."""
        return ActiveBudget(self)


class ActiveBudget:
    """A started budget: charge work against it, it raises when spent."""

    __slots__ = ("budget", "deadline_at", "pivots", "nodes", "_until_check")

    def __init__(self, budget: SolveBudget):
        self.budget = budget
        self.deadline_at = (None if budget.deadline_s is None
                            else time.monotonic() + budget.deadline_s)
        self.pivots = 0
        self.nodes = 0
        self._until_check = _DEADLINE_CHECK_INTERVAL

    def charge_pivot(self) -> None:
        """Account one simplex pivot (deadline checked every few calls)."""
        self.pivots += 1
        limit = self.budget.max_pivots
        if limit is not None and self.pivots > limit:
            raise SolverTimeout(
                f"pivot budget exhausted ({self.pivots} > {limit})")
        self._until_check -= 1
        if self._until_check <= 0:
            self._until_check = _DEADLINE_CHECK_INTERVAL
            self.check_deadline()

    def charge_node(self) -> None:
        """Account one branch-and-bound node (deadline checked each call)."""
        self.nodes += 1
        limit = self.budget.max_ilp_nodes
        if limit is not None and self.nodes > limit:
            raise SolverTimeout(
                f"node budget exhausted ({self.nodes} > {limit})")
        self.check_deadline()

    def check_deadline(self) -> None:
        if self.deadline_at is not None \
                and time.monotonic() > self.deadline_at:
            raise SolverTimeout(
                f"solve deadline of {self.budget.deadline_s:g}s exceeded")


_current: Optional[ActiveBudget] = None


def get_budget() -> Optional[ActiveBudget]:
    """The ambient active budget, or ``None`` when unbudgeted."""
    return _current


@contextmanager
def use_budget(active: Optional[ActiveBudget]) -> Iterator[
        Optional[ActiveBudget]]:
    """Install ``active`` as the ambient budget for the dynamic extent."""
    global _current
    previous = _current
    _current = active
    try:
        yield active
    finally:
        _current = previous
