"""Content-keyed deduplication of solved constraint systems.

Structurally identical Farkas-linearized systems recur constantly: the
``tvm`` variant schedules every statement cluster separately (same shapes,
different statement names), tile candidates re-solve the same dimension
problems, and coincidence/plain retries share large constraint prefixes.
This cache is the same content-hash trick as ``pipeline/cache.py``, one
level lower: the key is the *positional* content of a ``Problem`` (variable
names erased), so renamed-but-identical systems hit.

The cache is ambient, mirroring ``repro.solver.budget``: the pipeline
installs one per ``AkgPipeline.compile`` call with :func:`use_solve_cache`,
and ``Problem.solve``/``Problem.lexmin`` consult it via
:func:`get_solve_cache`.  Scoping a cache to a single compile keeps the
serial and parallel evaluation paths metric-identical (every operator's
compilation is wholly inside one process either way) while still
deduplicating across variants, clusters, and retries of that operator.

A replayed result is bitwise-identical to solving by construction — the
solver is a deterministic pure function of the key's content.  Replay still
honours the ambient deadline (``check_deadline``) but charges no pivots or
nodes: there is no solver work to account.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, Optional

#: Entries kept per cache (LRU).  A single operator compile stays well under
#: this; the bound only guards against pathological generated workloads.
MAX_ENTRIES = 8192

_MISS = object()


class SolveCache:
    """LRU of positional solve results, keyed on problem content."""

    __slots__ = ("max_entries", "_entries", "hits", "misses")

    def __init__(self, max_entries: int = MAX_ENTRIES):
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key):
        """Return the cached value for ``key`` or the module-private miss
        sentinel (use :func:`is_miss`)."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
        else:
            self._entries.move_to_end(key)
            self.hits += 1
        return value

    def store(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"entries": len(self._entries),
                "hits": self.hits, "misses": self.misses}


def is_miss(value) -> bool:
    return value is _MISS


_current: Optional[SolveCache] = None


def get_solve_cache() -> Optional[SolveCache]:
    """The ambient solve cache, or ``None`` when deduplication is off."""
    return _current


@contextmanager
def use_solve_cache(cache: Optional[SolveCache]) -> Iterator[
        Optional[SolveCache]]:
    """Install ``cache`` as the ambient solve cache for the dynamic extent."""
    global _current
    previous = _current
    _current = cache
    try:
        yield cache
    finally:
        _current = previous
