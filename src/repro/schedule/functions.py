"""Schedule rows and multidimensional schedules.

A :class:`ScheduleRow` is one dimension of a statement's affine scheduling
function: integer coefficients for the statement's iterators and the kernel
parameters, plus a constant (Section III-B).  A :class:`Schedule` maps every
statement to its list of rows, all rows mapping into one common time space,
and carries per-dimension metadata (parallel / coincident flags, band
structure, vector-dimension marking) produced by the scheduler and consumed
by the mapping/codegen passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from repro.ir.statement import Statement
from repro.solver.problem import LinExpr


@dataclass(frozen=True)
class ScheduleRow:
    """One schedule dimension for one statement."""

    iterators: tuple[str, ...]
    iter_coeffs: tuple[int, ...]
    param_names: tuple[str, ...]
    param_coeffs: tuple[int, ...]
    const: int

    def __post_init__(self):
        if len(self.iter_coeffs) != len(self.iterators):
            raise ValueError("iterator coefficient arity mismatch")
        if len(self.param_coeffs) != len(self.param_names):
            raise ValueError("parameter coefficient arity mismatch")

    @classmethod
    def from_coeffs(cls, statement: Statement, params: Sequence[str],
                    iter_coeffs: Sequence[int], param_coeffs: Sequence[int],
                    const: int) -> "ScheduleRow":
        return cls(tuple(statement.iterators), tuple(int(c) for c in iter_coeffs),
                   tuple(params), tuple(int(c) for c in param_coeffs), int(const))

    @classmethod
    def scalar(cls, statement: Statement, params: Sequence[str],
               const: int) -> "ScheduleRow":
        """A constant row (a 'scalar dimension' separating statements)."""
        return cls(tuple(statement.iterators),
                   (0,) * len(statement.iterators),
                   tuple(params), (0,) * len(params), int(const))

    def as_expr(self) -> LinExpr:
        """The row as a LinExpr over iterator and parameter names."""
        coeffs: dict[str, Fraction] = {}
        for name, c in zip(self.iterators, self.iter_coeffs):
            if c:
                coeffs[name] = Fraction(c)
        for name, c in zip(self.param_names, self.param_coeffs):
            if c:
                coeffs[name] = coeffs.get(name, Fraction(0)) + Fraction(c)
        return LinExpr(coeffs, self.const)

    def evaluate(self, point: dict[str, Fraction],
                 params: dict[str, int]) -> Fraction:
        env = {name: Fraction(value) for name, value in params.items()}
        env.update(point)
        return self.as_expr().evaluate(env)

    @property
    def is_scalar(self) -> bool:
        """True iff the row ignores the iteration vector."""
        return all(c == 0 for c in self.iter_coeffs)

    def coefficient_of(self, iterator: str) -> int:
        try:
            return self.iter_coeffs[self.iterators.index(iterator)]
        except ValueError:
            return 0

    def __str__(self):
        return str(self.as_expr())


@dataclass
class DimensionInfo:
    """Scheduler metadata for one schedule dimension."""

    coincident: bool = False     # zero reuse distance on all active deps
    parallel: bool = False       # carries no dependence at all
    band: int = 0                # permutable-band id the dimension belongs to
    vector: bool = False         # marked for load/store vectorization
    vector_width: int = 0        # lanes for the vector rewrite (2 or 4)
    from_influence: bool = False  # an influence-tree constraint shaped it


class Schedule:
    """A complete multidimensional schedule for a kernel."""

    def __init__(self, statements: Sequence[Statement], params: Sequence[str]):
        self.statements = list(statements)
        self.params = list(params)
        self.rows: dict[str, list[ScheduleRow]] = {s.name: [] for s in self.statements}
        self.dims: list[DimensionInfo] = []

    # -- construction (used by the scheduler) --------------------------------

    def append_dimension(self, rows: dict[str, ScheduleRow],
                         info: Optional[DimensionInfo] = None) -> None:
        missing = {s.name for s in self.statements} - set(rows)
        if missing:
            raise ValueError(f"missing rows for statements {sorted(missing)}")
        for s in self.statements:
            self.rows[s.name].append(rows[s.name])
        self.dims.append(info or DimensionInfo())

    def drop_dimensions_from(self, depth: int) -> None:
        """Withdraw dimensions ``>= depth`` (Algorithm 1 backtracking)."""
        for name in self.rows:
            self.rows[name] = self.rows[name][:depth]
        self.dims = self.dims[:depth]

    # -- queries -----------------------------------------------------------------

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(name)

    def rows_of(self, name: str) -> list[ScheduleRow]:
        return list(self.rows[name])

    def row_exprs(self, name: str) -> list[LinExpr]:
        return [r.as_expr() for r in self.rows[name]]

    def iterator_matrix(self, name: str) -> list[list[int]]:
        """The H_S part (iterator coefficients only), one row per dim."""
        return [list(r.iter_coeffs) for r in self.rows[name]]

    def rank_of(self, name: str) -> int:
        """Rank of the iterator part of this statement's schedule."""
        from repro.linalg.hermite import rank
        return rank(self.iterator_matrix(name))

    def is_complete(self) -> bool:
        """Full iterator rank for every statement (enough dims for codegen)."""
        return all(self.rank_of(s.name) == s.depth for s in self.statements)

    def date_of(self, name: str, point: dict[str, Fraction],
                params: dict[str, int]) -> tuple:
        """The logical date of one statement execution."""
        return tuple(r.evaluate(point, params) for r in self.rows[name])

    def parallel_dims(self) -> list[int]:
        return [d for d, info in enumerate(self.dims) if info.parallel]

    def coincident_dims(self) -> list[int]:
        return [d for d, info in enumerate(self.dims) if info.coincident]

    def vector_dim(self) -> Optional[int]:
        for d, info in enumerate(self.dims):
            if info.vector:
                return d
        return None

    def mark_vector(self, dim: int) -> None:
        self.dims[dim].vector = True

    def bands(self) -> list[list[int]]:
        """Schedule dimensions grouped into permutable bands."""
        groups: dict[int, list[int]] = {}
        for d, info in enumerate(self.dims):
            groups.setdefault(info.band, []).append(d)
        return [groups[b] for b in sorted(groups)]

    def pretty(self) -> str:
        lines = []
        for s in self.statements:
            exprs = ", ".join(str(r) for r in self.rows[s.name])
            lines.append(f"theta_{s.name}({', '.join(s.iterators)}) = ({exprs})")
        flags = []
        for d, info in enumerate(self.dims):
            tags = []
            if info.coincident:
                tags.append("coincident")
            if info.parallel:
                tags.append("parallel")
            if info.vector:
                tags.append("vector")
            tags.append(f"band{info.band}")
            flags.append(f"  dim {d}: {', '.join(tags)}")
        return "\n".join(lines + flags)

    def __str__(self):
        return self.pretty()
