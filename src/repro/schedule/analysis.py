"""Post-hoc schedule analysis: satisfaction depths, validity verification,
parallelism annotation.

The multidimensional semantics (Section III-B): a dependence relation is
*strongly satisfied* at the first dimension ``d`` where, restricted to pairs
whose dates agree on dimensions ``< d``, the schedule-time delta is >= 1 on
every remaining pair.  A schedule is valid iff every validity relation is
strongly satisfied at some dimension and never reversed before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.deps.relation import DependenceRelation
from repro.schedule.functions import Schedule


def satisfaction_depth(rel: DependenceRelation,
                       schedule: Schedule) -> Optional[int]:
    """First dimension at which ``rel`` is strongly satisfied, or None.

    Assumes (does not check) that the schedule weakly satisfies the relation
    at every dimension; use :func:`verify_schedule` for full checking.
    """
    poly = rel.polyhedron
    for d in range(schedule.n_dims):
        phi_s = schedule.rows[rel.source.name][d].as_expr()
        phi_t = schedule.rows[rel.target.name][d].as_expr()
        delta = rel.delta_expr(phi_s, phi_t)
        poly = poly.with_constraints([delta.eq(0)])
        if poly.is_empty():
            return d
    return None


@dataclass
class ScheduleViolation:
    """One semantics violation found by :func:`verify_schedule`."""

    relation: DependenceRelation
    dimension: Optional[int]  # dimension where the order is reversed, or
                              # None when the relation is never satisfied
    reason: str

    def __str__(self):
        return f"{self.relation}: {self.reason}"


def verify_schedule(schedule: Schedule,
                    relations: Iterable[DependenceRelation]) -> list[ScheduleViolation]:
    """Exhaustively check semantics preservation.

    For every validity relation (flow/anti/output): walking the dimensions,
    the delta restricted to previously-tied pairs must never be negative,
    and the relation must be strongly satisfied at some dimension.
    Input (read-after-read) relations are skipped.  Returns all violations
    (empty list == valid schedule).
    """
    violations = []
    for rel in relations:
        if rel.kind == "input":
            continue
        poly = rel.polyhedron
        satisfied = False
        for d in range(schedule.n_dims):
            phi_s = schedule.rows[rel.source.name][d].as_expr()
            phi_t = schedule.rows[rel.target.name][d].as_expr()
            delta = rel.delta_expr(phi_s, phi_t)
            if not poly.with_constraints([delta <= -1]).is_empty():
                violations.append(ScheduleViolation(
                    rel, d, f"order reversed at dimension {d}"))
                satisfied = True  # do not double-report
                break
            poly = poly.with_constraints([delta.eq(0)])
            if poly.is_empty():
                satisfied = True
                break
        if not satisfied:
            violations.append(ScheduleViolation(
                rel, None, "never strongly satisfied (incomplete order)"))
    return violations


def annotate_parallelism(schedule: Schedule,
                         relations: Iterable[DependenceRelation]) -> None:
    """Set each dimension's ``parallel`` flag.

    Dimension ``d`` is parallel iff no validity relation is *carried* at
    ``d``: restricted to pairs tied on dimensions ``< d``, the delta at
    ``d`` is identically zero for every relation still alive there.
    """
    validity = [r for r in relations if r.kind != "input"]
    alive = [(r, r.polyhedron) for r in validity]
    for d in range(schedule.n_dims):
        carried = False
        next_alive = []
        for rel, poly in alive:
            phi_s = schedule.rows[rel.source.name][d].as_expr()
            phi_t = schedule.rows[rel.target.name][d].as_expr()
            delta = rel.delta_expr(phi_s, phi_t)
            if not poly.with_constraints([delta >= 1]).is_empty():
                carried = True
            remaining = poly.with_constraints([delta.eq(0)])
            if not remaining.is_empty():
                next_alive.append((rel, remaining))
        schedule.dims[d].parallel = not carried
        alive = next_alive
