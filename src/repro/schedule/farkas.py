"""The affine form of Farkas' lemma, applied to symbolic affine forms.

The scheduling ILP must express conditions of the shape

    e(x) >= 0   for every x in P,

where ``P`` is a dependence polyhedron and ``e`` is an affine form of the
polyhedron's dimensions whose *coefficients are unknowns* (schedule
coefficients).  Farkas' lemma turns this universally quantified condition
into existentially quantified linear constraints:

    e(x) == lambda_0 + sum_k lambda_k * g_k(x),    lambda >= 0,

where ``g_k(x) >= 0`` are the constraints of ``P``.  Matching coefficients
dimension by dimension yields equality constraints linking the schedule
unknowns and fresh multiplier variables.

To keep the ILPs small we first eliminate polyhedron dimensions pinned by
equality constraints (subscript equalities make most AI/DL dependence
relations collapse drastically), substituting into the symbolic form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import Constraint, LinExpr, Problem, var


@dataclass
class SymbolicAffineForm:
    """An affine form over polyhedron dims whose coefficients are LinExpr
    over solver unknowns (schedule coefficients, bound coefficients...)."""

    coeffs: dict[str, LinExpr] = field(default_factory=dict)
    const: LinExpr = field(default_factory=LinExpr)

    def copy(self) -> "SymbolicAffineForm":
        return SymbolicAffineForm({k: v.copy() for k, v in self.coeffs.items()},
                                  self.const.copy())

    def add_term(self, dim: str, coeff: LinExpr) -> None:
        current = self.coeffs.get(dim, LinExpr())
        self.coeffs[dim] = current + coeff

    def coefficient(self, dim: str) -> LinExpr:
        return self.coeffs.get(dim, LinExpr())

    @classmethod
    def from_symbolic_expr(cls, dim_exprs: dict[str, LinExpr],
                           const: Optional[LinExpr] = None) -> "SymbolicAffineForm":
        return cls({d: e for d, e in dim_exprs.items()},
                   const if const is not None else LinExpr())


def _normalized_inequalities(poly: Polyhedron) -> tuple[list[LinExpr], list[LinExpr]]:
    """Split constraints into (equalities, inequalities-as->=0), deduplicated."""
    equalities: list[LinExpr] = []
    inequalities: list[LinExpr] = []
    seen = set()
    for c in poly.constraints:
        if c.sense == "==":
            equalities.append(c.expr)
            continue
        expr = c.expr if c.sense == ">=" else -c.expr
        key = (tuple(sorted(expr.coeffs.items())), expr.const)
        if key not in seen:
            seen.add(key)
            inequalities.append(expr)
    return equalities, inequalities


def _eliminate_equalities(dims: list[str], equalities: list[LinExpr],
                          inequalities: list[LinExpr],
                          form: SymbolicAffineForm) -> tuple[list[str], list[LinExpr],
                                                             SymbolicAffineForm]:
    """Substitute away dims pinned by equalities, in both the inequality
    system and the symbolic form.  Equalities that become variable-free must
    be identically zero (otherwise the polyhedron was empty — callers only
    pass non-empty relations)."""
    dims = list(dims)
    form = form.copy()
    equalities = [e.copy() for e in equalities]
    inequalities = [e.copy() for e in inequalities]

    while equalities:
        equality = equalities.pop()
        pivot = next((d for d in dims if equality.coeffs.get(d)), None)
        if pivot is None:
            if equality.const != 0:
                raise ValueError("inconsistent equality in non-empty polyhedron")
            continue
        k = equality.coeffs[pivot]
        # pivot = substitution where equality = k*pivot + rest == 0.
        rest = LinExpr({n: c for n, c in equality.coeffs.items() if n != pivot},
                       equality.const)
        substitution = (-1 / k) * rest

        def substitute(expr: LinExpr) -> LinExpr:
            c = expr.coeffs.get(pivot)
            if not c:
                return expr
            without = LinExpr({n: v for n, v in expr.coeffs.items() if n != pivot},
                              expr.const)
            return without + c * substitution

        equalities = [substitute(e) for e in equalities]
        inequalities = [substitute(e) for e in inequalities]
        # Substitute in the symbolic form: the (symbolic) coefficient of the
        # pivot redistributes onto the substitution's dims and constant.
        pivot_coeff = form.coeffs.pop(pivot, LinExpr())
        for name, c in substitution.coeffs.items():
            form.add_term(name, c * pivot_coeff)
        form.const = form.const + substitution.const * pivot_coeff
        dims.remove(pivot)

    # Drop inequalities that became trivially true constants.
    kept = []
    for expr in inequalities:
        live = {d for d in expr.coeffs if d in dims}
        if not live:
            if expr.const < 0:
                raise ValueError("inconsistent inequality in non-empty polyhedron")
            continue
        kept.append(expr)
    return dims, kept, form


def add_farkas_nonneg(problem: Problem, prefix: str, poly: Polyhedron,
                      form: SymbolicAffineForm) -> int:
    """Add constraints to ``problem`` making ``form(x) >= 0`` hold on ``poly``.

    Fresh continuous multipliers are named ``{prefix}.l{k}`` (and
    ``{prefix}.l0`` for the constant multiplier).  Returns the number of
    multiplier variables introduced.  ``prefix`` must be unique per call.
    """
    equalities, inequalities = _normalized_inequalities(poly)
    dims, inequalities, form = _eliminate_equalities(
        poly.dims, equalities, inequalities, form)

    lambda0 = problem.add_variable(f"{prefix}.l0", lower=0, integer=False)
    multipliers = []
    for k, _ in enumerate(inequalities):
        multipliers.append(
            problem.add_variable(f"{prefix}.l{k + 1}", lower=0, integer=False))

    # Coefficient matching per remaining dimension.
    for dim in dims:
        total = form.coefficient(dim)
        for lam, g in zip(multipliers, inequalities):
            c = g.coeffs.get(dim, Fraction(0))
            if c:
                total = total - c * lam
        problem.add_constraint(total.eq(0))

    # Constant matching.
    total = form.const - lambda0
    for lam, g in zip(multipliers, inequalities):
        if g.const:
            total = total - g.const * lam
    problem.add_constraint(total.eq(0))
    return len(multipliers) + 1
