"""The affine form of Farkas' lemma, applied to symbolic affine forms.

The scheduling ILP must express conditions of the shape

    e(x) >= 0   for every x in P,

where ``P`` is a dependence polyhedron and ``e`` is an affine form of the
polyhedron's dimensions whose *coefficients are unknowns* (schedule
coefficients).  Farkas' lemma turns this universally quantified condition
into existentially quantified linear constraints:

    e(x) == lambda_0 + sum_k lambda_k * g_k(x),    lambda >= 0,

where ``g_k(x) >= 0`` are the constraints of ``P``.  Matching coefficients
dimension by dimension yields equality constraints linking the schedule
unknowns and fresh multiplier variables.

To keep the ILPs small we first eliminate polyhedron dimensions pinned by
equality constraints (subscript equalities make most AI/DL dependence
relations collapse drastically), substituting into the symbolic form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.obs.runtime import get_obs
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import Constraint, LinExpr, Problem, var


@dataclass
class SymbolicAffineForm:
    """An affine form over polyhedron dims whose coefficients are LinExpr
    over solver unknowns (schedule coefficients, bound coefficients...)."""

    coeffs: dict[str, LinExpr] = field(default_factory=dict)
    const: LinExpr = field(default_factory=LinExpr)

    def copy(self) -> "SymbolicAffineForm":
        return SymbolicAffineForm({k: v.copy() for k, v in self.coeffs.items()},
                                  self.const.copy())

    def add_term(self, dim: str, coeff: LinExpr) -> None:
        current = self.coeffs.get(dim, LinExpr())
        self.coeffs[dim] = current + coeff

    def coefficient(self, dim: str) -> LinExpr:
        return self.coeffs.get(dim, LinExpr())

    @classmethod
    def from_symbolic_expr(cls, dim_exprs: dict[str, LinExpr],
                           const: Optional[LinExpr] = None) -> "SymbolicAffineForm":
        return cls({d: e for d, e in dim_exprs.items()},
                   const if const is not None else LinExpr())


def _normalized_inequalities(poly: Polyhedron) -> tuple[list[LinExpr], list[LinExpr]]:
    """Split constraints into (equalities, inequalities-as->=0), deduplicated."""
    equalities: list[LinExpr] = []
    inequalities: list[LinExpr] = []
    seen = set()
    for c in poly.constraints:
        if c.sense == "==":
            equalities.append(c.expr)
            continue
        expr = c.expr if c.sense == ">=" else -c.expr
        key = (tuple(sorted((n, v.numerator, v.denominator)
                            for n, v in expr.coeffs.items())),
               expr.const.numerator, expr.const.denominator)
        if key not in seen:
            seen.add(key)
            inequalities.append(expr)
    return equalities, inequalities


def _eliminate_equalities(dims: list[str], equalities: list[LinExpr],
                          inequalities: list[LinExpr],
                          form: SymbolicAffineForm) -> tuple[list[str], list[LinExpr],
                                                             SymbolicAffineForm]:
    """Substitute away dims pinned by equalities, in both the inequality
    system and the symbolic form.  Equalities that become variable-free must
    be identically zero (otherwise the polyhedron was empty — callers only
    pass non-empty relations)."""
    dims = list(dims)
    form = form.copy()
    equalities = [e.copy() for e in equalities]
    inequalities = [e.copy() for e in inequalities]

    zero = Fraction(0)
    while equalities:
        equality = equalities.pop()
        pivot = next((d for d in dims if equality.coeffs.get(d)), None)
        if pivot is None:
            if equality.const != 0:
                raise ValueError("inconsistent equality in non-empty polyhedron")
            continue
        k = equality.coeffs[pivot]
        # pivot = substitution where equality = k*pivot + rest == 0.
        scale = -1 / k
        substitution = LinExpr._raw(
            {n: scale * c for n, c in equality.coeffs.items() if n != pivot},
            scale * equality.const)

        def substitute(expr: LinExpr) -> LinExpr:
            c = expr.coeffs.get(pivot)
            if not c:
                return expr
            # ``without + c * substitution`` without the intermediate copies.
            merged = {n: v for n, v in expr.coeffs.items() if n != pivot}
            for n, v in substitution.coeffs.items():
                value = merged.get(n, zero) + c * v
                if value:
                    merged[n] = value
                else:
                    merged.pop(n, None)
            return LinExpr._raw(merged, expr.const + c * substitution.const)

        equalities = [substitute(e) for e in equalities]
        inequalities = [substitute(e) for e in inequalities]
        # Substitute in the symbolic form: the (symbolic) coefficient of the
        # pivot redistributes onto the substitution's dims and constant.
        pivot_coeff = form.coeffs.pop(pivot, LinExpr())
        for name, c in substitution.coeffs.items():
            form.add_term(name, c * pivot_coeff)
        form.const = form.const + substitution.const * pivot_coeff
        dims.remove(pivot)

    # Drop inequalities that became trivially true constants.
    kept = []
    for expr in inequalities:
        live = {d for d in expr.coeffs if d in dims}
        if not live:
            if expr.const < 0:
                raise ValueError("inconsistent inequality in non-empty polyhedron")
            continue
        kept.append(expr)
    return dims, kept, form


# The same (polyhedron, symbolic form) pair is linearized over and over:
# coincidence/plain retries, sibling fallbacks and the tvm variant's
# per-statement clusters all rebuild identical dimension problems.  The
# normalization + equality-elimination half of the work depends only on
# content, so it is memoized process-wide (same lifetime argument as
# ``repro.sets.polyhedron._EMPTINESS_CACHE``: forked evaluation workers
# inherit the warm cache, keeping serial and parallel metric streams equal).
#
# Keys must preserve *order* — constraint order and coefficient insertion
# order — because ``_eliminate_equalities`` picks pivots in encounter order,
# so differently-ordered-but-equal systems may reduce differently.  Cached
# triples are immutable by contract: ``add_farkas_nonneg`` only reads them.
_LINEARIZATION_CACHE: dict = {}
_LINEARIZATION_CACHE_MAX = 50_000


def _linearize(poly: Polyhedron, form: SymbolicAffineForm
               ) -> tuple[list[str], list[LinExpr], SymbolicAffineForm]:
    # Fractions are flattened to (numerator, denominator) int pairs: unique
    # representation, and int tuples hash far faster than Fractions.
    def sig(e: LinExpr) -> tuple:
        return (tuple((n, c.numerator, c.denominator)
                      for n, c in e.coeffs.items()),
                e.const.numerator, e.const.denominator)

    key = (
        tuple(poly.dims),
        tuple((c.sense, sig(c.expr)) for c in poly.constraints),
        tuple((d, sig(e)) for d, e in form.coeffs.items()),
        sig(form.const),
    )
    metrics = get_obs().metrics
    cached = _LINEARIZATION_CACHE.get(key)
    if cached is not None:
        if metrics.enabled:
            metrics.count("solver.farkas.hits")
        dims, inequalities, reduced_form = cached
        return list(dims), inequalities, reduced_form
    if metrics.enabled:
        metrics.count("solver.farkas.misses")
    equalities, inequalities = _normalized_inequalities(poly)
    dims, inequalities, reduced_form = _eliminate_equalities(
        poly.dims, equalities, inequalities, form)
    if len(_LINEARIZATION_CACHE) >= _LINEARIZATION_CACHE_MAX:
        _LINEARIZATION_CACHE.clear()
    _LINEARIZATION_CACHE[key] = (dims, inequalities, reduced_form)
    return list(dims), inequalities, reduced_form


def add_farkas_nonneg(problem: Problem, prefix: str, poly: Polyhedron,
                      form: SymbolicAffineForm) -> int:
    """Add constraints to ``problem`` making ``form(x) >= 0`` hold on ``poly``.

    Fresh continuous multipliers are named ``{prefix}.l{k}`` (and
    ``{prefix}.l0`` for the constant multiplier).  Returns the number of
    multiplier variables introduced.  ``prefix`` must be unique per call.
    """
    dims, inequalities, form = _linearize(poly, form)

    lambda0_name = f"{prefix}.l0"
    problem.add_variable(lambda0_name, lower=0, integer=False)
    multiplier_names = []
    for k, _ in enumerate(inequalities):
        name = f"{prefix}.l{k + 1}"
        problem.add_variable(name, lower=0, integer=False)
        multiplier_names.append(name)

    # Coefficient matching per remaining dimension.  Multiplier names are
    # fresh, so their coefficients are written into the dict directly rather
    # than through a chain of LinExpr subtractions (each of which would copy
    # the accumulating dict).
    for dim in dims:
        base = form.coefficient(dim)
        coeffs = dict(base.coeffs)
        for name, g in zip(multiplier_names, inequalities):
            c = g.coeffs.get(dim)
            if c:
                coeffs[name] = -c
        problem.add_constraint(
            Constraint(LinExpr._raw(coeffs, base.const), "=="))

    # Constant matching.
    coeffs = dict(form.const.coeffs)
    coeffs[lambda0_name] = Fraction(-1)
    for name, g in zip(multiplier_names, inequalities):
        if g.const:
            coeffs[name] = -g.const
    problem.add_constraint(
        Constraint(LinExpr._raw(coeffs, form.const.const), "=="))
    return len(multiplier_names) + 1
