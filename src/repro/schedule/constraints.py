"""Constraint builders for the per-dimension scheduling ILP (Section IV-A).

Each scheduling dimension is found by solving one ILP whose unknowns are,
for every statement ``S``:

* ``c[S].i{k}`` — coefficient of the k-th iterator of ``S``,
* ``c[S].p[{p}]`` — coefficient of parameter ``p``,
* ``c[S].0`` — the constant,

plus the proximity bound unknowns ``u[{p}]`` and ``w`` and the Farkas
multipliers introduced by the builders.  The builders below add:

* validity (Feautrier):          phi_T - phi_S >= 0 on every relation,
* proximity (Bondhugula/isl):    phi_T - phi_S <= u.p + w on every relation,
* coincidence (Lim & Lam):       phi_T - phi_S == 0 on every relation,
* progression (Pluto eq. 3/4):   nonzero, linearly independent rows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from repro.deps.relation import DependenceRelation, source_dim, target_dim
from repro.ir.statement import Statement
from repro.linalg.hermite import orthogonal_complement_or_identity
from repro.schedule.farkas import SymbolicAffineForm, add_farkas_nonneg
from repro.schedule.functions import ScheduleRow
from repro.solver.problem import Constraint, LinExpr, Problem, var


def iter_coeff_name(stmt: str, index: int) -> str:
    return f"c[{stmt}].i{index}"


def param_coeff_name(stmt: str, param: str) -> str:
    return f"c[{stmt}].p[{param}]"


def const_coeff_name(stmt: str) -> str:
    return f"c[{stmt}].0"


class DimensionProblem:
    """The ILP for one scheduling dimension."""

    def __init__(self, statements: Sequence[Statement], params: Sequence[str],
                 coeff_bound: int = 7, const_bound: int = 31):
        self.statements = list(statements)
        self.params = list(params)
        self.coeff_bound = coeff_bound
        self.const_bound = const_bound
        self.problem = Problem()
        self._farkas_counter = 0
        self._declare_schedule_variables()
        self._u_vars: Optional[dict[str, LinExpr]] = None
        self._w_var: Optional[LinExpr] = None
        #: Full assignment of the most recent successful :meth:`solve` (for
        #: warm-start handles); ``None`` until solved or when infeasible.
        self.last_assignment: Optional[dict] = None

    def fork(self) -> "DimensionProblem":
        """Independent copy sharing the constraints built so far.

        The scheduler builds validity + proximity once per dimension and
        forks before layering coincidence or progression on top, instead of
        re-linearizing everything for each retry.  The fork continues the
        Farkas prefix counter, so constraint/variable naming matches what a
        from-scratch build would produce.
        """
        copy = DimensionProblem.__new__(DimensionProblem)
        copy.statements = self.statements
        copy.params = self.params
        copy.coeff_bound = self.coeff_bound
        copy.const_bound = self.const_bound
        copy.problem = self.problem.clone()
        copy._farkas_counter = self._farkas_counter
        copy._u_vars = self._u_vars
        copy._w_var = self._w_var
        copy.last_assignment = None
        return copy

    @property
    def last_basis(self):
        """Final simplex basis of the most recent solve (opaque)."""
        return self.problem.last_basis

    # -- variables -----------------------------------------------------------

    def _declare_schedule_variables(self) -> None:
        for s in self.statements:
            for k in range(s.depth):
                self.problem.add_variable(iter_coeff_name(s.name, k),
                                          lower=0, upper=self.coeff_bound)
            for p in self.params:
                self.problem.add_variable(param_coeff_name(s.name, p),
                                          lower=0, upper=self.coeff_bound)
            self.problem.add_variable(const_coeff_name(s.name),
                                      lower=0, upper=self.const_bound)

    def _fresh_prefix(self) -> str:
        self._farkas_counter += 1
        return f"f{self._farkas_counter}"

    # -- symbolic schedule forms ------------------------------------------------

    def phi_form(self, statement: Statement, side: str) -> SymbolicAffineForm:
        """``phi_S`` as a symbolic form over a relation's renamed dims.

        ``side`` is "s" (source) or "t" (target); parameters keep their
        shared names.
        """
        renamer = source_dim if side == "s" else target_dim
        form = SymbolicAffineForm()
        for k, it in enumerate(statement.iterators):
            form.add_term(renamer(it), var(iter_coeff_name(statement.name, k)))
        for p in self.params:
            form.add_term(p, var(param_coeff_name(statement.name, p)))
        form.const = form.const + var(const_coeff_name(statement.name))
        return form

    def delta_form(self, rel: DependenceRelation) -> SymbolicAffineForm:
        """``phi_T(t) - phi_S(s)`` as a symbolic form over relation dims."""
        src = self.phi_form(rel.source, "s")
        tgt = self.phi_form(rel.target, "t")
        form = SymbolicAffineForm()
        for dim, coeff in tgt.coeffs.items():
            form.add_term(dim, coeff)
        for dim, coeff in src.coeffs.items():
            form.add_term(dim, -1 * coeff)
        form.const = tgt.const - src.const
        return form

    # -- builders ------------------------------------------------------------------

    def add_validity(self, relations: Iterable[DependenceRelation]) -> None:
        """phi_T - phi_S >= 0 on every relation (weak satisfaction)."""
        for rel in relations:
            add_farkas_nonneg(self.problem, self._fresh_prefix(),
                              rel.polyhedron, self.delta_form(rel))

    def add_proximity(self, relations: Iterable[DependenceRelation]) -> None:
        """phi_T - phi_S <= u.p + w on every relation; declares u, w."""
        if self._u_vars is None:
            self._u_vars = {}
            for p in self.params:
                self._u_vars[p] = self.problem.add_variable(
                    f"u[{p}]", lower=0, upper=self.coeff_bound)
            self._w_var = self.problem.add_variable(
                "w", lower=0, upper=self.const_bound)
        for rel in relations:
            delta = self.delta_form(rel)
            form = SymbolicAffineForm()
            for p in self.params:
                form.add_term(p, self._u_vars[p])
            form.const = form.const + self._w_var
            for dim, coeff in delta.coeffs.items():
                form.add_term(dim, -1 * coeff)
            form.const = form.const - delta.const
            add_farkas_nonneg(self.problem, self._fresh_prefix(),
                              rel.polyhedron, form)

    def add_coincidence(self, relations: Iterable[DependenceRelation]) -> None:
        """phi_T - phi_S == 0 on every relation (zero reuse distance)."""
        for rel in relations:
            delta = self.delta_form(rel)
            add_farkas_nonneg(self.problem, self._fresh_prefix(),
                              rel.polyhedron, delta)
            negated = SymbolicAffineForm(
                {d: -1 * c for d, c in delta.coeffs.items()}, -1 * delta.const)
            add_farkas_nonneg(self.problem, self._fresh_prefix(),
                              rel.polyhedron, negated)

    def add_progression(self, previous_rows: dict[str, list[ScheduleRow]],
                        skip: Optional[set] = None) -> None:
        """Pluto eq. (3) and (4): nonzero rows, linearly independent from
        the rows already computed.  Statements whose iterator space is
        already fully spanned are left unconstrained (they may receive a
        zero or dependent row, as in Pluto); statements in ``skip`` are
        exempted (influence-tree ``allow_zero`` meta)."""
        skip = skip or set()
        one = Fraction(1)
        zero = Fraction(0)
        for s in self.statements:
            if s.name in skip:
                continue
            h_rows = [list(r.iter_coeffs) for r in previous_rows.get(s.name, [])]
            basis = orthogonal_complement_or_identity(h_rows, s.depth) \
                if s.depth else []
            if not basis:
                continue
            coeff_names = [iter_coeff_name(s.name, k) for k in range(s.depth)]
            # Eq. (3): sum of iterator coefficients >= 1.
            self.problem.add_constraint(Constraint(
                LinExpr._raw({n: one for n in coeff_names}, Fraction(-1)),
                ">="))
            # Eq. (4): each complement component nonnegative, their sum >= 1.
            sums: dict[str, Fraction] = {}
            for row in basis:
                component = {n: Fraction(value)
                             for value, n in zip(row, coeff_names) if value}
                self.problem.add_constraint(
                    Constraint(LinExpr._raw(component, zero), ">="))
                for n, v in component.items():
                    value = sums.get(n, zero) + v
                    if value:
                        sums[n] = value
                    else:
                        sums.pop(n, None)
            self.problem.add_constraint(
                Constraint(LinExpr._raw(sums, Fraction(-1)), ">="))

    def add_raw_constraints(self, constraints) -> None:
        """Inject externally built constraints (the influence mechanism).

        Any variable the constraints mention that is not yet declared is
        created as a bounded nonnegative integer (same bounds as schedule
        coefficients)."""
        for c in constraints:
            for name in c.expr.variables():
                self.problem.add_variable(name, lower=0, upper=self.coeff_bound)
            self.problem.add_constraint(c)

    # -- objective & solving ----------------------------------------------------------

    def objectives(self) -> list[LinExpr]:
        """The isl-style lexicographic objective (Section IV-A-2):
        ``(sum_i u_i, w, sum of iterator coeffs, sum of parameter coeffs,
        sum of constants)``."""
        one = Fraction(1)
        zero = Fraction(0)
        levels: list[LinExpr] = []
        if self._u_vars is not None:
            u_total: dict[str, Fraction] = {}
            for p in self.params:
                for n, c in self._u_vars[p].coeffs.items():
                    u_total[n] = u_total.get(n, zero) + c
            levels.append(LinExpr._raw(
                {n: c for n, c in u_total.items() if c}, zero))
            levels.append(self._w_var.copy())
        iter_total: dict[str, Fraction] = {}
        param_total: dict[str, Fraction] = {}
        const_total: dict[str, Fraction] = {}
        for s in self.statements:
            for k in range(s.depth):
                iter_total[iter_coeff_name(s.name, k)] = one
            for p in self.params:
                param_total[param_coeff_name(s.name, p)] = one
            const_total[const_coeff_name(s.name)] = one
        levels.extend([LinExpr._raw(iter_total, zero),
                       LinExpr._raw(param_total, zero),
                       LinExpr._raw(const_total, zero)])
        return levels

    def solve(self, extra_objectives: Sequence[LinExpr] = (),
              injected_objectives: Sequence[LinExpr] = (),
              max_nodes: int = 60_000,
              warm=None, backend=None) -> Optional[dict[str, list[int]]]:
        """Solve the dimension ILP; returns per-statement coefficient rows
        ``[iter_coeffs..., param_coeffs..., const]`` or None.

        ``injected_objectives`` (from influence-tree nodes) are inserted
        after the proximity levels and before the coefficient sums;
        ``extra_objectives`` (tie-breaks) come last.  The lexicographic
        objective is folded into a single weighted expression when all its
        variables are bounded (they are, by construction), so one
        branch-and-bound run decides the dimension.

        ``warm``/``backend`` are forwarded to ``Problem.solve`` — prior
        solutions offered through a warm-start handle tighten the
        branch-and-bound incumbent without changing the result.
        """
        levels = self.objectives()
        if injected_objectives:
            insert_at = 2 if self._u_vars is not None else 0
            levels[insert_at:insert_at] = list(injected_objectives)
        levels = levels + list(extra_objectives)
        folded = self.problem.fold_objectives(levels)
        if folded is not None:
            assignment = self.problem.solve(objective=folded,
                                            max_nodes=max_nodes,
                                            warm=warm, backend=backend)
        else:
            assignment = self.problem.lexmin(levels, max_nodes=max_nodes,
                                             warm=warm, backend=backend)
        self.last_assignment = assignment
        if assignment is None:
            return None
        out: dict[str, list[int]] = {}
        for s in self.statements:
            row = [int(assignment[iter_coeff_name(s.name, k)])
                   for k in range(s.depth)]
            row += [int(assignment[param_coeff_name(s.name, p)])
                    for p in self.params]
            row.append(int(assignment[const_coeff_name(s.name)]))
            out[s.name] = row
        return out
