"""Affine scheduling with constraint injection (the paper's core).

* :mod:`repro.schedule.functions` — schedule rows / transformation matrices
  (Section III-B of the paper).
* :mod:`repro.schedule.farkas` — the affine form of Farkas' lemma, used to
  linearize "nonnegative over a polyhedron" conditions.
* :mod:`repro.schedule.constraints` — the constraint builders of Section
  IV-A: validity, proximity (isl-form cost), coincidence, progression.
* :mod:`repro.schedule.scheduler` — Algorithm 1, the influenced scheduling
  construction with its five-level backtracking ladder.
"""

from repro.schedule.functions import Schedule, ScheduleRow
from repro.schedule.scheduler import (
    InfluencedScheduler,
    SchedulerOptions,
    SchedulerStats,
    SchedulingError,
)

__all__ = [
    "Schedule",
    "ScheduleRow",
    "InfluencedScheduler",
    "SchedulerOptions",
    "SchedulerStats",
    "SchedulingError",
]
