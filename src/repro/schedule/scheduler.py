"""Algorithm 1: influenced scheduling construction.

A Pluto-style iterative scheduler (one ILP per dimension, outermost first)
extended with influence constraint tree injection and the paper's
backtracking ladder.  When the per-dimension ILP has no solution we try, in
order (Section IV-B):

1. drop the progression constraints when all dependences are satisfied and
   the influence tree asks for supplementary dimensions;
2. move to the next (lower-priority) sibling of the current tree node;
3. discard permutability: retire dependences already strongly satisfied by
   the rows built so far (ends the current permutable band);
4. backtrack to the closest right sibling of an ancestor node, withdrawing
   the schedule dimensions built since;
5. separate strongly connected components of the remaining dependence graph
   with a scalar dimension.

Ultimately, if no influence scenario is feasible at all, the scheduler
reruns without influence constraints — its output is then that of the plain
(isl-configured) scheduler.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from repro.deps.analysis import compute_dependences
from repro.deps.graph import DependenceGraph
from repro.deps.relation import DependenceRelation
from repro.errors import BranchLimitExceeded, SchedulingError
from repro.faultinject import fault_action, raise_fault
from repro.influence.tree import InfluenceTree, TreeCursor, parse_theta
from repro.ir.kernel import Kernel
from repro.obs.provenance import NULL_JOURNAL, get_journal
from repro.obs.runtime import NULL_OBS, get_obs
from repro.schedule.analysis import annotate_parallelism, satisfaction_depth
from repro.schedule.constraints import (
    DimensionProblem,
    const_coeff_name,
    iter_coeff_name,
    param_coeff_name,
)
from repro.schedule.functions import DimensionInfo, Schedule, ScheduleRow
from repro.solver.backend import resolve_backend
from repro.solver.budget import SolveBudget, use_budget
from repro.solver.dedup import SolveCache, get_solve_cache, use_solve_cache
from repro.solver.problem import Constraint, LinExpr
from repro.solver.warmstart import WarmStartHandle, get_warm_pool

__all__ = ["SchedulingError", "SchedulerOptions", "SchedulerStats",
           "InfluencedScheduler"]


class _RestartWithoutInfluence(Exception):
    """Internal: no influence scenario is feasible; rerun plain."""


@dataclass
class SchedulerOptions:
    """Configuration of the influenced scheduler."""

    coeff_bound: int = 7          # schedule coefficients live in [0, bound]
    const_bound: int = 31
    outer_coincidence: bool = True  # try zero-reuse-distance dims first
    proximity_input_deps: bool = False  # include read-after-read in proximity
    textual_tie_break: bool = True  # prefer original loop order on cost ties
    max_iterations: int = 400
    max_ilp_nodes: int = 60_000
    # Optional cumulative work budget per construction attempt; exhausting
    # it raises SolverTimeout (see repro.solver.budget for the semantics).
    budget: Optional[SolveBudget] = None
    # Solver backend name; "" resolves via REPRO_SOLVER / the registry
    # default (see repro.solver.backend).
    solver: str = ""
    # Simulator backend name; "" resolves via REPRO_SIM / the registry
    # default (see repro.gpu.backend).
    sim: str = ""


@dataclass
class SchedulerStats:
    """Counters describing one scheduling run (used by the backtracking
    experiment: the paper reports only few fallback activations)."""

    ilp_solves: int = 0
    dimensions_built: int = 0
    coincident_dimensions: int = 0
    coincidence_retries: int = 0
    sibling_fallbacks: int = 0
    permutability_drops: int = 0
    ancestor_backtracks: int = 0
    scc_separations: int = 0
    influence_nodes_applied: int = 0
    influence_abandoned: bool = False
    progression_drops: int = 0
    branch_limit_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain mapping, ready for pass-context aggregation
        (``influence_abandoned`` becomes a 0/1 activation count)."""
        return {name: int(value) for name, value in asdict(self).items()}


class InfluencedScheduler:
    """Algorithm 1 over one kernel."""

    def __init__(self, kernel: Kernel,
                 relations: Optional[Sequence[DependenceRelation]] = None,
                 options: Optional[SchedulerOptions] = None):
        self.kernel = kernel
        self.options = options or SchedulerOptions()
        if relations is None:
            relations = compute_dependences(
                kernel, include_input=self.options.proximity_input_deps)
        self.relations = list(relations)
        self.validity_relations = [r for r in self.relations if r.kind != "input"]
        self.input_relations = [r for r in self.relations if r.kind == "input"]
        self.stats = SchedulerStats()
        self._obs = NULL_OBS
        self._journal = NULL_JOURNAL
        self._backend = resolve_backend(self.options.solver)
        # Warm-start handles per dimension index, reset per schedule() call.
        # They deliberately survive dimension withdrawals and the
        # influenced -> plain restart: a previously solved dimension is an
        # excellent incumbent for re-solving the same depth with fewer
        # constraints (sibling fallback, restart-without-influence).
        self._dim_handles: dict[int, WarmStartHandle] = {}

    # -- public API -----------------------------------------------------------

    def schedule(self, tree: Optional[InfluenceTree] = None) -> Schedule:
        """Construct a complete valid schedule, influenced by ``tree``."""
        if tree is not None:
            tree.validate()
        self.stats = SchedulerStats()
        self._obs = get_obs()
        self._journal = get_journal()
        self._backend = resolve_backend(self.options.solver)
        self._dim_handles = {}
        # Deduplicate identical solves within this run when no wider scope
        # (e.g. the pipeline's per-compile cache) is already installed.
        if self._backend.incremental and get_solve_cache() is None:
            cache_scope = use_solve_cache(SolveCache())
        else:
            cache_scope = nullcontext()
        with cache_scope, \
                self._obs.span("scheduler.schedule", kernel=self.kernel.name,
                               influenced=tree is not None) as span:
            self._journal.note("schedule-start", kernel=self.kernel.name,
                               influenced=tree is not None)
            try:
                with self._budget_scope():
                    result = self._construct(tree)
            except _RestartWithoutInfluence:
                self.stats.influence_abandoned = True
                self._obs.event("scheduler.backtrack", kind="abandon-influence",
                                kernel=self.kernel.name)
                self._journal.backtrack("abandon-influence", dim=-1,
                                        kernel=self.kernel.name)
                with self._budget_scope():
                    result = self._construct(None)
            span.set(dimensions=result.n_dims,
                     ilp_solves=self.stats.ilp_solves)
            self._journal.note("schedule-done", kernel=self.kernel.name,
                               dimensions=result.n_dims,
                               ilp_solves=self.stats.ilp_solves)
        annotate_parallelism(result, self.validity_relations)
        return result

    def _budget_scope(self):
        """An ambient-budget context for one construction attempt.

        Each attempt (influenced, and the restart without influence)
        gets a fresh countdown so the restart is not charged for the
        abandoned attempt's spending."""
        if self.options.budget is None:
            return nullcontext()
        return use_budget(self.options.budget.start())

    # -- construction -----------------------------------------------------------

    def _construct(self, tree: Optional[InfluenceTree]) -> Schedule:
        statements = self.kernel.statements
        params = self.kernel.parameter_names
        schedule = Schedule(statements, params)
        active: list[DependenceRelation] = list(self.validity_relations)
        cursor: Optional[TreeCursor] = tree.cursor() if tree else None
        # Snapshot of `active` at the moment each tree depth was entered,
        # plus the schedule dimension count at that moment (for withdrawal).
        backups: list[tuple[list[DependenceRelation], int]] = []
        band = 0

        for _ in range(self.options.max_iterations):
            if schedule.is_complete():
                # Retire dependences strongly satisfied by the built rows.
                remaining = [r for r in active
                             if satisfaction_depth(r, schedule) is None]
                if len(remaining) != len(active):
                    active = remaining
                    continue
                if active:
                    band += 1
                    if not self._separate_sccs(schedule, active, band):
                        raise SchedulingError(
                            f"kernel {self.kernel.name}: mutually dependent "
                            f"statements remain in one component with no "
                            f"dimension left to order them")
                    active = [r for r in active
                              if satisfaction_depth(r, schedule) is None]
                    continue
                if cursor is None:
                    break
                # Influence wants supplementary dimensions: drop progression
                # (Algorithm 1 lines 12-15).
                self._snapshot(backups, cursor, active, schedule)
                self.stats.progression_drops += 1
                with self._obs.span("scheduler.dimension",
                                    dim=schedule.n_dims,
                                    supplementary=True) as span:
                    solves_before = self.stats.ilp_solves
                    rows = self._solve_dimension(
                        schedule, active, cursor, with_progression=False,
                        coincidence=False)
                    if rows is not None:
                        self._append(schedule, rows, cursor, band,
                                     coincident=False)
                        span.set(built=True,
                                 ilp_solves=self.stats.ilp_solves
                                 - solves_before)
                        cursor = cursor.first_child()
                        continue
                    cursor, schedule, active, band = self._fallback(
                        schedule, active, cursor, backups, band)
                    span.set(built=False,
                             ilp_solves=self.stats.ilp_solves - solves_before)
                continue

            if cursor is not None:
                self._snapshot(backups, cursor, active, schedule)

            with self._obs.span("scheduler.dimension",
                                dim=schedule.n_dims) as span:
                solves_before = self.stats.ilp_solves
                rows, coincident = self._attempt(schedule, active, cursor)
                if rows is not None:
                    self._append(schedule, rows, cursor, band, coincident)
                    span.set(built=True, coincident=coincident,
                             ilp_solves=self.stats.ilp_solves - solves_before)
                    if cursor is not None:
                        cursor = cursor.first_child()
                    continue

                # Failure ladder (2)-(5).
                previous = (cursor, schedule.n_dims, len(active))
                cursor, schedule, active, band = self._fallback(
                    schedule, active, cursor, backups, band)
                span.set(built=False,
                         ilp_solves=self.stats.ilp_solves - solves_before)
            if (cursor, schedule.n_dims, len(active)) == previous:
                raise SchedulingError(
                    f"no progress scheduling kernel {self.kernel.name} at "
                    f"dimension {schedule.n_dims}")
        else:
            raise SchedulingError(
                f"iteration limit exceeded for kernel {self.kernel.name}")
        return schedule

    @staticmethod
    def _snapshot(backups, cursor, active, schedule) -> None:
        """Record ``Backup[d] := D`` (Algorithm 1 line 5) for the cursor's
        depth, together with the current dimension count for withdrawal."""
        while len(backups) <= cursor.depth:
            backups.append(None)
        backups[cursor.depth] = (list(active), schedule.n_dims)

    # -- one dimension ----------------------------------------------------------------

    def _attempt(self, schedule: Schedule, active, cursor):
        """Solve one dimension: coincidence first (isl-style), then plain.

        The validity + proximity constraint system is shared by both tries,
        so it is linearized once and forked per try.

        Returns (rows or None, coincident_flag)."""
        node = cursor.node if cursor is not None else None
        base = self._build_base(active)
        if self.options.outer_coincidence and active:
            rows = self._solve_dimension(schedule, active, cursor,
                                         with_progression=True,
                                         coincidence=True, base=base)
            if rows is not None:
                return rows, True
            self.stats.coincidence_retries += 1
            if node is not None and node.require_parallel:
                return None, False
        rows = self._solve_dimension(schedule, active, cursor,
                                     with_progression=True, coincidence=False,
                                     base=base)
        return rows, False

    def _build_base(self, active) -> DimensionProblem:
        """Validity + proximity constraints common to every try of one
        dimension."""
        base = DimensionProblem(self.kernel.statements,
                                self.kernel.parameter_names,
                                coeff_bound=self.options.coeff_bound,
                                const_bound=self.options.const_bound)
        base.add_validity(active)
        base.add_proximity(list(active) + list(self.input_relations))
        return base

    def _solve_dimension(self, schedule: Schedule, active, cursor,
                         with_progression: bool, coincidence: bool,
                         base: Optional[DimensionProblem] = None):
        statements = self.kernel.statements
        params = self.kernel.parameter_names
        problem = base.fork() if base is not None else self._build_base(active)
        if coincidence:
            problem.add_coincidence(active)
        if with_progression:
            skip = set(cursor.node.allow_zero) if cursor is not None else set()
            problem.add_progression(schedule.rows, skip=skip)
        injected: list[LinExpr] = []
        translated: list[Constraint] = []
        if cursor is not None:
            translated = self._translate_influence(cursor.node, schedule,
                                                   schedule.n_dims)
            problem.add_raw_constraints(translated)
            injected = [
                self._translate_expr(expr, schedule, schedule.n_dims)
                for expr in cursor.node.objectives]
            for expr in injected:
                for name in expr.variables():
                    problem.problem.add_variable(
                        name, lower=0, upper=self.options.coeff_bound)
        extra = self._tie_break_objectives(statements) \
            if self.options.textual_tie_break else []
        action = fault_action("scheduler.dimension",
                              kernel=self.kernel.name, dim=schedule.n_dims,
                              coincidence=coincidence)
        if action == "infeasible":
            # Injected infeasibility: report the dimension unsolvable so
            # the backtracking ladder (sibling/permutability/SCC) runs.
            self._obs.event("scheduler.ilp-solve", dim=schedule.n_dims,
                            coincidence=coincidence,
                            progression=with_progression,
                            feasible=False, injected=True)
            self._journal_dimension(schedule, cursor, coincidence,
                                    with_progression, translated,
                                    feasible=False, fault_injected=True)
            return None
        if action is not None:
            raise_fault(action, "scheduler.dimension",
                        kernel=self.kernel.name, dim=schedule.n_dims)
        self.stats.ilp_solves += 1
        reuse_before = self._reuse_counters()
        warm = None
        pool = get_warm_pool() if self._backend.incremental else None
        if self._backend.incremental:
            # Prior solutions at this depth (sibling retries, supplementary
            # dimensions, the plain restart), at the same depth of sibling
            # scenarios via the ambient pool (other variants, clusters and
            # degradation rungs of the same operator), and at the previous
            # depth are plausibly feasible here too; offer them all as
            # incumbent-bound candidates.
            dim = schedule.n_dims
            warm = WarmStartHandle.merged(
                self._dim_handles.get(dim),
                pool.peek(dim) if pool is not None else None,
                self._dim_handles.get(dim - 1))
            if not warm:
                warm = None
        try:
            rows = problem.solve(extra_objectives=extra,
                                 injected_objectives=injected,
                                 max_nodes=self.options.max_ilp_nodes,
                                 warm=warm, backend=self._backend)
        except BranchLimitExceeded:
            # A degenerate per-dimension ILP is treated like infeasibility:
            # backtrack rather than abort the whole construction.
            self.stats.branch_limit_hits += 1
            self._obs.event("scheduler.ilp-solve", dim=schedule.n_dims,
                            coincidence=coincidence,
                            progression=with_progression,
                            feasible=False, branch_limit=True)
            self._journal_dimension(schedule, cursor, coincidence,
                                    with_progression, translated,
                                    feasible=False, branch_limit=True)
            return None
        self._obs.event("scheduler.ilp-solve", dim=schedule.n_dims,
                        coincidence=coincidence,
                        progression=with_progression,
                        feasible=rows is not None)
        self._journal_dimension(schedule, cursor, coincidence,
                                with_progression, translated,
                                feasible=rows is not None,
                                reuse_before=reuse_before)
        if rows is None:
            return None
        if self._backend.incremental and problem.last_assignment is not None:
            handle = self._dim_handles.setdefault(schedule.n_dims,
                                                  WarmStartHandle())
            handle.offer(problem.last_assignment, problem.last_basis)
            if pool is not None:
                pool.handle(schedule.n_dims).offer(problem.last_assignment)
        out = {}
        for s in statements:
            coeffs = rows[s.name]
            out[s.name] = ScheduleRow.from_coeffs(
                s, params, coeffs[:s.depth],
                coeffs[s.depth:s.depth + len(params)], coeffs[-1])
        return out

    def _reuse_counters(self) -> Optional[tuple[float, float]]:
        """Warm-start/dedup hit counters (for per-dimension journal deltas);
        None when the journal or the metrics registry is off."""
        if not self._journal.enabled or not self._obs.metrics.enabled:
            return None
        counters = self._obs.metrics.counters
        return (counters.get("solver.warmstart.hits", 0.0),
                counters.get("solver.dedup.hits", 0.0))

    def _journal_dimension(self, schedule: Schedule, cursor, coincidence: bool,
                           with_progression: bool, translated, feasible: bool,
                           reuse_before: Optional[tuple] = None,
                           **extra) -> None:
        """One provenance event per dimension ILP attempt: the injected
        constraint set, the tree node it came from, and the verdict."""
        if not self._journal.enabled:
            return
        node = cursor.node if cursor is not None else None
        if reuse_before is not None:
            after = self._reuse_counters()
            if after is not None:
                extra["warmstart_hits"] = int(after[0] - reuse_before[0])
                extra["dedup_hits"] = int(after[1] - reuse_before[1])
        self._journal.dimension(
            schedule.n_dims,
            coincidence=coincidence,
            progression=with_progression,
            node=node.label if node is not None else "",
            injected=[repr(c) for c in translated],
            feasible=feasible, **extra)

    def _tie_break_objectives(self, statements) -> list[LinExpr]:
        """Prefer the textual loop order on cost ties: minimize the weight
        given to *later* iterators first, so outer original loops win."""
        max_depth = max((s.depth for s in statements), default=0)
        levels = []
        for position in range(max_depth - 1, -1, -1):
            total = LinExpr()
            for s in statements:
                if position < s.depth:
                    total = total + LinExpr(
                        {iter_coeff_name(s.name, position): Fraction(1)})
            levels.append(total)
        return levels

    def _append(self, schedule: Schedule, rows, cursor, band: int,
                coincident: bool) -> None:
        node = cursor.node if cursor is not None else None
        info = DimensionInfo(coincident=coincident, band=band,
                             from_influence=node is not None
                             and bool(node.constraints))
        schedule.append_dimension(rows, info)
        self.stats.dimensions_built += 1
        if coincident:
            self.stats.coincident_dimensions += 1
        if node is not None:
            self.stats.influence_nodes_applied += 1
            if node.mark_vector:
                dim = schedule.n_dims - 1
                schedule.mark_vector(dim)
                schedule.dims[dim].vector_width = node.vector_width

    # -- fallbacks ------------------------------------------------------------------------

    def _fallback(self, schedule: Schedule, active, cursor, backups, band):
        """Steps (2)-(5) of the ladder; returns updated state."""
        # (2) right sibling of the current node.
        if cursor is not None:
            sibling = cursor.right_sibling()
            if sibling is not None:
                self.stats.sibling_fallbacks += 1
                self._obs.event("scheduler.backtrack", kind="sibling",
                                dim=schedule.n_dims)
                self._journal.backtrack("sibling", dim=schedule.n_dims,
                                        to=sibling.node.label)
                saved_active, _ = backups[cursor.depth]
                return sibling, schedule, list(saved_active), band

        # (3) discard permutability: retire strongly satisfied dependences.
        remaining = [r for r in active if satisfaction_depth(r, schedule) is None]
        if len(remaining) != len(active):
            self.stats.permutability_drops += 1
            self._obs.event("scheduler.backtrack", kind="permutability-drop",
                            dim=schedule.n_dims)
            self._journal.backtrack("permutability-drop",
                                    dim=schedule.n_dims,
                                    retired=len(active) - len(remaining))
            return cursor, schedule, remaining, band + 1

        # (4) closest right sibling of an ancestor.
        if cursor is not None:
            ancestor = cursor.ancestor_right_sibling()
            if ancestor is not None:
                self.stats.ancestor_backtracks += 1
                self._obs.event("scheduler.backtrack", kind="ancestor",
                                dim=schedule.n_dims)
                self._journal.backtrack("ancestor", dim=schedule.n_dims,
                                        to=ancestor.node.label)
                saved_active, saved_dims = backups[ancestor.depth]
                schedule.drop_dimensions_from(saved_dims)
                del backups[ancestor.depth:]
                new_band = schedule.dims[-1].band if schedule.dims else 0
                return ancestor, schedule, list(saved_active), new_band

        # (5) separate strongly connected components.  A separation only
        # helps if ordering the components strongly satisfies (and thereby
        # retires) at least one dependence; otherwise the next dimension
        # problem fails for the very same reason and the ladder would loop
        # appending scalar dimensions until max_iterations — withdraw the
        # fruitless dimension and fall through to the final rung instead.
        if self._separate_sccs(schedule, active, band + 1):
            remaining = [r for r in active
                         if satisfaction_depth(r, schedule) is None]
            if len(remaining) < len(active):
                self._obs.event("scheduler.backtrack", kind="scc-separation",
                                dim=schedule.n_dims)
                self._journal.backtrack("scc-separation",
                                        dim=schedule.n_dims)
                return cursor, schedule, remaining, band + 1
            schedule.drop_dimensions_from(schedule.n_dims - 1)
            self.stats.scc_separations -= 1
            self.stats.dimensions_built -= 1

        # Ultimately: drop influence entirely.
        if cursor is not None:
            raise _RestartWithoutInfluence()
        raise SchedulingError(
            f"kernel {self.kernel.name}: single component remains with "
            f"unsatisfiable constraints (Feautrier fallback not required "
            f"for AI/DL operators per the paper, hence not implemented)")

    def _separate_sccs(self, schedule: Schedule, active, band: int) -> bool:
        """Append a scalar dimension ordering the SCCs of the remaining
        dependence graph (Algorithm 1 lines 32-37).  Returns False when
        there is only one component (no separation possible)."""
        graph = DependenceGraph(self.kernel.statements, active)
        components = graph.topological_components()
        if len(components) < 2:
            return False
        order = {}
        for index, component in enumerate(components):
            for name in component:
                order[name] = index
        params = self.kernel.parameter_names
        rows = {s.name: ScheduleRow.scalar(s, params, order[s.name])
                for s in self.kernel.statements}
        schedule.append_dimension(rows, DimensionInfo(band=band))
        self.stats.scc_separations += 1
        self.stats.dimensions_built += 1
        return True

    # -- influence translation -----------------------------------------------------------

    def _translate_influence(self, node, schedule: Schedule,
                             current_dim: int) -> list[Constraint]:
        """Rewrite a node's theta-name constraints for the current ILP.

        Coefficients of the current dimension map onto the ILP's variables;
        coefficients of earlier dimensions are substituted with their solved
        values.  (Tree validation guarantees no later dimension appears.)
        """
        return [Constraint(self._translate_expr(c.expr, schedule,
                                                 current_dim), c.sense)
                for c in node.constraints]

    def _translate_expr(self, source: LinExpr, schedule: Schedule,
                        current_dim: int) -> LinExpr:
        """Rewrite one theta-name expression for the current ILP."""
        expr = LinExpr(const=source.const)
        for name, coeff in source.coeffs.items():
            parsed = parse_theta(name)
            if parsed is None:
                raise ValueError(f"non-theta variable {name!r} in "
                                 f"influence constraint")
            stmt, dim, which = parsed
            if dim > current_dim:
                raise ValueError(f"influence constraint mentions future "
                                 f"dimension {dim} at dim {current_dim}")
            if dim == current_dim:
                expr = expr + coeff * LinExpr(
                    {self._current_name(stmt, which): Fraction(1)})
            else:
                expr = expr + coeff * self._solved_value(
                    schedule, stmt, dim, which)
        return expr

    def _current_name(self, stmt: str, which: str) -> str:
        if which == "0":
            return const_coeff_name(stmt)
        if which.startswith("p[") and which.endswith("]"):
            return param_coeff_name(stmt, which[2:-1])
        if which.startswith("i"):
            return iter_coeff_name(stmt, int(which[1:]))
        raise ValueError(f"bad theta component {which!r}")

    def _solved_value(self, schedule: Schedule, stmt: str, dim: int,
                      which: str) -> Fraction:
        row = schedule.rows[stmt][dim]
        if which == "0":
            return Fraction(row.const)
        if which.startswith("p[") and which.endswith("]"):
            param = which[2:-1]
            return Fraction(row.param_coeffs[row.param_names.index(param)])
        if which.startswith("i"):
            return Fraction(row.iter_coeffs[int(which[1:])])
        raise ValueError(f"bad theta component {which!r}")
