"""Schedule serialization: Schedule <-> plain JSON-compatible dicts.

Scheduling is the expensive phase of the pipeline (one ILP per dimension);
serializing schedules lets callers cache them across runs, diff them, or
ship them to other tools.  The format is stable and versioned.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

from repro.ir.kernel import Kernel
from repro.schedule.functions import DimensionInfo, Schedule, ScheduleRow

FORMAT_VERSION = 1

# Degradation rungs a serialized schedule may be tagged with (mirrors
# repro.pipeline.akg.DEGRADATION_LEVELS; duplicated to avoid an import
# cycle — the pipeline imports this module's callers).
KNOWN_DEGRADATIONS = ("none", "no-influence", "isl-baseline")


def schedule_to_dict(schedule: Schedule,
                     degradation: Optional[str] = None) -> dict:
    """A JSON-compatible representation of a schedule.

    ``degradation`` optionally tags the payload with the resilience rung
    the producing compilation took (see
    :data:`repro.pipeline.akg.DEGRADATION_LEVELS`); consumers read it back
    with :func:`degradation_of`.
    """
    if degradation is not None and degradation not in KNOWN_DEGRADATIONS:
        raise ValueError(f"unknown degradation rung {degradation!r}; "
                         f"pick from {KNOWN_DEGRADATIONS}")
    payload = {
        "version": FORMAT_VERSION,
        "params": list(schedule.params),
        "statements": {
            s.name: [
                {
                    "iter_coeffs": list(row.iter_coeffs),
                    "param_coeffs": list(row.param_coeffs),
                    "const": row.const,
                }
                for row in schedule.rows[s.name]
            ]
            for s in schedule.statements
        },
        "dims": [
            {
                "coincident": info.coincident,
                "parallel": info.parallel,
                "band": info.band,
                "vector": info.vector,
                "vector_width": info.vector_width,
                "from_influence": info.from_influence,
            }
            for info in schedule.dims
        ],
    }
    if degradation is not None:
        payload["degradation"] = degradation
    return payload


def degradation_of(payload: Mapping) -> str:
    """The degradation rung a serialized schedule was produced at
    (``"none"`` for payloads without the tag, including version-1 files
    written before the resilience ladder existed)."""
    rung = payload.get("degradation", "none")
    if rung not in KNOWN_DEGRADATIONS:
        raise ValueError(f"unknown degradation rung {rung!r} in payload; "
                         f"pick from {KNOWN_DEGRADATIONS}")
    return rung


def schedule_from_dict(kernel: Kernel, payload: Mapping) -> Schedule:
    """Rebuild a schedule for ``kernel`` from :func:`schedule_to_dict` output.

    Raises ValueError on version/statement mismatches.
    """
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported schedule format version "
                         f"{payload.get('version')!r}")
    params = list(payload["params"])
    if params != kernel.parameter_names:
        raise ValueError(f"parameter mismatch: schedule has {params}, "
                         f"kernel has {kernel.parameter_names}")
    names = {s.name for s in kernel.statements}
    if set(payload["statements"]) != names:
        raise ValueError("statement set mismatch between kernel and payload")

    schedule = Schedule(kernel.statements, params)
    n_dims = len(payload["dims"])
    for name, rows in payload["statements"].items():
        if len(rows) != n_dims:
            raise ValueError(f"{name}: {len(rows)} rows vs {n_dims} dims")
    for d in range(n_dims):
        rows = {}
        for s in kernel.statements:
            raw = payload["statements"][s.name][d]
            rows[s.name] = ScheduleRow.from_coeffs(
                s, params, raw["iter_coeffs"], raw["param_coeffs"],
                raw["const"])
        meta = payload["dims"][d]
        schedule.append_dimension(rows, DimensionInfo(
            coincident=meta["coincident"],
            parallel=meta["parallel"],
            band=meta["band"],
            vector=meta["vector"],
            vector_width=meta["vector_width"],
            from_influence=meta["from_influence"],
        ))
    return schedule


def schedule_to_json(schedule: Schedule) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=2, sort_keys=True)


def schedule_content_hash(schedule: Schedule) -> str:
    """A short stable content hash of the schedule (row coefficients and
    dimension metadata; the degradation tag is excluded so the hash
    identifies the *schedule*, not how it was obtained).  Used by the run
    store to detect schedule changes across runs."""
    import hashlib

    canonical = json.dumps(schedule_to_dict(schedule), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def schedule_from_json(kernel: Kernel, text: str) -> Schedule:
    return schedule_from_dict(kernel, json.loads(text))
