"""Deterministic, seeded fault injection for the compilation stack.

Resilience code (solver deadlines, the pipeline degradation ladder, the
runner's worker-crash retry) is only trustworthy if its failure paths are
exercised.  This module provides an ambient *fault plan* — mirroring
``repro.obs.runtime`` — that instrumented sites consult:

* ``compile``            (``pipeline/passes.py``): force a typed failure
  of one variant compilation (``timeout``, ``scheduling-error``,
  ``codegen-error``, ``branch-limit``).
* ``scheduler.dimension`` (``schedule/scheduler.py``): declare one
  per-dimension ILP ``infeasible`` (drives the backtracking ladder) or
  ``timeout`` it.
* ``worker``             (``eval/runner.py``): ``crash`` the worker
  process evaluating a chosen operator (exercises the supervisor's
  death/retry path).  Only fires inside supervised workers.
* ``worker.hang``        (``eval/runner.py``): park the worker before it
  evaluates — action ``hang`` sleeps effectively forever (the
  supervisor's task-timeout kill is the only way out), a numeric action
  sleeps that many seconds.  Only fires inside supervised workers.
* ``worker.oom``         (``eval/runner.py``): allocate a bounded memory
  ballast (numeric action = MiB, capped at 256) and die with exit 137,
  simulating an OOM-kill.  Only fires inside supervised workers.
* ``store.append``       (``obs/store.py``, ``eval/checkpoint.py``):
  fail a durable append with ``enospc`` (raised before any byte is
  written) or ``short-write`` (half the line lands, then ``EIO`` — the
  torn-tail case readers must tolerate).  Attributes: ``kind`` (``run``
  or ``checkpoint``), ``path``, ``key``.

The ``worker*`` sites carry an ``attempt`` attribute, so probabilistic
rules get a fresh content-keyed draw on each supervised retry while
``p=1`` (or ``@attempt=0``-matched) rules stay fully deterministic.

Decisions are *content-keyed*: whether a rule fires depends solely on the
plan seed, the site name and the site's attributes (hashed through
SHA-256), never on call order or process identity.  A serial run and a
``--jobs N`` run therefore take identical fault decisions, which is what
keeps degradation records reproducible across execution modes.

Plans come from three places, in precedence order: an explicit
:func:`use_faults` scope, the ``REPRO_FAULT_PLAN`` environment variable
(a built-in plan name such as ``ci-chaos-1``, or an inline spec), else
the empty plan.  The inline spec grammar is semicolon-separated rules::

    site=action[@key=value[&key=value...]][:p=PROB]

    compile=timeout@variant=infl&influence=True
    worker=crash:p=0.25;scheduler.dimension=infeasible@dim=1

``@key=value`` clauses match site attributes by exact string equality;
``:p=`` makes the rule probabilistic (content-keyed, so still
deterministic).  A leading ``seed=N;`` token sets the plan seed.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import (
    BranchLimitExceeded,
    CodegenError,
    ReproError,
    SchedulingError,
    SolverTimeout,
)
from repro.obs.logutil import logger
from repro.obs.runtime import get_obs

ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: fire ``action`` at ``site`` when it matches."""

    site: str
    action: str
    match: tuple[tuple[str, str], ...] = ()  # (attr, exact str(value))
    probability: float = 1.0


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault rules (empty plan = no faults)."""

    name: str = ""
    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.rules)

    def action_at(self, site: str, **attrs) -> Optional[str]:
        """The action to inject at ``site`` with ``attrs``, or ``None``.

        The first matching rule wins; probabilistic rules decide via a
        content hash of ``(seed, site, attrs)`` so every process reaches
        the same verdict for the same site instance.
        """
        for rule in self.rules:
            if rule.site != site:
                continue
            if any(str(attrs.get(key)) != value for key, value in rule.match):
                continue
            if rule.probability >= 1.0 \
                    or _decision(self.seed, site, attrs) < rule.probability:
                return rule.action
        return None


def _decision(seed: int, site: str, attrs: dict) -> float:
    """Deterministic uniform draw in [0, 1) keyed by plan seed + site."""
    text = f"{seed}|{site}|" + "|".join(
        f"{key}={attrs[key]}" for key in sorted(attrs))
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


NULL_PLAN = FaultPlan()

# Built-in plans referenced by name (CI, docs).  ``ci-chaos-1`` only
# injects worker crashes: those are result-invariant (the runner retries
# crashed items serially and the compilation model is deterministic), so
# the whole tier-1 suite must stay green under it.
BUILTIN_PLANS: dict[str, FaultPlan] = {
    "ci-chaos-1": FaultPlan(
        name="ci-chaos-1", seed=1001,
        rules=(FaultRule(site="worker", action="crash", probability=0.25),)),
    # ``ci-chaos-2`` exercises the supervision + checkpoint paths:
    # deterministically hang one LSTM operator's first attempt (the
    # supervisor must kill it within --task-timeout and the retry
    # succeeds), OOM-kill another one once, and fail half of all
    # checkpoint appends with ENOSPC (the checkpoint degrades to
    # best-effort; results are unaffected).  Run-store appends
    # (kind=run) are left alone so CI can still read the run record.
    "ci-chaos-2": FaultPlan(
        name="ci-chaos-2", seed=2002,
        rules=(
            FaultRule(site="worker.hang", action="30",
                      match=(("kernel", "lstm_op001_elementwise_vec"),
                             ("attempt", "0"))),
            FaultRule(site="worker.oom", action="32",
                      match=(("kernel", "lstm_op003_broadcast"),
                             ("attempt", "0"))),
            FaultRule(site="store.append", action="enospc",
                      match=(("kind", "checkpoint"),), probability=0.5),
        )),
}


class FaultPlanError(ValueError):
    """An inline fault-plan spec could not be parsed."""


def parse_plan(spec: str, name: str = "") -> FaultPlan:
    """Parse an inline plan spec (see the module docstring grammar)."""
    seed = 0
    rules: list[FaultRule] = []
    for token in filter(None, (part.strip() for part in spec.split(";"))):
        if token.startswith("seed="):
            seed = int(token[len("seed="):])
            continue
        probability = 1.0
        if ":p=" in token:
            token, _, prob_text = token.rpartition(":p=")
            probability = float(prob_text)
        head, _, match_text = token.partition("@")
        site, sep, action = head.partition("=")
        if not sep or not site or not action:
            raise FaultPlanError(f"bad fault rule {token!r}: expected "
                                 f"site=action[@k=v[&k=v]][:p=PROB]")
        match = []
        for clause in filter(None, match_text.split("&")):
            key, sep, value = clause.partition("=")
            if not sep or not key:
                raise FaultPlanError(f"bad match clause {clause!r} in "
                                     f"fault rule {token!r}")
            match.append((key, value))
        rules.append(FaultRule(site=site, action=action,
                               match=tuple(match), probability=probability))
    return FaultPlan(name=name or spec, seed=seed, rules=tuple(rules))


def resolve_plan(spec: str) -> FaultPlan:
    """A built-in plan by name, else an inline spec parsed."""
    if spec in BUILTIN_PLANS:
        return BUILTIN_PLANS[spec]
    return parse_plan(spec)


_current: Optional[FaultPlan] = None
_env_cache: dict[str, FaultPlan] = {}


def get_faults() -> FaultPlan:
    """The ambient fault plan: ``use_faults`` scope, else ``REPRO_FAULT_PLAN``.

    The environment variable is re-read on every call (a dict lookup) so
    pool workers — which inherit the parent environment — agree with the
    parent without explicit plumbing; parsed plans are cached per spec.
    """
    if _current is not None:
        return _current
    spec = os.environ.get(ENV_VAR, "")
    if not spec:
        return NULL_PLAN
    if spec not in _env_cache:
        try:
            _env_cache[spec] = resolve_plan(spec)
        except (FaultPlanError, ValueError) as exc:
            logger.warning("ignoring unparseable %s=%r: %s",
                           ENV_VAR, spec, exc)
            _env_cache[spec] = NULL_PLAN
    return _env_cache[spec]


@contextmanager
def use_faults(plan: Optional[FaultPlan]) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for the dynamic extent
    (overrides ``REPRO_FAULT_PLAN``; pass ``NULL_PLAN`` to disable)."""
    global _current
    previous = _current
    _current = plan
    try:
        yield plan if plan is not None else NULL_PLAN
    finally:
        _current = previous


def fault_action(site: str, **attrs) -> Optional[str]:
    """Consult the ambient plan at one site; count and trace a hit."""
    plan = get_faults()
    if not plan:
        return None
    action = plan.action_at(site, **attrs)
    if action is not None:
        obs = get_obs()
        if obs.metrics.enabled:
            obs.metrics.count(f"faults.{site}.{action}")
        obs.event("fault.injected", site=site, action=action, **attrs)
        logger.debug("fault plan %s fires %s at %s %s",
                     plan.name, action, site, attrs)
    return action


_FAULT_EXCEPTIONS: dict[str, type[ReproError]] = {
    "timeout": SolverTimeout,
    "scheduling-error": SchedulingError,
    "codegen-error": CodegenError,
    "branch-limit": BranchLimitExceeded,
}


def raise_fault(action: str, site: str, **attrs) -> None:
    """Raise the typed exception an injection action stands for."""
    exc_type = _FAULT_EXCEPTIONS.get(action)
    if exc_type is None:
        raise FaultPlanError(f"fault action {action!r} at site {site!r} "
                             f"has no exception mapping; pick from "
                             f"{sorted(_FAULT_EXCEPTIONS)}")
    detail = ", ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    raise exc_type(f"injected fault at {site} ({detail})")
