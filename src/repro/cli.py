"""Command line interface.

::

    python -m repro compile op.kdl --variant infl --measure
    python -m repro scenarios op.kdl
    python -m repro table1
    python -m repro table2 --limit 6 --networks ResNet50,VGG16
    python -m repro profile BERT --limit 4
    python -m repro verify --networks LSTM
    python -m repro verify --update-goldens
    python -m repro fuzz --budget 30 --seed 7

The kernel file format is documented in :mod:`repro.ir.kparser`.

Observability flags: ``--trace FILE`` writes the structured trace
(``--trace-format chrome`` produces Chrome trace-event JSON openable in
Perfetto), ``--metrics FILE`` writes the merged metrics registry as JSON.
Both files are written atomically (temp file + ``os.replace``) and are
flushed even when evaluation raises, so partial runs stay debuggable.
Progress goes through the ``repro`` logger: ``-v`` for debug output,
``-q`` to silence progress.
"""

from __future__ import annotations

import argparse
import datetime as _datetime
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.eval import (
    EvaluationConfig,
    evaluate_all,
    evaluate_network,
    format_table1,
    format_table2,
)
from repro.eval.checkpoint import CheckpointError, EvalCheckpoint
from repro.gpu.backend import available_simulators, resolve_simulator
from repro.eval.tables import format_degradation_summary, geomean_speedup
from repro.influence import build_influence_tree, build_scenarios
from repro.ir.kparser import KernelParseError, parse_kernel_file
from repro.obs import (
    atomic_write_json,
    configure_logging,
    format_metrics_report,
    logger,
    use_journal,
)
from repro.obs.analyze import DEFAULT_SIGNIFICANCE, Delta, build_trend, diff_runs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.provenance import format_decision_path
from repro.obs.runtime import Obs, use_obs
from repro.obs.store import (
    RUN_SCHEMA_VERSION,
    RunStore,
    RunStoreError,
    finalize_record,
    new_record,
)
from repro.pipeline import (
    AkgPipeline,
    VARIANTS,
    format_pass_summary,
    merge_contexts,
    merge_metric_dicts,
)
from repro.pipeline.passes import PassContext
from repro.schedule import SchedulerOptions
from repro.solver.backend import available_backends, resolve_backend
from repro.solver.budget import SolveBudget
from repro.verify import VerifyConfig, run_fuzz, run_verify
from repro.workloads import NETWORKS
from repro.workloads.generator import generate_network_suite

TRACE_FORMATS = ("flat", "chrome")


# -- observability export -----------------------------------------------------

# Backwards-compatible alias: the temp-file + ``os.replace`` writer moved to
# :mod:`repro.obs.export` so the trace exporter and the run store share it.
_write_json_atomic = atomic_write_json


def _metrics_payload(merged: dict) -> dict:
    """The ``--metrics`` JSON document: the merged snapshot minus the bulky
    trace keys, plus precomputed histogram percentile summaries."""
    payload = {key: value for key, value in merged.items()
               if key not in ("events", "spans")}
    payload["histogram_summaries"] = {
        name: Histogram.from_dict(entry).summary()
        for name, entry in merged.get("histograms", {}).items()}
    return payload


def _export_observability(args, metric_payloads: list) -> None:
    """Flush ``--trace``/``--metrics`` files from whatever metric snapshots
    exist so far (called from ``finally``: partial runs still export)."""
    trace_path = getattr(args, "trace", "")
    metrics_path = getattr(args, "metrics", "")
    if not trace_path and not metrics_path:
        return
    context = merge_contexts(metric_payloads)
    merged = context.as_dict()
    if trace_path:
        if getattr(args, "trace_format", "flat") == "chrome":
            _write_json_atomic(trace_path, context.chrome_trace())
        else:
            _write_json_atomic(trace_path, merged.get("events", []))
        logger.info("trace written to %s", trace_path)
    if metrics_path:
        _write_json_atomic(metrics_path, _metrics_payload(merged))
        logger.info("metrics written to %s", metrics_path)


# -- the run store ------------------------------------------------------------


def _store_for(args) -> RunStore:
    """The run store an invocation records into (``--runs-dir`` >
    ``$REPRO_RUNS_DIR`` > ``.repro/runs``)."""
    return RunStore(getattr(args, "runs_dir", "") or None)


def _append_run(args, record: dict) -> str:
    """Append one record to the ambient store (best-effort: recording must
    never turn a successful run into a failed one)."""
    if getattr(args, "no_record", False):
        return ""
    try:
        store = _store_for(args)
        run_id = store.append(record)
    except OSError as exc:  # pragma: no cover - disk-full etc.
        logger.warning("could not record run: %s", exc)
        return ""
    logger.info("run %s recorded in %s", run_id, store.root)
    return run_id


def _profile_to_record(profile) -> dict:
    """A lossless rendering of a ``KernelProfile`` for checkpoints (the
    derived quantities — time, DRAM bytes, coalescing — are properties
    recomputed from these fields on restore)."""
    from dataclasses import asdict
    return asdict(profile)


def _profile_from_record(record: dict):
    """Rebuild a ``KernelProfile`` from :func:`_profile_to_record`."""
    from repro.gpu.arch import GpuArch
    from repro.gpu.simulator import KernelProfile
    fields = dict(record)
    arch = GpuArch(**fields.pop("arch"))
    return KernelProfile(arch=arch, **fields)


def _kernel_record(profile) -> dict:
    """The run-store representation of one simulated kernel launch."""
    return {
        "name": profile.name,
        "n_blocks": profile.n_blocks,
        "n_threads_per_block": profile.n_threads_per_block,
        "dram_transactions": profile.dram_transactions,
        "dram_bytes": profile.dram_bytes,
        "coalescing_efficiency": profile.coalescing_efficiency,
        "scalar_issues": profile.scalar_issues,
        "vector_issues": profile.vector_issues,
        "time": profile.time,
    }


# -- subcommands --------------------------------------------------------------


def _cmd_compile(args) -> int:
    kernel = parse_kernel_file(args.file)
    options = SchedulerOptions(solver=args.solver) if args.solver else None
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads,
                           scheduler_options=options,
                           sim=args.sim)
    variants = VARIANTS if args.all_variants else (args.variant,)
    started = time.monotonic()
    record = new_record("compile", config={
        "file": args.file, "variants": ",".join(variants),
        "solver": args.solver, "sim": args.sim,
        "max_threads": args.max_threads,
        "sample_blocks": args.sample_blocks})
    operator = {"name": kernel.name, "op_class": "", "times": {},
                "launches": {}, "schedule_hashes": {}, "status": "ok",
                "influenced": False, "vectorized": False}
    baseline = None
    try:
        for variant in variants:
            compiled = pipeline.compile(kernel, variant)
            operator["launches"][variant] = compiled.n_launches
            operator["schedule_hashes"][variant] = compiled.schedule_hash
            if compiled.degradation != "none":
                operator.setdefault("degradation", {})[variant] = \
                    compiled.degradation
                operator["status"] = "degraded"
            if variant == "infl":
                operator["vectorized"] = compiled.vectorized
            print(f"=== variant {variant}: {compiled.n_launches} launch(es), "
                  f"vectorized={compiled.vectorized} ===")
            print(compiled.signature())
            if args.measure:
                timing = pipeline.measure(compiled)
                operator["times"][variant] = timing.time
                if variant == "isl" or baseline is None:
                    baseline = timing.time
                print(f"--- modelled time {timing.time * 1e6:.1f} us, "
                      f"DRAM {timing.dram_bytes / 1e6:.2f} MB, "
                      f"speedup vs first variant "
                      f"{baseline / timing.time:.2f}x ---")
            print()
    except BaseException:
        operator["status"] = "failed"
        raise
    finally:
        record["status"] = operator["status"]
        record["operators"] = [operator]
        finalize_record(record, metrics=pipeline.context.as_dict(),
                        wall_seconds=time.monotonic() - started)
        _append_run(args, record)
    return 0


def _cmd_scenarios(args) -> int:
    kernel = parse_kernel_file(args.file)
    print(f"kernel {kernel.name}, params {kernel.params}")
    print()
    print("Influenced dimension scenarios (Algorithm 2):")
    for name, scenarios in build_scenarios(kernel).items():
        for scenario in scenarios:
            print(f"  {name}: dims={scenario.dims} "
                  f"score={scenario.score:.2f} "
                  f"vector_width={scenario.vector_width}")
    print()
    print("Influence constraint tree:")
    print(build_influence_tree(kernel).pretty())
    return 0


def _cmd_table1(args) -> int:
    print(format_table1())
    if args.metrics:
        # Table I is static metadata; export it as gauges for dashboards.
        gauges = {f"table1.{spec.name}.total_operators": spec.total_operators
                  for spec in NETWORKS.values()}
        gauges["table1.networks"] = len(NETWORKS)
        _write_json_atomic(args.metrics, {"counters": {}, "gauges": gauges,
                                          "histograms": {}})
        logger.info("metrics written to %s", args.metrics)
    return 0


def _cmd_table2(args) -> int:
    networks = args.networks.split(",") if args.networks else list(NETWORKS)
    unknown = [n for n in networks if n not in NETWORKS]
    if unknown:
        logger.error("unknown networks: %s; pick from %s",
                     unknown, list(NETWORKS))
        return 2
    config = EvaluationConfig(
        seed=args.seed,
        limit_per_network=args.limit if args.limit > 0 else None,
        sample_blocks=args.sample_blocks,
        jobs=max(args.jobs, 1),
        trace=bool(args.trace),
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        verify=args.verify,
        solver=args.solver,
        sim=args.sim,
        task_timeout_s=args.task_timeout if args.task_timeout > 0 else None,
        retries=max(args.retries, 0),
        retry_backoff_s=max(args.retry_backoff, 0.0))
    checkpoint = None
    if not args.no_checkpoint:
        checkpoint = EvalCheckpoint.for_eval("table2", networks, config,
                                             root=_store_for(args).root)
        if args.resume is not None:
            checkpoint.use_ref(args.resume)
    started = time.monotonic()
    record = new_record("table2", config={
        "networks": ",".join(networks), "seed": args.seed,
        "limit": args.limit, "jobs": args.jobs, "solver": args.solver,
        "sim": args.sim, "deadline_ms": args.deadline_ms,
        "sample_blocks": args.sample_blocks,
        "task_timeout": args.task_timeout, "retries": args.retries})
    results = []
    completed = False
    try:
        logger.info("evaluating %s...", ", ".join(networks))
        by_network = evaluate_all(config, networks, checkpoint=checkpoint,
                                  resume=args.resume is not None)
        results = [by_network[network] for network in networks]
        completed = True
        print(format_table2(results))
        print(f"\ngeomean speedup (infl over isl): "
              f"{geomean_speedup(results):.2f}x")
        print()
        print(format_degradation_summary(results))
        merged = merge_metric_dicts([r.metrics for r in results if r.metrics])
        if merged.get("passes"):
            print()
            print(format_pass_summary(merged))
    finally:
        # Recorded (and exported) even when evaluation raises: partial runs
        # stay diagnosable, marked by status.  Supervisor interventions
        # (hung-task kills) mark the run degraded even when every retried
        # operator eventually succeeded: the run needed help to finish.
        kills = sum(
            r.metrics.get("counters", {}).get("resilience.supervisor.kills", 0)
            for r in results if r.metrics)
        if sum(r.count_failed for r in results) or not completed:
            record["status"] = "failed" if completed else "error"
        elif sum(r.count_degraded for r in results) or kills:
            record["status"] = "degraded"
        record["operators"] = [dict(op.as_record(), network=r.network)
                               for r in results for op in r.operators
                               if op is not None]
        finalize_record(
            record,
            metrics=merge_metric_dicts(
                [r.metrics for r in results if r.metrics]),
            wall_seconds=time.monotonic() - started)
        _append_run(args, record)
        _export_observability(args, [r.metrics for r in results if r.metrics])
    degraded = sum(r.count_degraded for r in results)
    failed = sum(r.count_failed for r in results)
    drifted = [op for r in results for op in r.operators if op.verify_problems]
    for op in drifted:
        for problem in op.verify_problems:
            logger.error("verify %s: %s", op.name, problem)
    if failed:
        logger.error("%d operator(s) failed to compile; the report above "
                     "is partial", failed)
        return 1
    if degraded and not args.allow_degraded:
        logger.error("%d operator(s) compiled at reduced quality; pass "
                     "--allow-degraded to accept the fallback results",
                     degraded)
        return 1
    if kills and not args.allow_degraded:
        logger.error("the supervisor killed %d hung worker(s) to finish "
                     "this run; pass --allow-degraded to accept it",
                     int(kills))
        return 1
    return 0


def _resolve_network(name: str) -> Optional[str]:
    """Case-insensitive lookup into the Table I network zoo."""
    by_lower = {n.lower(): n for n in NETWORKS}
    return by_lower.get(name.lower())


def _format_kernel_table(profiles: list) -> str:
    """Per-kernel memory-counter table (the nvprof-style view behind
    Tables I-II: DRAM transactions, coalescing efficiency, issue mix)."""
    width = max([len(p.name) for p in profiles] + [6]) + 2
    lines = [
        "per-kernel memory counters:",
        f"  {'kernel':<{width}}{'blocks':>8}{'thr':>6}{'DRAM tx':>12}"
        f"{'DRAM MB':>10}{'coalesce':>10}{'vec issue':>11}{'time us':>10}",
    ]
    for p in profiles:
        issues = p.scalar_issues + p.vector_issues
        vec_share = p.vector_issues / issues if issues else 0.0
        lines.append(
            f"  {p.name:<{width}}{p.n_blocks:>8}{p.n_threads_per_block:>6}"
            f"{p.dram_transactions:>12.0f}{p.dram_bytes / 1e6:>10.2f}"
            f"{p.coalescing_efficiency * 100:>9.1f}%"
            f"{vec_share * 100:>10.1f}%{p.time * 1e6:>10.1f}")
    return "\n".join(lines)


def _cmd_profile(args) -> int:
    network = _resolve_network(args.network)
    if network is None:
        logger.error("unknown network %r; pick from %s",
                     args.network, list(NETWORKS))
        return 2
    options = None
    if args.deadline_ms > 0 or args.solver:
        budget = (SolveBudget(deadline_s=args.deadline_ms / 1000.0)
                  if args.deadline_ms > 0 else None)
        options = SchedulerOptions(budget=budget, solver=args.solver)
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads,
                           scheduler_options=options,
                           trace=bool(args.trace),
                           sim=args.sim)
    baseline_record = None
    if args.baseline:
        try:
            baseline_record = _store_for(args).resolve(args.baseline)
        except RunStoreError as exc:
            logger.error("error: %s", exc)
            return 2
    suite = generate_network_suite(network, seed=args.seed,
                                   limit=args.limit if args.limit > 0 else None)
    checkpoint = None
    stored: dict = {}
    if not args.no_checkpoint:
        checkpoint = EvalCheckpoint("profile", [network], {
            "variant": args.variant, "seed": args.seed, "limit": args.limit,
            "sample_blocks": args.sample_blocks,
            "max_threads": args.max_threads,
            "deadline_ms": args.deadline_ms,
            "solver": resolve_backend(args.solver).name,
            "sim": resolve_simulator(args.sim).name,
        }, root=_store_for(args).root)
        if args.resume is not None:
            checkpoint.use_ref(args.resume)
            stored = checkpoint.stored_records()
    started = time.monotonic()
    record = new_record("profile", config={
        "networks": network, "variant": args.variant, "seed": args.seed,
        "limit": args.limit, "solver": args.solver, "sim": args.sim,
        "deadline_ms": args.deadline_ms, "sample_blocks": args.sample_blocks,
        "max_threads": args.max_threads})
    profiles = []
    operators: list[dict] = []
    metric_dicts: list[dict] = []
    degraded: list[tuple[str, str]] = []
    failed: list[tuple[str, str]] = []
    completed = False
    try:
        for index, (op_class, kernel) in enumerate(suite):
            restored = stored.get(checkpoint.operator_key(kernel)) \
                if stored else None
            if restored is not None and "operator" in restored:
                entry = restored["operator"]
                operators.append(entry)
                profiles.extend(_profile_from_record(k)
                                for k in restored.get("profiles", ()))
                metric_dicts.append(restored.get("metrics") or {})
                if entry.get("status") == "failed":
                    failed.append((kernel.name, entry.get("error", "")))
                elif entry.get("status") == "degraded":
                    level = entry.get("degradation", {}) \
                        .get(args.variant, "?")
                    degraded.append((kernel.name, level))
                logger.info("restored %s (%s) from checkpoint",
                            kernel.name, op_class)
                continue
            logger.info("profiling %s (%s)...", kernel.name, op_class)
            # One metric snapshot per operator — the granularity both the
            # checkpoint and the merged report need.
            pipeline.session.context = PassContext(trace=bool(args.trace))
            entry = {"name": kernel.name, "op_class": op_class,
                     "times": {}, "launches": {}, "schedule_hashes": {},
                     "status": "ok"}
            operators.append(entry)
            op_profiles: list = []
            try:
                compiled = pipeline.compile(kernel, args.variant)
            except ReproError as exc:
                failed.append((kernel.name, f"{type(exc).__name__}: {exc}"))
                entry["status"] = "failed"
                entry["error"] = f"{type(exc).__name__}: {exc}"
                logger.warning("skipping %s: %s", kernel.name, exc)
            else:
                if compiled.degradation != "none":
                    degraded.append((kernel.name, compiled.degradation))
                    entry["status"] = "degraded"
                    entry["degradation"] = {args.variant:
                                            compiled.degradation}
                timing = pipeline.measure(compiled)
                entry["times"][args.variant] = timing.time
                entry["launches"][args.variant] = compiled.n_launches
                entry["schedule_hashes"][args.variant] = \
                    compiled.schedule_hash
                op_profiles = list(timing.profiles)
                profiles.extend(op_profiles)
            metrics = pipeline.context.as_dict()
            metric_dicts.append(metrics)
            if checkpoint is not None:
                checkpoint.record(network, index, kernel, {
                    "operator": entry,
                    "profiles": [_profile_to_record(p) for p in op_profiles],
                    "metrics": metrics})
        completed = True
        merged_context = merge_contexts(metric_dicts)
        backend = resolve_backend(args.solver)
        print(f"profile report — {network}, variant {args.variant}, "
              f"solver {backend.name}, "
              f"simulator {resolve_simulator(args.sim).name}, "
              f"{len(suite)} operator(s), {len(profiles)} kernel launch(es)")
        print()
        print(merged_context.format_summary())
        print()
        print(format_metrics_report(merged_context.obs.metrics))
        print()
        print(_format_kernel_table(profiles))
        print()
        counters = merged_context.counters
        ok = len(suite) - len(degraded) - len(failed)
        print(f"degradation summary: {ok} ok, {len(degraded)} degraded, "
              f"{len(failed)} failed; "
              f"fallbacks={int(counters.get('resilience.fallback', 0))}")
        for name, level in degraded:
            print(f"  {name}: degraded ({level})")
        for name, error in failed:
            print(f"  {name}: FAILED ({error})")
        if baseline_record is not None:
            print()
            print(_render_profile_baseline(baseline_record, profiles))
    finally:
        if failed or not completed:
            record["status"] = "failed" if completed else "error"
        elif degraded:
            record["status"] = "degraded"
        record["operators"] = operators
        record["kernels"] = [_kernel_record(p) for p in profiles]
        if checkpoint is not None and checkpoint.counters:
            metric_dicts.append({"counters": dict(checkpoint.counters)})
        finalize_record(record, metrics=merge_metric_dicts(metric_dicts),
                        wall_seconds=time.monotonic() - started)
        _append_run(args, record)
        _export_observability(args, metric_dicts)
    return 1 if failed else 0


def _render_profile_baseline(baseline: dict, profiles: list) -> str:
    """Per-kernel deltas of the current profile against a stored run
    (``repro profile --baseline RUN``)."""
    before = {k.get("name", ""): k for k in baseline.get("kernels", ())}
    after = {p.name: p for p in profiles}
    lines = [f"deltas vs run {baseline.get('run_id', '?')} "
             f"({baseline.get('command', '?')})"]
    if not before:
        lines.append("  (baseline run recorded no kernels)")
        return "\n".join(lines)
    for name in sorted(set(before) | set(after)):
        old = before.get(name)
        new = after.get(name)
        delta = Delta(name, old.get("time") if old else None,
                      new.time if new else None)
        dram = ""
        if old is not None and new is not None:
            old_tx = old.get("dram_transactions") or 0.0
            if old_tx:
                dram = (f", DRAM tx {old_tx:.0f} -> "
                        f"{new.dram_transactions:.0f} "
                        f"({new.dram_transactions / old_tx:.2f}x)")
        lines.append(f"  {delta.render()}{dram}")
    return "\n".join(lines)


def _cmd_explain(args) -> int:
    """Render the scheduler's decision path for a network's operators."""
    network = _resolve_network(args.network)
    if network is None:
        logger.error("unknown network %r; pick from %s",
                     args.network, list(NETWORKS))
        return 2
    seed, limit, solver = args.seed, args.limit, args.solver
    variant, sim = args.variant, args.sim
    if args.run:
        try:
            stored = _store_for(args).resolve(args.run)
        except RunStoreError as exc:
            logger.error("error: %s", exc)
            return 2
        config = stored.get("config", {})
        seed = int(config.get("seed", seed))
        limit = int(config.get("limit", limit))
        solver = config.get("solver", solver)
        variant = config.get("variant", variant)
        sim = config.get("sim", sim)
        logger.info("explaining with the configuration of run %s",
                    stored.get("run_id"))
    options = SchedulerOptions(solver=solver) if solver else None
    # The schedule cache is disabled: a cache hit would skip scheduling
    # entirely and the journal would have nothing to explain.
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads,
                           scheduler_options=options,
                           enable_cache=False,
                           sim=sim)
    suite = generate_network_suite(network, seed=seed,
                                   limit=limit if limit > 0 else None)
    names = [kernel.name for _, kernel in suite]
    if args.operator:
        suite = [(op_class, kernel) for op_class, kernel in suite
                 if kernel.name == args.operator]
        if not suite:
            logger.error("operator %r not in the %s suite; "
                         "available: %s", args.operator, network, names)
            return 2
    status = 0
    for op_class, kernel in suite:
        print(f"=== {kernel.name} ({op_class}), variant {variant} ===")
        with use_journal() as journal:
            try:
                compiled = pipeline.compile(kernel, variant)
            except ReproError as exc:
                print(f"  compilation FAILED: {type(exc).__name__}: {exc}")
                if len(journal.events):
                    print(format_decision_path(journal.events, indent="  "))
                status = 1
                print()
                continue
        rung = compiled.degradation
        print(f"  degradation: {rung}; "
              f"schedule hash {compiled.schedule_hash}")
        print(format_decision_path(journal.events, indent="  "))
        print()
    return status


# -- cross-run analytics (`repro obs ...`) ------------------------------------


def _format_started(started_at: float) -> str:
    stamp = _datetime.datetime.fromtimestamp(started_at,
                                             tz=_datetime.timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%S")


def _no_runs(store: RunStore) -> bool:
    """True (after printing a friendly notice) when the store is missing
    or empty — `repro obs ...` against a fresh checkout is not an error."""
    if store.records():
        return False
    print(f"no runs recorded in {store.root}")
    return True


def _cmd_obs_list(args) -> int:
    store = _store_for(args)
    if _no_runs(store):
        return 0
    records = store.records()
    for record in records:
        config = record.get("config", {})
        scope = config.get("networks") or config.get("file") \
            or config.get("source") or ""
        print(f"{record.get('run_id', '?'):<18}"
              f"{record.get('command', '?'):<10}"
              f"{_format_started(record.get('started_at', 0.0)):<21}"
              f"{record.get('status', '?'):<10}{scope}")
    return 0


def _cmd_obs_show(args) -> int:
    store = _store_for(args)
    if _no_runs(store):
        return 0
    record = store.resolve(args.run)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_obs_diff(args) -> int:
    store = _store_for(args)
    diff = diff_runs(store.resolve(args.run_a), store.resolve(args.run_b),
                     threshold=args.threshold)
    print(diff.render())
    if args.fail_on_regression:
        regressions = diff.regressions()
        if regressions:
            logger.error("%d metric(s) regressed beyond %.0f%%",
                         len(regressions), args.threshold * 100)
            return 1
    return 0


def _cmd_obs_trend(args) -> int:
    store = _store_for(args)
    if _no_runs(store):
        return 0
    report = build_trend(store.records(), match=args.match,
                         threshold=args.threshold)
    print(report.render())
    if args.fail_on_regression and report.regressions():
        logger.error("%d series regressed beyond %.0f%%",
                     len(report.regressions()), args.threshold * 100)
        return 1
    return 0


def _cmd_obs_bench_append(args) -> int:
    """Ingest a pytest-benchmark JSON file as one run record.

    ``started_at`` comes from the file's own timestamp (not the ingestion
    time), so re-ingesting the same file is idempotent: the record is
    byte-identical and content addressing dedups it.  Prints the run id.
    """
    with open(args.file) as handle:
        payload = json.load(handle)
    stamp = _datetime.datetime.fromisoformat(payload["datetime"])
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=_datetime.timezone.utc)
    record = {
        "schema": RUN_SCHEMA_VERSION,
        "command": "bench",
        "started_at": stamp.timestamp(),
        "pid": 0,
        "status": "ok",
        "config": {"source": args.source or os.path.basename(args.file)},
        "benchmarks": {
            bench["fullname"]: bench["stats"]["mean"]
            for bench in payload.get("benchmarks", ())},
    }
    store = _store_for(args)
    run_id = store.append(record)
    logger.info("benchmark run recorded in %s", store.root)
    print(run_id)
    return 0


def _cmd_verify(args) -> int:
    networks = tuple(args.networks.split(",")) if args.networks else ()
    unknown = [n for n in networks if n not in NETWORKS]
    if unknown:
        logger.error("unknown networks: %s; pick from %s",
                     unknown, list(NETWORKS))
        return 2
    config = VerifyConfig(
        networks=networks,
        seed=args.seed,
        limit=args.limit,
        sample_blocks=args.sample_blocks,
        max_threads=args.max_threads,
        sim=args.sim,
        update_goldens=args.update_goldens,
        goldens_dir=args.goldens_dir or None,
        corpus_dir=args.corpus_dir or None,
        check_goldens=not args.no_goldens,
        check_families=not args.no_families,
        check_oracle=not args.no_oracle,
        check_metamorphic=not args.no_metamorphic,
        check_corpus=not args.no_corpus)
    obs = Obs(metrics=MetricsRegistry())
    with use_obs(obs):
        report = run_verify(config)
    print(report.render())
    if args.metrics:
        _write_json_atomic(args.metrics, obs.metrics.as_dict())
        logger.info("metrics written to %s", args.metrics)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    obs = Obs(metrics=MetricsRegistry())
    with use_obs(obs):
        report = run_fuzz(
            seed=args.seed,
            budget_s=args.budget,
            cases=args.cases if args.cases > 0 else None,
            corpus_dir=args.corpus_dir or None,
            write_corpus=not args.no_corpus)
    print(report.render())
    if args.metrics:
        _write_json_atomic(args.metrics, obs.metrics.as_dict())
        logger.info("metrics written to %s", args.metrics)
    if report.failures:
        logger.error("%d failing case(s); reproducers %s", len(report.failures),
                     "written to the corpus" if not args.no_corpus
                     else "not written (--no-corpus)")
        return 1
    return 0


# -- the parser ---------------------------------------------------------------


def _add_solver_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--solver", default="", metavar="NAME",
                        help="solver backend (registered: "
                             f"{', '.join(available_backends())}; "
                             "default: $REPRO_SOLVER or 'simplex')")


def _add_sim_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--sim", default="", metavar="NAME",
                        help="simulator backend (registered: "
                             f"{', '.join(available_simulators())}; "
                             "default: $REPRO_SIM or 'fast')")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="", metavar="FILE",
                        help="write the structured trace log as JSON")
    parser.add_argument("--trace-format", choices=TRACE_FORMATS,
                        default="flat",
                        help="flat event list, or Chrome trace-event JSON "
                             "for chrome://tracing / Perfetto")
    parser.add_argument("--metrics", default="", metavar="FILE",
                        help="write merged metrics (counters, gauges, "
                             "histograms) as JSON")


def _add_store_arguments(parser: argparse.ArgumentParser,
                         recording: bool = True) -> None:
    parser.add_argument("--runs-dir", default="", metavar="DIR",
                        help="run-store directory (default: $REPRO_RUNS_DIR "
                             "or .repro/runs)")
    if recording:
        parser.add_argument("--no-record", action="store_true",
                            help="do not append a run record to the store")


def build_arg_parser() -> argparse.ArgumentParser:
    """The argparse parser for the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polyhedral scheduling constraint injection (CGO 2022) "
                    "reproduction")
    parser.add_argument("--verbose", "-v", action="count", default=0,
                        help="debug-level progress output")
    parser.add_argument("--quiet", "-q", action="count", default=0,
                        help="suppress progress output (warnings only)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a kernel file")
    p.add_argument("file")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--all-variants", action="store_true")
    p.add_argument("--measure", action="store_true",
                   help="run the GPU model and print times")
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    _add_solver_argument(p)
    _add_sim_argument(p)
    _add_store_arguments(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("scenarios",
                       help="print Algorithm 2 scenarios and the tree")
    p.add_argument("file")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("table1", help="print Table I")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write network metadata gauges as JSON")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table II")
    p.add_argument("--limit", type=int, default=6,
                   help="operators per network (0 = the paper's full counts)")
    p.add_argument("--networks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for suite evaluation (1 = serial)")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="wall-clock solve budget per scheduling attempt "
                        "(0 = unlimited)")
    p.add_argument("--verify", action="store_true",
                   help="run the differential oracle on every operator; "
                        "semantic drift marks it failed")
    p.add_argument("--allow-degraded", action="store_true",
                   help="exit 0 even when operators compiled at reduced "
                        "quality via the degradation ladder (or needed "
                        "supervisor intervention)")
    p.add_argument("--task-timeout", type=float, default=0.0,
                   metavar="SECONDS",
                   help="kill a worker whose task heartbeat is older than "
                        "this (0 = derive from --deadline-ms with headroom, "
                        "or disable when no deadline is set)")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per task lost to a hung or dead worker "
                        "(deterministic exponential backoff)")
    p.add_argument("--retry-backoff", type=float, default=0.1,
                   metavar="SECONDS",
                   help="base backoff before retry N: backoff * 2**(N-1)")
    p.add_argument("--resume", nargs="?", const="auto", default=None,
                   metavar="CKPT",
                   help="reload completed operators from the checkpoint "
                        "(bare: the one this configuration derives; or a "
                        "checkpoint-id prefix) and evaluate the remainder")
    p.add_argument("--no-checkpoint", action="store_true",
                   help="do not append per-operator checkpoint records")
    _add_solver_argument(p)
    _add_sim_argument(p)
    _add_obs_arguments(p)
    _add_store_arguments(p)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("profile",
                       help="compile one network and print a metrics report "
                            "(pass table, solver histograms, per-kernel "
                            "memory counters)")
    p.add_argument("network", help="a Table I network (case-insensitive)")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--limit", type=int, default=4,
                   help="operators to profile (0 = the full suite)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="wall-clock solve budget per scheduling attempt "
                        "(0 = unlimited)")
    p.add_argument("--baseline", default="", metavar="RUN",
                   help="print per-kernel deltas against a stored run "
                        "(id, unique prefix, or latest[~N])")
    p.add_argument("--resume", nargs="?", const="auto", default=None,
                   metavar="CKPT",
                   help="reload completed operators from the checkpoint "
                        "(bare: the one this configuration derives; or a "
                        "checkpoint-id prefix) and profile the remainder")
    p.add_argument("--no-checkpoint", action="store_true",
                   help="do not append per-operator checkpoint records")
    _add_solver_argument(p)
    _add_sim_argument(p)
    _add_obs_arguments(p)
    _add_store_arguments(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("explain",
                       help="render the scheduler decision path: scenarios "
                            "considered with simulated costs, the injected "
                            "constraint per dimension, fallback activations")
    p.add_argument("network", help="a Table I network (case-insensitive)")
    p.add_argument("--operator", default="", metavar="NAME",
                   help="explain only this operator (default: whole suite)")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=4,
                   help="operators to explain (0 = the full suite)")
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    p.add_argument("--run", default="", metavar="RUN",
                   help="take seed/limit/solver/variant from a stored run")
    _add_solver_argument(p)
    _add_sim_argument(p)
    _add_store_arguments(p, recording=False)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("obs",
                       help="cross-run analytics over the run store")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser("list", help="list stored runs")
    _add_store_arguments(q, recording=False)
    q.set_defaults(func=_cmd_obs_list)

    q = obs_sub.add_parser("show", help="print one stored run as JSON")
    q.add_argument("run", help="run id, unique prefix, or latest[~N]")
    _add_store_arguments(q, recording=False)
    q.set_defaults(func=_cmd_obs_show)

    q = obs_sub.add_parser("diff",
                           help="metric/timing deltas and schedule-hash "
                                "changes between two stored runs")
    q.add_argument("run_a", help="run id, unique prefix, or latest[~N]")
    q.add_argument("run_b", help="run id, unique prefix, or latest[~N]")
    q.add_argument("--threshold", type=float, default=DEFAULT_SIGNIFICANCE,
                   help="relative change below which a timing delta is "
                        "noise (default: %(default)s)")
    q.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when run_b is slower than run_a beyond "
                        "the threshold")
    _add_store_arguments(q, recording=False)
    q.set_defaults(func=_cmd_obs_diff)

    q = obs_sub.add_parser("trend",
                           help="per-kernel time series across stored runs, "
                                "flagging regressions")
    q.add_argument("--match", default="",
                   help="only series whose name contains this substring")
    q.add_argument("--threshold", type=float, default=DEFAULT_SIGNIFICANCE,
                   help="regression threshold vs the best previous value")
    q.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when any series regressed")
    _add_store_arguments(q, recording=False)
    q.set_defaults(func=_cmd_obs_trend)

    q = obs_sub.add_parser("bench-append",
                           help="ingest a pytest-benchmark JSON file as a "
                                "run record (idempotent; prints the run id)")
    q.add_argument("file", help="pytest-benchmark --benchmark-json output")
    q.add_argument("--source", default="",
                   help="label recorded as the run's config.source")
    _add_store_arguments(q, recording=False)
    q.set_defaults(func=_cmd_obs_bench_append)

    p = sub.add_parser("verify",
                       help="check golden schedules, the cross-variant "
                            "oracle, metamorphic relations and the fuzz "
                            "corpus")
    p.add_argument("--networks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=2,
                   help="production-scale operators per network")
    p.add_argument("--sample-blocks", type=int, default=2)
    p.add_argument("--max-threads", type=int, default=256)
    p.add_argument("--update-goldens", action="store_true",
                   help="re-bless the golden files instead of checking them")
    p.add_argument("--goldens-dir", default="",
                   help="override the goldens directory (tests/goldens)")
    p.add_argument("--corpus-dir", default="",
                   help="override the corpus directory (tests/corpus)")
    p.add_argument("--no-goldens", action="store_true")
    p.add_argument("--no-families", action="store_true",
                   help="skip the per-operator-family goldens")
    p.add_argument("--no-oracle", action="store_true")
    p.add_argument("--no-metamorphic", action="store_true")
    p.add_argument("--no-corpus", action="store_true")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write verify.* counters as JSON")
    _add_sim_argument(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("fuzz",
                       help="deterministic differential fuzzing; failing "
                            "cases are minimized into tests/corpus")
    p.add_argument("--budget", type=float, default=30.0,
                   help="nominal seconds (converted to a deterministic "
                        "case count)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cases", type=int, default=0,
                   help="exact case count (overrides --budget)")
    p.add_argument("--corpus-dir", default="",
                   help="override the corpus directory (tests/corpus)")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not write reproducer files")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write verify.fuzz.* counters as JSON")
    p.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        resolve_backend(getattr(args, "solver", ""))  # fail fast, clean message
        resolve_simulator(getattr(args, "sim", ""))
    except ValueError as exc:
        logger.error("error: %s", exc)
        return 2
    try:
        code = args.func(args)
        # Flush inside the try: a closed pipe often only surfaces at
        # flush time, and it must land in the BrokenPipeError arm below
        # (silent 141) rather than in the interpreter's shutdown hook
        # (traceback + exit 120).  Covers every subcommand, `obs` and
        # `explain` included.
        sys.stdout.flush()
        return code
    except KernelParseError as exc:
        logger.error("parse error: %s", exc)
        return 2
    except FileNotFoundError as exc:
        logger.error("error: %s", exc)
        return 2
    except RunStoreError as exc:
        logger.error("error: %s", exc)
        return 2
    except CheckpointError as exc:
        logger.error("error: %s", exc)
        return 2
    except ReproError as exc:
        logger.error("%s: %s", type(exc).__name__, exc)
        return 1
    except BrokenPipeError:
        # Reader closed early (e.g. `repro obs trend | head`); the POSIX
        # convention is a silent 141, not a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
