"""Command line interface.

::

    python -m repro compile op.kdl --variant infl --measure
    python -m repro scenarios op.kdl
    python -m repro table1
    python -m repro table2 --limit 6 --networks ResNet50,VGG16

The kernel file format is documented in :mod:`repro.ir.kparser`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.eval import (
    EvaluationConfig,
    evaluate_network,
    format_table1,
    format_table2,
)
from repro.eval.tables import geomean_speedup
from repro.influence import build_influence_tree, build_scenarios
from repro.ir.kparser import KernelParseError, parse_kernel_file
from repro.pipeline import (
    AkgPipeline,
    VARIANTS,
    format_pass_summary,
    merge_metric_dicts,
)
from repro.workloads import NETWORKS


def _cmd_compile(args) -> int:
    kernel = parse_kernel_file(args.file)
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads)
    variants = VARIANTS if args.all_variants else (args.variant,)
    baseline = None
    for variant in variants:
        compiled = pipeline.compile(kernel, variant)
        print(f"=== variant {variant}: {compiled.n_launches} launch(es), "
              f"vectorized={compiled.vectorized} ===")
        print(compiled.signature())
        if args.measure:
            timing = pipeline.measure(compiled)
            if variant == "isl" or baseline is None:
                baseline = timing.time
            print(f"--- modelled time {timing.time * 1e6:.1f} us, "
                  f"DRAM {timing.dram_bytes / 1e6:.2f} MB, "
                  f"speedup vs first variant "
                  f"{baseline / timing.time:.2f}x ---")
        print()
    return 0


def _cmd_scenarios(args) -> int:
    kernel = parse_kernel_file(args.file)
    print(f"kernel {kernel.name}, params {kernel.params}")
    print()
    print("Influenced dimension scenarios (Algorithm 2):")
    for name, scenarios in build_scenarios(kernel).items():
        for scenario in scenarios:
            print(f"  {name}: dims={scenario.dims} "
                  f"score={scenario.score:.2f} "
                  f"vector_width={scenario.vector_width}")
    print()
    print("Influence constraint tree:")
    print(build_influence_tree(kernel).pretty())
    return 0


def _cmd_table1(args) -> int:
    print(format_table1())
    return 0


def _cmd_table2(args) -> int:
    networks = args.networks.split(",") if args.networks else list(NETWORKS)
    unknown = [n for n in networks if n not in NETWORKS]
    if unknown:
        print(f"unknown networks: {unknown}; pick from {list(NETWORKS)}",
              file=sys.stderr)
        return 2
    config = EvaluationConfig(
        seed=args.seed,
        limit_per_network=args.limit if args.limit > 0 else None,
        sample_blocks=args.sample_blocks,
        jobs=max(args.jobs, 1),
        trace=bool(args.trace))
    results = []
    for network in networks:
        print(f"evaluating {network}...", file=sys.stderr)
        results.append(evaluate_network(network, config))
    print(format_table2(results))
    print(f"\ngeomean speedup (infl over isl): "
          f"{geomean_speedup(results):.2f}x")
    merged = merge_metric_dicts([r.metrics for r in results if r.metrics])
    if merged.get("passes"):
        print()
        print(format_pass_summary(merged))
    if args.trace:
        with open(args.trace, "w") as handle:
            json.dump(merged.get("events", []), handle, indent=2)
        print(f"pass trace written to {args.trace}", file=sys.stderr)
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    """The argparse parser for the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polyhedral scheduling constraint injection (CGO 2022) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a kernel file")
    p.add_argument("file")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--all-variants", action="store_true")
    p.add_argument("--measure", action="store_true",
                   help="run the GPU model and print times")
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("scenarios",
                       help="print Algorithm 2 scenarios and the tree")
    p.add_argument("file")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("table1", help="print Table I")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table II")
    p.add_argument("--limit", type=int, default=6,
                   help="operators per network (0 = the paper's full counts)")
    p.add_argument("--networks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for suite evaluation (1 = serial)")
    p.add_argument("--trace", default="", metavar="FILE",
                   help="write the structured pass-trace log as JSON")
    p.set_defaults(func=_cmd_table2)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KernelParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
