"""Command line interface.

::

    python -m repro compile op.kdl --variant infl --measure
    python -m repro scenarios op.kdl
    python -m repro table1
    python -m repro table2 --limit 6 --networks ResNet50,VGG16
    python -m repro profile BERT --limit 4
    python -m repro verify --networks LSTM
    python -m repro verify --update-goldens
    python -m repro fuzz --budget 30 --seed 7

The kernel file format is documented in :mod:`repro.ir.kparser`.

Observability flags: ``--trace FILE`` writes the structured trace
(``--trace-format chrome`` produces Chrome trace-event JSON openable in
Perfetto), ``--metrics FILE`` writes the merged metrics registry as JSON.
Both files are written atomically (temp file + ``os.replace``) and are
flushed even when evaluation raises, so partial runs stay debuggable.
Progress goes through the ``repro`` logger: ``-v`` for debug output,
``-q`` to silence progress.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.eval import (
    EvaluationConfig,
    evaluate_network,
    format_table1,
    format_table2,
)
from repro.eval.tables import format_degradation_summary, geomean_speedup
from repro.influence import build_influence_tree, build_scenarios
from repro.ir.kparser import KernelParseError, parse_kernel_file
from repro.obs import configure_logging, format_metrics_report, logger
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.runtime import Obs, use_obs
from repro.pipeline import (
    AkgPipeline,
    VARIANTS,
    format_pass_summary,
    merge_contexts,
    merge_metric_dicts,
)
from repro.schedule import SchedulerOptions
from repro.solver.backend import available_backends, resolve_backend
from repro.solver.budget import SolveBudget
from repro.verify import VerifyConfig, run_fuzz, run_verify
from repro.workloads import NETWORKS
from repro.workloads.generator import generate_network_suite

TRACE_FORMATS = ("flat", "chrome")


# -- observability export -----------------------------------------------------


def _write_json_atomic(path: str, payload) -> None:
    """Write JSON via a sibling temp file + ``os.replace`` so readers never
    observe a half-written file."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp",
                                    prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _metrics_payload(merged: dict) -> dict:
    """The ``--metrics`` JSON document: the merged snapshot minus the bulky
    trace keys, plus precomputed histogram percentile summaries."""
    payload = {key: value for key, value in merged.items()
               if key not in ("events", "spans")}
    payload["histogram_summaries"] = {
        name: Histogram.from_dict(entry).summary()
        for name, entry in merged.get("histograms", {}).items()}
    return payload


def _export_observability(args, metric_payloads: list) -> None:
    """Flush ``--trace``/``--metrics`` files from whatever metric snapshots
    exist so far (called from ``finally``: partial runs still export)."""
    trace_path = getattr(args, "trace", "")
    metrics_path = getattr(args, "metrics", "")
    if not trace_path and not metrics_path:
        return
    context = merge_contexts(metric_payloads)
    merged = context.as_dict()
    if trace_path:
        if getattr(args, "trace_format", "flat") == "chrome":
            _write_json_atomic(trace_path, context.chrome_trace())
        else:
            _write_json_atomic(trace_path, merged.get("events", []))
        logger.info("trace written to %s", trace_path)
    if metrics_path:
        _write_json_atomic(metrics_path, _metrics_payload(merged))
        logger.info("metrics written to %s", metrics_path)


# -- subcommands --------------------------------------------------------------


def _cmd_compile(args) -> int:
    kernel = parse_kernel_file(args.file)
    options = SchedulerOptions(solver=args.solver) if args.solver else None
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads,
                           scheduler_options=options)
    variants = VARIANTS if args.all_variants else (args.variant,)
    baseline = None
    for variant in variants:
        compiled = pipeline.compile(kernel, variant)
        print(f"=== variant {variant}: {compiled.n_launches} launch(es), "
              f"vectorized={compiled.vectorized} ===")
        print(compiled.signature())
        if args.measure:
            timing = pipeline.measure(compiled)
            if variant == "isl" or baseline is None:
                baseline = timing.time
            print(f"--- modelled time {timing.time * 1e6:.1f} us, "
                  f"DRAM {timing.dram_bytes / 1e6:.2f} MB, "
                  f"speedup vs first variant "
                  f"{baseline / timing.time:.2f}x ---")
        print()
    return 0


def _cmd_scenarios(args) -> int:
    kernel = parse_kernel_file(args.file)
    print(f"kernel {kernel.name}, params {kernel.params}")
    print()
    print("Influenced dimension scenarios (Algorithm 2):")
    for name, scenarios in build_scenarios(kernel).items():
        for scenario in scenarios:
            print(f"  {name}: dims={scenario.dims} "
                  f"score={scenario.score:.2f} "
                  f"vector_width={scenario.vector_width}")
    print()
    print("Influence constraint tree:")
    print(build_influence_tree(kernel).pretty())
    return 0


def _cmd_table1(args) -> int:
    print(format_table1())
    if args.metrics:
        # Table I is static metadata; export it as gauges for dashboards.
        gauges = {f"table1.{spec.name}.total_operators": spec.total_operators
                  for spec in NETWORKS.values()}
        gauges["table1.networks"] = len(NETWORKS)
        _write_json_atomic(args.metrics, {"counters": {}, "gauges": gauges,
                                          "histograms": {}})
        logger.info("metrics written to %s", args.metrics)
    return 0


def _cmd_table2(args) -> int:
    networks = args.networks.split(",") if args.networks else list(NETWORKS)
    unknown = [n for n in networks if n not in NETWORKS]
    if unknown:
        logger.error("unknown networks: %s; pick from %s",
                     unknown, list(NETWORKS))
        return 2
    config = EvaluationConfig(
        seed=args.seed,
        limit_per_network=args.limit if args.limit > 0 else None,
        sample_blocks=args.sample_blocks,
        jobs=max(args.jobs, 1),
        trace=bool(args.trace),
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        verify=args.verify,
        solver=args.solver)
    results = []
    try:
        for network in networks:
            logger.info("evaluating %s...", network)
            results.append(evaluate_network(network, config))
        print(format_table2(results))
        print(f"\ngeomean speedup (infl over isl): "
              f"{geomean_speedup(results):.2f}x")
        print()
        print(format_degradation_summary(results))
        merged = merge_metric_dicts([r.metrics for r in results if r.metrics])
        if merged.get("passes"):
            print()
            print(format_pass_summary(merged))
    finally:
        _export_observability(args, [r.metrics for r in results if r.metrics])
    degraded = sum(r.count_degraded for r in results)
    failed = sum(r.count_failed for r in results)
    drifted = [op for r in results for op in r.operators if op.verify_problems]
    for op in drifted:
        for problem in op.verify_problems:
            logger.error("verify %s: %s", op.name, problem)
    if failed:
        logger.error("%d operator(s) failed to compile; the report above "
                     "is partial", failed)
        return 1
    if degraded and not args.allow_degraded:
        logger.error("%d operator(s) compiled at reduced quality; pass "
                     "--allow-degraded to accept the fallback results",
                     degraded)
        return 1
    return 0


def _resolve_network(name: str) -> Optional[str]:
    """Case-insensitive lookup into the Table I network zoo."""
    by_lower = {n.lower(): n for n in NETWORKS}
    return by_lower.get(name.lower())


def _format_kernel_table(profiles: list) -> str:
    """Per-kernel memory-counter table (the nvprof-style view behind
    Tables I-II: DRAM transactions, coalescing efficiency, issue mix)."""
    width = max([len(p.name) for p in profiles] + [6]) + 2
    lines = [
        "per-kernel memory counters:",
        f"  {'kernel':<{width}}{'blocks':>8}{'thr':>6}{'DRAM tx':>12}"
        f"{'DRAM MB':>10}{'coalesce':>10}{'vec issue':>11}{'time us':>10}",
    ]
    for p in profiles:
        issues = p.scalar_issues + p.vector_issues
        vec_share = p.vector_issues / issues if issues else 0.0
        lines.append(
            f"  {p.name:<{width}}{p.n_blocks:>8}{p.n_threads_per_block:>6}"
            f"{p.dram_transactions:>12.0f}{p.dram_bytes / 1e6:>10.2f}"
            f"{p.coalescing_efficiency * 100:>9.1f}%"
            f"{vec_share * 100:>10.1f}%{p.time * 1e6:>10.1f}")
    return "\n".join(lines)


def _cmd_profile(args) -> int:
    network = _resolve_network(args.network)
    if network is None:
        logger.error("unknown network %r; pick from %s",
                     args.network, list(NETWORKS))
        return 2
    options = None
    if args.deadline_ms > 0 or args.solver:
        budget = (SolveBudget(deadline_s=args.deadline_ms / 1000.0)
                  if args.deadline_ms > 0 else None)
        options = SchedulerOptions(budget=budget, solver=args.solver)
    pipeline = AkgPipeline(sample_blocks=args.sample_blocks,
                           max_threads=args.max_threads,
                           scheduler_options=options,
                           trace=bool(args.trace))
    suite = generate_network_suite(network, seed=args.seed,
                                   limit=args.limit if args.limit > 0 else None)
    profiles = []
    degraded: list[tuple[str, str]] = []
    failed: list[tuple[str, str]] = []
    try:
        for op_class, kernel in suite:
            logger.info("profiling %s (%s)...", kernel.name, op_class)
            try:
                compiled = pipeline.compile(kernel, args.variant)
            except ReproError as exc:
                failed.append((kernel.name, f"{type(exc).__name__}: {exc}"))
                logger.warning("skipping %s: %s", kernel.name, exc)
                continue
            if compiled.degradation != "none":
                degraded.append((kernel.name, compiled.degradation))
            timing = pipeline.measure(compiled)
            profiles.extend(timing.profiles)
        backend = resolve_backend(args.solver)
        print(f"profile report — {network}, variant {args.variant}, "
              f"solver {backend.name}, "
              f"{len(suite)} operator(s), {len(profiles)} kernel launch(es)")
        print()
        print(pipeline.context.format_summary())
        print()
        print(format_metrics_report(pipeline.context.obs.metrics))
        print()
        print(_format_kernel_table(profiles))
        print()
        counters = pipeline.context.counters
        ok = len(suite) - len(degraded) - len(failed)
        print(f"degradation summary: {ok} ok, {len(degraded)} degraded, "
              f"{len(failed)} failed; "
              f"fallbacks={int(counters.get('resilience.fallback', 0))}")
        for name, level in degraded:
            print(f"  {name}: degraded ({level})")
        for name, error in failed:
            print(f"  {name}: FAILED ({error})")
    finally:
        _export_observability(args, [pipeline.context.as_dict()])
    return 1 if failed else 0


def _cmd_verify(args) -> int:
    networks = tuple(args.networks.split(",")) if args.networks else ()
    unknown = [n for n in networks if n not in NETWORKS]
    if unknown:
        logger.error("unknown networks: %s; pick from %s",
                     unknown, list(NETWORKS))
        return 2
    config = VerifyConfig(
        networks=networks,
        seed=args.seed,
        limit=args.limit,
        sample_blocks=args.sample_blocks,
        max_threads=args.max_threads,
        update_goldens=args.update_goldens,
        goldens_dir=args.goldens_dir or None,
        corpus_dir=args.corpus_dir or None,
        check_goldens=not args.no_goldens,
        check_oracle=not args.no_oracle,
        check_metamorphic=not args.no_metamorphic,
        check_corpus=not args.no_corpus)
    obs = Obs(metrics=MetricsRegistry())
    with use_obs(obs):
        report = run_verify(config)
    print(report.render())
    if args.metrics:
        _write_json_atomic(args.metrics, obs.metrics.as_dict())
        logger.info("metrics written to %s", args.metrics)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    obs = Obs(metrics=MetricsRegistry())
    with use_obs(obs):
        report = run_fuzz(
            seed=args.seed,
            budget_s=args.budget,
            cases=args.cases if args.cases > 0 else None,
            corpus_dir=args.corpus_dir or None,
            write_corpus=not args.no_corpus)
    print(report.render())
    if args.metrics:
        _write_json_atomic(args.metrics, obs.metrics.as_dict())
        logger.info("metrics written to %s", args.metrics)
    if report.failures:
        logger.error("%d failing case(s); reproducers %s", len(report.failures),
                     "written to the corpus" if not args.no_corpus
                     else "not written (--no-corpus)")
        return 1
    return 0


# -- the parser ---------------------------------------------------------------


def _add_solver_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--solver", default="", metavar="NAME",
                        help="solver backend (registered: "
                             f"{', '.join(available_backends())}; "
                             "default: $REPRO_SOLVER or 'simplex')")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default="", metavar="FILE",
                        help="write the structured trace log as JSON")
    parser.add_argument("--trace-format", choices=TRACE_FORMATS,
                        default="flat",
                        help="flat event list, or Chrome trace-event JSON "
                             "for chrome://tracing / Perfetto")
    parser.add_argument("--metrics", default="", metavar="FILE",
                        help="write merged metrics (counters, gauges, "
                             "histograms) as JSON")


def build_arg_parser() -> argparse.ArgumentParser:
    """The argparse parser for the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polyhedral scheduling constraint injection (CGO 2022) "
                    "reproduction")
    parser.add_argument("--verbose", "-v", action="count", default=0,
                        help="debug-level progress output")
    parser.add_argument("--quiet", "-q", action="count", default=0,
                        help="suppress progress output (warnings only)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a kernel file")
    p.add_argument("file")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--all-variants", action="store_true")
    p.add_argument("--measure", action="store_true",
                   help="run the GPU model and print times")
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    _add_solver_argument(p)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("scenarios",
                       help="print Algorithm 2 scenarios and the tree")
    p.add_argument("file")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("table1", help="print Table I")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write network metadata gauges as JSON")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table II")
    p.add_argument("--limit", type=int, default=6,
                   help="operators per network (0 = the paper's full counts)")
    p.add_argument("--networks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for suite evaluation (1 = serial)")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="wall-clock solve budget per scheduling attempt "
                        "(0 = unlimited)")
    p.add_argument("--verify", action="store_true",
                   help="run the differential oracle on every operator; "
                        "semantic drift marks it failed")
    p.add_argument("--allow-degraded", action="store_true",
                   help="exit 0 even when operators compiled at reduced "
                        "quality via the degradation ladder")
    _add_solver_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("profile",
                       help="compile one network and print a metrics report "
                            "(pass table, solver histograms, per-kernel "
                            "memory counters)")
    p.add_argument("network", help="a Table I network (case-insensitive)")
    p.add_argument("--variant", choices=VARIANTS, default="infl")
    p.add_argument("--limit", type=int, default=4,
                   help="operators to profile (0 = the full suite)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sample-blocks", type=int, default=8)
    p.add_argument("--max-threads", type=int, default=256)
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="wall-clock solve budget per scheduling attempt "
                        "(0 = unlimited)")
    _add_solver_argument(p)
    _add_obs_arguments(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("verify",
                       help="check golden schedules, the cross-variant "
                            "oracle, metamorphic relations and the fuzz "
                            "corpus")
    p.add_argument("--networks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--limit", type=int, default=2,
                   help="production-scale operators per network")
    p.add_argument("--sample-blocks", type=int, default=2)
    p.add_argument("--max-threads", type=int, default=256)
    p.add_argument("--update-goldens", action="store_true",
                   help="re-bless the golden files instead of checking them")
    p.add_argument("--goldens-dir", default="",
                   help="override the goldens directory (tests/goldens)")
    p.add_argument("--corpus-dir", default="",
                   help="override the corpus directory (tests/corpus)")
    p.add_argument("--no-goldens", action="store_true")
    p.add_argument("--no-oracle", action="store_true")
    p.add_argument("--no-metamorphic", action="store_true")
    p.add_argument("--no-corpus", action="store_true")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write verify.* counters as JSON")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("fuzz",
                       help="deterministic differential fuzzing; failing "
                            "cases are minimized into tests/corpus")
    p.add_argument("--budget", type=float, default=30.0,
                   help="nominal seconds (converted to a deterministic "
                        "case count)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cases", type=int, default=0,
                   help="exact case count (overrides --budget)")
    p.add_argument("--corpus-dir", default="",
                   help="override the corpus directory (tests/corpus)")
    p.add_argument("--no-corpus", action="store_true",
                   help="do not write reproducer files")
    p.add_argument("--metrics", default="", metavar="FILE",
                   help="write verify.fuzz.* counters as JSON")
    p.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        resolve_backend(getattr(args, "solver", ""))  # fail fast, clean message
    except ValueError as exc:
        logger.error("error: %s", exc)
        return 2
    try:
        return args.func(args)
    except KernelParseError as exc:
        logger.error("parse error: %s", exc)
        return 2
    except FileNotFoundError as exc:
        logger.error("error: %s", exc)
        return 2
    except ReproError as exc:
        logger.error("%s: %s", type(exc).__name__, exc)
        return 1


if __name__ == "__main__":
    sys.exit(main())
