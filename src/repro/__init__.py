"""Reproduction of "Optimizing GPU Deep Learning Operators with Polyhedral
Scheduling Constraint Injection" (Bastoul et al., CGO 2022).

Public API overview
-------------------

* :class:`repro.ir.Kernel` / :func:`repro.ir.kparser.parse_kernel` — build
  or parse fused-operator kernels.
* :class:`repro.schedule.InfluencedScheduler` — Algorithm 1 (the influenced
  polyhedral scheduler).
* :func:`repro.influence.build_scenarios` /
  :func:`repro.influence.build_influence_tree` — Algorithm 2 and the
  Section V constraint-tree builder.
* :class:`repro.pipeline.AkgPipeline` — the end-to-end AKG-style pipeline
  with the paper's four evaluation variants (isl / tvm / novec / infl).
* :func:`repro.gpu.simulate_kernel` — the analytic GPU execution model.
* :mod:`repro.eval` — the Table I / Table II harness.
* :mod:`repro.errors` — the :class:`~repro.errors.ReproError` exception
  taxonomy; :mod:`repro.solver.budget` and :mod:`repro.faultinject` — solve
  budgets and deterministic fault injection (see DESIGN.md "Resilience").

See README.md for a tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"

from repro.errors import ReproError
from repro.ir import Kernel
from repro.pipeline import AkgPipeline
from repro.schedule import InfluencedScheduler, SchedulerOptions

__all__ = ["Kernel", "AkgPipeline", "InfluencedScheduler",
           "SchedulerOptions", "ReproError", "__version__"]
