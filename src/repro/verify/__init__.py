"""Differential verification subsystem.

Four engines guard the paper's core invariant — the influenced schedule is
*semantically identical* to the isl baseline while reducing memory
transactions (PAPER.md Sections 4-5):

* :mod:`repro.verify.snapshot` — golden regression: versioned snapshots of
  compiled schedules, generated ASTs and simulator counters for the
  Table II workloads, checked by ``repro verify`` and re-blessed with
  ``repro verify --update-goldens``;
* :mod:`repro.verify.oracle` — differential oracle: compile the ``isl``
  and ``infl`` variants of one kernel and check instance-set equality,
  dependence-order preservation and simulator conservation invariants,
  aware of the degradation rung the resilient pipeline actually took;
* :mod:`repro.verify.fuzz` — persistent-corpus fuzzer: seeded random
  kernels + influence trees through the full differential oracle, failing
  inputs minimized and saved as ``.kernel`` reproducers that tier-1
  replays forever;
* :mod:`repro.verify.metamorphic` — metamorphic properties: scheduling
  must be invariant under iterator renaming, statement reordering and
  parameter scaling, which catches solver nondeterminism point tests
  cannot.
"""

from repro.verify.generator import (
    KernelSpec,
    StatementSpec,
    random_spec,
    spec_to_kernel,
    spec_to_text,
)
from repro.verify.metamorphic import metamorphic_check
from repro.verify.oracle import differential_oracle
from repro.verify.fuzz import FuzzReport, run_fuzz
from repro.verify.runner import VerifyConfig, VerifyReport, run_verify
from repro.verify.snapshot import (
    GOLDEN_VERSION,
    build_network_golden,
    compare_goldens,
    golden_path,
    load_golden,
    operator_snapshot,
    write_golden,
)

__all__ = [
    "GOLDEN_VERSION",
    "FuzzReport",
    "KernelSpec",
    "StatementSpec",
    "VerifyConfig",
    "VerifyReport",
    "build_network_golden",
    "compare_goldens",
    "differential_oracle",
    "golden_path",
    "load_golden",
    "metamorphic_check",
    "operator_snapshot",
    "random_spec",
    "run_fuzz",
    "run_verify",
    "spec_to_kernel",
    "spec_to_text",
    "write_golden",
]
