"""Metamorphic scheduling properties.

A metamorphic test needs no oracle for the *value* of an output — only a
relation between the outputs of two related inputs.  For the polyhedral
scheduler the natural relations are invariances: transformations of the
input kernel that provably do not change the scheduling problem must not
change the produced schedule.

Three relations are checked:

* **iterator renaming** — iterators are bound variables; renaming every
  ``i`` to ``mx0`` rewrites domains (:meth:`Polyhedron.rename`) and access
  subscripts but leaves the ILP identical.  The serialized schedule stores
  iterator coefficients positionally, so the payloads must be *equal*.
* **statement reordering** — the original execution order lives in the
  betas, so permuting the *declaration list* while keeping each
  statement's betas leaves every dependence untouched.  Declaration order
  is still observable by design — the pipeline clusters textually
  adjacent statements into launches — so the relation is semantic, not
  syntactic: the reordered compile must produce dependence-valid
  schedules and execute exactly the same instance set.
* **parameter scaling** (spec level) — the scheduler reasons symbolically
  over parameters; doubling ``N`` (and the matching tensor extents) must
  not change the schedule structure.

Each relation compiles the transformed kernel through the *real* pipeline
and compares serialized schedules, so a violation means the scheduler is
sensitive to something it must not observe.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.deps.analysis import compute_dependences
from repro.ir.access import Access
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.obs.runtime import get_obs
from repro.pipeline.akg import AkgPipeline
from repro.schedule.analysis import verify_schedule
from repro.schedule.serialize import schedule_to_dict
from repro.solver.problem import LinExpr
from repro.verify.generator import KernelSpec, spec_to_kernel
from repro.verify.oracle import domain_points, instance_set

VARIANTS = ("isl", "infl")
SCALE_FACTOR = 2


# -- kernel transformations ----------------------------------------------------


def fresh_renaming(kernel: Kernel) -> dict[str, str]:
    """A collision-free renaming of every iterator in the kernel."""
    iterators = sorted({it for s in kernel.statements for it in s.iterators})
    taken = set(kernel.params) | set(kernel.tensors) | set(iterators)
    mapping = {}
    for index, it in enumerate(iterators):
        name = f"mx{index}"
        while name in taken:
            name = "m" + name
        taken.add(name)
        mapping[it] = name
    return mapping


def _rename_expr(expr: LinExpr, mapping: dict[str, str]) -> LinExpr:
    return LinExpr({mapping.get(n, n): c for n, c in expr.coeffs.items()},
                   expr.const)


def rename_iterators(kernel: Kernel, mapping: dict[str, str]) -> Kernel:
    """The same kernel with every iterator renamed per ``mapping``."""
    out = Kernel(kernel.name, params=dict(kernel.params))
    for tensor in kernel.tensors.values():
        out.add_tensor(tensor.name, tensor.shape, tensor.dtype)

    def rename_access(access: Access) -> Access:
        subs = tuple(_rename_expr(e, mapping) for e in access.subscripts)
        return Access(out.tensors[access.tensor.name], subs, access.is_write)

    for s in kernel.statements:
        out.statements.append(Statement(
            name=s.name,
            iterators=[mapping.get(it, it) for it in s.iterators],
            domain=s.domain.rename(mapping),
            writes=[rename_access(a) for a in s.writes],
            reads=[rename_access(a) for a in s.reads],
            betas=list(s.betas),
            flops=s.flops))
    return out


def reorder_statements(kernel: Kernel, order: list[int]) -> Kernel:
    """The same kernel with statements declared in ``order`` but keeping
    every statement's betas (so the original execution order — and hence
    every dependence — is unchanged)."""
    out = Kernel(kernel.name, params=dict(kernel.params))
    for tensor in kernel.tensors.values():
        out.add_tensor(tensor.name, tensor.shape, tensor.dtype)
    out.statements = [kernel.statements[index] for index in order]
    return out


def scale_spec(spec: KernelSpec, factor: int = SCALE_FACTOR) -> KernelSpec:
    """The spec with every parameter and tensor extent multiplied by
    ``factor`` (domains in fuzz specs are sized by the parameters)."""
    from dataclasses import replace
    return replace(
        spec,
        params=tuple((p, v * factor) for p, v in spec.params),
        tensors=tuple((name, tuple(d * factor for d in shape))
                      for name, shape in spec.tensors))


# -- comparisons ---------------------------------------------------------------


def _schedule_payloads(compiled) -> list[dict]:
    return [schedule_to_dict(launch.schedule) for launch in compiled.launches]


def _compare_compiles(label: str, base, transformed,
                      problems: list[str]) -> None:
    """Exact schedule equality between a compile of the original kernel and
    a compile of a transformed-but-equivalent kernel."""
    if base.degradation != transformed.degradation:
        problems.append(
            f"{label}: degradation rung changed "
            f"({base.degradation!r} -> {transformed.degradation!r})")
        return
    payloads = _schedule_payloads(base)
    payloads_t = _schedule_payloads(transformed)
    if len(payloads) != len(payloads_t):
        problems.append(f"{label}: launch count changed "
                        f"({len(payloads)} -> {len(payloads_t)})")
        return
    for index, (p, pt) in enumerate(zip(payloads, payloads_t)):
        if p != pt:
            problems.append(f"{label}: schedule of launch {index} changed")


def _compare_semantics(label: str, base, transformed,
                       problems: list[str]) -> None:
    """Semantic equivalence: the transformed compile must have
    dependence-valid schedules and (when enumerable) execute exactly the
    base compile's instance set.  Used where declaration order legitimately
    changes launch clustering, so schedule equality is too strong."""
    for launch in transformed.launches:
        relations = compute_dependences(launch.kernel)
        for violation in verify_schedule(launch.schedule, relations):
            problems.append(f"{label}: schedule violation: {violation}")
    if domain_points(base.kernel) is None:
        return
    base_instances = instance_set(base)
    transformed_instances = instance_set(transformed)
    if base_instances != transformed_instances:
        only_base = len(base_instances - transformed_instances)
        only_t = len(transformed_instances - base_instances)
        problems.append(f"{label}: instance sets differ ({only_base} lost, "
                        f"{only_t} new)")


def metamorphic_check(source: Union[Kernel, KernelSpec],
                      pipeline: Optional[AkgPipeline] = None,
                      max_threads: int = 256) -> list[str]:
    """Check every applicable metamorphic relation on ``source``.

    Accepts a plain :class:`Kernel` (renaming + reordering) or a
    :class:`KernelSpec` (additionally parameter scaling, which needs the
    spec's parameter/extent coupling).  Returns human-readable problems.
    """
    obs = get_obs()
    problems: list[str] = []
    pipeline = pipeline or AkgPipeline(max_threads=max_threads)
    spec = source if isinstance(source, KernelSpec) else None
    kernel = spec_to_kernel(spec) if spec is not None else source

    renamed = rename_iterators(kernel, fresh_renaming(kernel))
    reversed_order = list(range(len(kernel.statements)))[::-1]
    reordered = reorder_statements(kernel, reversed_order)

    for variant in VARIANTS:
        base = pipeline.compile(kernel, variant)
        _compare_compiles(f"{variant}/{kernel.name}: iterator renaming",
                          base, pipeline.compile(renamed, variant), problems)
        if len(kernel.statements) > 1:
            _compare_semantics(
                f"{variant}/{kernel.name}: statement reordering",
                base, pipeline.compile(reordered, variant), problems)
        if spec is not None:
            scaled = spec_to_kernel(scale_spec(spec))
            _compare_compiles(f"{variant}/{kernel.name}: parameter scaling",
                              base, pipeline.compile(scaled, variant),
                              problems)

    if obs.metrics.enabled:
        obs.metrics.count("verify.metamorphic.checked")
        if problems:
            obs.metrics.count("verify.metamorphic.problems", len(problems))
    return problems
