"""Golden regression snapshots of compiled Table II operators.

A *snapshot* captures everything downstream of the scheduler for one
compiled operator: the serialized schedule of every launch (via
:mod:`repro.schedule.serialize`), the generated loop AST, the launch
geometry, the degradation rung taken, and the GPU model's full
:class:`~repro.gpu.simulator.KernelProfile` counter set.  Golden files
(one JSON document per network under ``tests/goldens/``) pin those
snapshots for a fixed generator configuration, so *any* behavior change in
the scheduler, code generator, mapper or simulator shows up as a reviewed
diff instead of silent drift.

``repro verify`` checks the committed goldens; ``repro verify
--update-goldens`` re-blesses them after an intentional change.  The
compilation model is deterministic (exact rational arithmetic end to end),
so comparisons are exact — including floats, which round-trip JSON
losslessly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.gpu.simulator import simulate_kernel
from repro.obs.runtime import get_obs
from repro.pipeline.akg import AkgPipeline, CompiledOperator
from repro.schedule.serialize import schedule_to_dict
from repro.workloads.generator import generate_network_suite
from repro.workloads.networks import NETWORKS

GOLDEN_VERSION = 1

# Default goldens directory: tests/goldens/ next to the test suite.
DEFAULT_GOLDENS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "tests", "goldens")

GOLDEN_VARIANTS = ("isl", "infl")


@dataclass(frozen=True)
class GoldenConfig:
    """The generator/pipeline configuration a golden file is pinned to.

    Stored inside the file and compared on check, so a config drift (e.g.
    a different seed) reads as an explicit mismatch instead of a wall of
    bogus schedule diffs.
    """

    seed: int = 0
    limit: int = 2          # operators per network
    sample_blocks: int = 2  # simulator sampling for the profile counters
    max_threads: int = 256

    def as_dict(self) -> dict:
        return {"seed": self.seed, "limit": self.limit,
                "sample_blocks": self.sample_blocks,
                "max_threads": self.max_threads}


def _launch_snapshot(launch, pipeline: AkgPipeline, sample_blocks: int,
                     degradation: str = "none") -> dict:
    profile = simulate_kernel(launch, arch=pipeline.arch,
                              sample_blocks=sample_blocks,
                              sim=getattr(pipeline, "sim", ""))
    return {
        "kernel": launch.kernel.name,
        "schedule": schedule_to_dict(launch.schedule,
                                     degradation=degradation),
        "ast": launch.ast.render(),
        "grid": [[d.loop_var, d.extent, d.mapping] for d in launch.grid],
        "block": [[d.loop_var, d.extent, d.mapping] for d in launch.block],
        "profile": profile.counters(),
    }


def operator_snapshot(compiled: CompiledOperator,
                      pipeline: AkgPipeline,
                      sample_blocks: int = 2) -> dict:
    """The golden snapshot of one compiled operator."""
    launches = [_launch_snapshot(launch, pipeline, sample_blocks,
                                 degradation=compiled.degradation)
                for launch in compiled.launches]
    return {
        "variant": compiled.variant,
        "degradation": compiled.degradation,
        "vectorized": compiled.vectorized,
        "n_launches": compiled.n_launches,
        "launches": launches,
    }


def build_network_golden(network: str,
                         config: Optional[GoldenConfig] = None,
                         pipeline: Optional[AkgPipeline] = None) -> dict:
    """Compile the network's (limited) suite and snapshot every operator
    under every golden variant."""
    config = config or GoldenConfig()
    if network not in NETWORKS:
        raise ValueError(f"unknown network {network!r}; "
                         f"pick from {list(NETWORKS)}")
    pipeline = pipeline or AkgPipeline(max_threads=config.max_threads,
                                       sample_blocks=config.sample_blocks)
    suite = generate_network_suite(network, seed=config.seed,
                                   limit=config.limit)
    operators = {}
    for op_class, kernel in suite:
        snapshots = {}
        for variant in GOLDEN_VARIANTS:
            compiled = pipeline.compile(kernel, variant)
            snapshots[variant] = operator_snapshot(
                compiled, pipeline, sample_blocks=config.sample_blocks)
        operators[kernel.name] = {"class": op_class, "variants": snapshots}
    return {
        "version": GOLDEN_VERSION,
        "network": network,
        "config": config.as_dict(),
        "operators": operators,
    }


# -- per-family goldens --------------------------------------------------------

# Fixed tiny-shape builders for the operator-family goldens: one committed
# document per family (filename ``family_<name>.json``), pinning schedules,
# ASTs, launch geometry and profiles for both golden variants *plus* the
# family's TVM-style template baseline.  Shapes match the exhaustive-oracle
# tier in ``generator._VERIFY_BUILDERS`` so the pinned artifacts are the
# same ones the oracle proves semantics-preserving.
def _family_builders() -> dict:
    from repro.ir import examples
    from repro.workloads import operators
    return {
        "depthwise_conv": lambda: operators.depthwise_conv_op(
            "family_depthwise_conv", channels=2, height=4, width=4,
            kernel_size=2),
        "attention_block": lambda: operators.attention_block_op(
            "family_attention_block", seq=4, dmodel=4),
        "stencil2d_jacobi": lambda: examples.jacobi_2d(
            6, name="family_stencil2d_jacobi"),
        "stencil2d_heat": lambda: examples.heat_2d(
            6, name="family_stencil2d_heat"),
    }


GOLDEN_FAMILIES = ("depthwise_conv", "attention_block",
                   "stencil2d_jacobi", "stencil2d_heat")

# op_class label used for the family's template baseline snapshot.
_FAMILY_TEMPLATE_CLASS = {
    "depthwise_conv": "depthwise_conv",
    "attention_block": "attention_block",
    "stencil2d_jacobi": "stencil_2d",
    "stencil2d_heat": "stencil_2d",
}


def build_family_golden(family: str,
                        config: Optional[GoldenConfig] = None,
                        pipeline: Optional[AkgPipeline] = None) -> dict:
    """Compile one operator family's fixed kernel and snapshot it under
    every golden variant plus the family template baseline."""
    from repro.workloads.templates import template_compile, template_kind
    config = config or GoldenConfig()
    builders = _family_builders()
    if family not in builders:
        raise ValueError(f"unknown operator family {family!r}; "
                         f"pick from {GOLDEN_FAMILIES}")
    pipeline = pipeline or AkgPipeline(max_threads=config.max_threads,
                                       sample_blocks=config.sample_blocks)
    kernel = builders[family]()
    snapshots = {}
    for variant in GOLDEN_VARIANTS:
        compiled = pipeline.compile(kernel, variant)
        snapshots[variant] = operator_snapshot(
            compiled, pipeline, sample_blocks=config.sample_blocks)
    op_class = _FAMILY_TEMPLATE_CLASS[family]
    template_launches = template_compile(kernel, op_class,
                                         max_threads=config.max_threads)
    template = {
        "kind": template_kind(op_class),
        "n_launches": len(template_launches),
        "launches": [_launch_snapshot(launch, pipeline,
                                      config.sample_blocks)
                     for launch in template_launches],
    }
    return {
        "version": GOLDEN_VERSION,
        "network": f"family_{family}",
        "family": family,
        "config": config.as_dict(),
        "operators": {kernel.name: {"class": op_class,
                                    "variants": snapshots,
                                    "template": template}},
    }


# -- comparison ----------------------------------------------------------------


def _diff(expected, actual, path: str, out: list[str],
          max_problems: int = 50) -> None:
    """Structural diff of two JSON-compatible values, exact equality."""
    if len(out) >= max_problems:
        return
    if type(expected) is not type(actual):
        out.append(f"{path}: type changed "
                   f"{type(expected).__name__} -> {type(actual).__name__}")
        return
    if isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in actual:
                out.append(f"{path}.{key}: missing")
            elif key not in expected:
                out.append(f"{path}.{key}: unexpected new entry")
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", out,
                      max_problems)
    elif isinstance(expected, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} -> {len(actual)}")
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{index}]", out, max_problems)
    elif expected != actual:
        out.append(f"{path}: {expected!r} -> {actual!r}")


def compare_goldens(expected: dict, actual: dict) -> list[str]:
    """Differences between a stored golden document and a fresh build
    (empty == no behavior change)."""
    problems: list[str] = []
    if expected.get("version") != actual.get("version"):
        problems.append(f"golden format version "
                        f"{expected.get('version')!r} -> "
                        f"{actual.get('version')!r}")
        return problems
    _diff(expected.get("config"), actual.get("config"), "config", problems)
    if problems:
        # A config mismatch makes every downstream diff meaningless.
        return problems
    _diff(expected.get("operators"), actual.get("operators"), "operators",
          problems)
    obs = get_obs()
    if obs.metrics.enabled:
        obs.metrics.count("verify.golden.checked")
        if problems:
            obs.metrics.count("verify.golden.mismatches", len(problems))
    return problems


# -- file I/O ------------------------------------------------------------------


def golden_path(network: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or DEFAULT_GOLDENS_DIR,
                        f"{network}.json")


def load_golden(network: str, directory: Optional[str] = None) -> Optional[dict]:
    """The stored golden document, or None when never blessed."""
    path = golden_path(network, directory)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("version") != GOLDEN_VERSION:
        raise ValueError(f"{path}: unsupported golden version "
                         f"{payload.get('version')!r}")
    return payload


def write_golden(document: dict, directory: Optional[str] = None) -> str:
    """Persist one network's golden document (sorted, indented: diffable)."""
    directory = directory or DEFAULT_GOLDENS_DIR
    os.makedirs(directory, exist_ok=True)
    path = golden_path(document["network"], directory)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path
