"""Deterministic differential fuzzing with a persistent reproducer corpus.

``repro fuzz --budget S --seed N`` runs the cross-variant oracle (and,
periodically, the metamorphic relations) over seeded random kernels.  Two
design constraints shape this module:

* **bit-identical runs** — the same seed and budget must produce the same
  report on any machine, so the time budget is converted to a case count at
  a nominal rate instead of consulting a wall clock, and every case draws
  from its own ``random.Random`` derived from ``(seed, case index)``.
* **failures outlive the process** — a failing case is structurally
  minimized (:func:`~repro.verify.generator.minimize_spec`) and written as
  a ``.kernel`` reproducer under ``tests/corpus/``, named by content
  digest.  The committed corpus is replayed by the tier-1 test suite, so
  every bug the fuzzer ever caught stays caught.
"""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.kparser import parse_kernel
from repro.obs.runtime import get_obs
from repro.pipeline.akg import AkgPipeline
from repro.verify.generator import (WEIGHT_PRESETS, KernelSpec, minimize_spec,
                                    random_spec, spec_to_kernel, spec_to_text)
from repro.verify.metamorphic import metamorphic_check
from repro.verify.oracle import differential_oracle

# Budget -> case-count conversion.  A nominal rate keeps the run length
# roughly proportional to the requested seconds while staying exactly
# reproducible (a wall clock would make the case count racy).  Calibrated
# against the observed ~1.2 cases/s with the metamorphic cadence below.
NOMINAL_CASES_PER_SECOND = 1

# Metamorphic relations compile several kernel variants per case, so they
# run on every k-th case rather than all of them.
METAMORPHIC_EVERY = 4

DEFAULT_CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "tests", "corpus")


@dataclass(frozen=True)
class FuzzFailure:
    """One failing (already minimized) fuzz case."""

    case_index: int
    digest: str
    problems: tuple[str, ...]
    path: Optional[str]  # reproducer file, None when corpus writing is off


@dataclass
class FuzzReport:
    """The outcome of one deterministic fuzz run."""

    seed: int
    cases: int
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """Deterministic textual report (bit-identical across runs)."""
        lines = [f"fuzz: seed={self.seed} cases={self.cases} "
                 f"failures={len(self.failures)}"]
        for failure in self.failures:
            lines.append(f"  case {failure.case_index} "
                         f"[{failure.digest}]"
                         + (f" -> {failure.path}" if failure.path else ""))
            for problem in failure.problems:
                lines.append(f"    {problem}")
        return "\n".join(lines)


def _case_rng(seed: int, index: int) -> random.Random:
    # A large odd multiplier decorrelates neighboring case streams.
    return random.Random(seed * 1_000_003 + index)


def _check_spec(spec: KernelSpec, pipelines: dict[int, AkgPipeline],
                metamorphic: bool) -> list[str]:
    """All problems the verification engines find in one spec."""
    index = spec.weights_index % len(WEIGHT_PRESETS)
    if index not in pipelines:
        pipelines[index] = AkgPipeline(weights=WEIGHT_PRESETS[index])
    pipeline = pipelines[index]
    try:
        kernel = spec_to_kernel(spec)
        problems = differential_oracle(kernel, pipeline=pipeline)
        if metamorphic:
            problems += metamorphic_check(spec, pipeline=pipeline)
        return problems
    except Exception as exc:  # crash == finding, keep fuzzing
        return [f"exception: {type(exc).__name__}: {exc}"]


def spec_digest(spec: KernelSpec) -> str:
    """Content digest of a spec's kernel text (stable reproducer identity,
    independent of which fuzz run found it)."""
    return hashlib.sha256(spec_to_text(spec).encode()).hexdigest()[:16]


def write_reproducer(spec: KernelSpec, problems: list[str], seed: int,
                     case_index: int,
                     corpus_dir: Optional[str] = None) -> str:
    """Persist a minimized failing spec as a ``.kernel`` corpus file."""
    corpus_dir = corpus_dir or DEFAULT_CORPUS_DIR
    os.makedirs(corpus_dir, exist_ok=True)
    digest = spec_digest(spec)
    header_lines = [
        f"repro fuzz reproducer {digest}",
        f"found by: seed={seed} case={case_index} "
        f"weights_index={spec.weights_index % len(WEIGHT_PRESETS)}",
    ] + [f"problem: {p}" for p in problems[:3]]
    path = os.path.join(corpus_dir, f"{digest}.kernel")
    with open(path, "w") as handle:
        handle.write(spec_to_text(spec, header="\n".join(header_lines)))
    return path


def run_fuzz(seed: int, budget_s: float = 0.0,
             cases: Optional[int] = None,
             corpus_dir: Optional[str] = None,
             write_corpus: bool = True,
             extent: int = 4) -> FuzzReport:
    """One deterministic fuzz run.

    ``cases`` overrides the budget-derived count; ``write_corpus=False``
    checks without touching the corpus directory (used by the determinism
    test, which compares two rendered reports byte for byte).
    """
    obs = get_obs()
    if cases is None:
        cases = max(1, int(budget_s * NOMINAL_CASES_PER_SECOND))
    report = FuzzReport(seed=seed, cases=cases)
    pipelines: dict[int, AkgPipeline] = {}
    for index in range(cases):
        spec = random_spec(_case_rng(seed, index), index=index, extent=extent)
        metamorphic = index % METAMORPHIC_EVERY == 0
        problems = _check_spec(spec, pipelines, metamorphic)
        if obs.metrics.enabled:
            obs.metrics.count("verify.fuzz.cases")
        if not problems:
            continue
        if obs.metrics.enabled:
            obs.metrics.count("verify.fuzz.failures")
        minimized = minimize_spec(
            spec, lambda s: bool(_check_spec(s, pipelines, metamorphic)))
        problems = _check_spec(minimized, pipelines, metamorphic) or problems
        path = None
        if write_corpus:
            path = write_reproducer(minimized, problems, seed, index,
                                    corpus_dir)
        report.failures.append(FuzzFailure(
            case_index=index, digest=spec_digest(minimized),
            problems=tuple(problems), path=path))
    return report


# -- corpus replay -------------------------------------------------------------


def corpus_files(corpus_dir: Optional[str] = None) -> list[str]:
    corpus_dir = corpus_dir or DEFAULT_CORPUS_DIR
    if not os.path.isdir(corpus_dir):
        return []
    return sorted(os.path.join(corpus_dir, name)
                  for name in os.listdir(corpus_dir)
                  if name.endswith(".kernel"))


def replay_corpus(corpus_dir: Optional[str] = None,
                  pipeline: Optional[AkgPipeline] = None) -> list[str]:
    """Re-run the differential oracle on every committed reproducer.

    Reproducer text does not carry the cost-weight preset, so each file is
    replayed under *every* preset — a reproducer must stay green under all
    of them.  Returns problems prefixed with the reproducer filename.
    """
    problems: list[str] = []
    for path in corpus_files(corpus_dir):
        with open(path) as handle:
            text = handle.read()
        try:
            kernel = parse_kernel(text)
        except Exception as exc:
            problems.append(f"{os.path.basename(path)}: unparseable: {exc}")
            continue
        for preset_index, weights in enumerate(WEIGHT_PRESETS):
            replay_pipeline = pipeline or AkgPipeline(weights=weights)
            for problem in differential_oracle(kernel,
                                               pipeline=replay_pipeline):
                problems.append(f"{os.path.basename(path)}"
                                f"[w{preset_index}]: {problem}")
            if pipeline is not None:
                break  # caller pinned a pipeline; presets do not apply
    return problems
