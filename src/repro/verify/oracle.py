"""Cross-variant differential oracle.

For one kernel, compile both the ``isl`` baseline and the ``infl``
(influenced + vectorized) variant through the real pipeline — degradation
ladder, fault injection and schedule cache included — and check that the
two results are semantically interchangeable:

* every launch's schedule strongly satisfies every dependence
  (:func:`~repro.schedule.analysis.verify_schedule`);
* each variant executes exactly its iteration domains in a
  conflict-preserving order (:func:`~repro.codegen.interp.check_semantics`);
* the two variants execute the *same* instance set (cross-variant
  equality, catching compensating bugs a per-variant check misses);
* simulator conservation: under exhaustive (non-sampled) simulation the
  total flop count is identical across variants, every variant moves at
  least the kernel's compulsory DRAM footprint, and when vectorization
  succeeded at full quality with transaction-aligned lane groups the
  influenced variant never issues *more* DRAM transactions than the
  baseline (the paper's entire claim);
* degradation-rung awareness: invariants are compared against the rung the
  resilient pipeline *actually took* — an ``isl-baseline`` fallback must
  be bit-identical to the real baseline, and the transaction bound is only
  asserted for full-quality vectorized results.

Exhaustive checks enumerate instances, so they are gated on domain size;
large (real Table II scale) kernels still get the analytic checks —
schedule verification, rung consistency and the footprint lower bound.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.codegen.ast import Loop, StatementCall, walk
from repro.codegen.interp import check_semantics, execute
from repro.deps.analysis import compute_dependences
from repro.errors import ReproError
from repro.gpu.simulator import simulate_kernel
from repro.obs.runtime import get_obs
from repro.pipeline.akg import AkgPipeline, CompiledOperator
from repro.schedule.analysis import verify_schedule
from repro.solver.problem import LinExpr, var

# Exhaustive instance checks are only run when every statement's domain has
# at most this many points (the interpreter enumerates them all).
EXHAUSTIVE_POINT_LIMIT = 4096

# Transactions are extrapolated floats; two exactly-equal computations can
# differ by rounding noise after scaling.
_REL_EPS = 1e-9


def domain_points(kernel) -> Optional[dict[str, list]]:
    """Per-statement iteration points, or None when too large."""
    points = {}
    for s in kernel.statements:
        try:
            points[s.name] = s.iteration_points(kernel.params,
                                                limit=EXHAUSTIVE_POINT_LIMIT)
        except ValueError:
            return None
    return points


def instance_set(compiled: CompiledOperator) -> set:
    """All executed ``(statement, frozen point)`` instances of a variant."""
    out = set()
    for launch in compiled.launches:
        for statement, point in execute(launch.ast, launch.kernel.params):
            out.add((statement.name, tuple(sorted(point.items()))))
    return out


def _check_schedules(compiled: CompiledOperator, problems: list[str]) -> None:
    for launch in compiled.launches:
        relations = compute_dependences(launch.kernel)
        for violation in verify_schedule(launch.schedule, relations):
            problems.append(f"{compiled.variant}/{launch.kernel.name}: "
                            f"schedule violation: {violation}")


def _check_launch_semantics(compiled: CompiledOperator,
                            problems: list[str]) -> None:
    for launch in compiled.launches:
        for problem in check_semantics(launch.kernel, launch.ast):
            problems.append(f"{compiled.variant}/{launch.kernel.name}: "
                            f"{problem}")


def _exhaustive_profiles(compiled: CompiledOperator, pipeline: AkgPipeline):
    """Simulate every block of every launch (no sampling, no warmup), so
    conservation counters are exact rather than extrapolated."""
    profiles = []
    for launch in compiled.launches:
        profiles.append(simulate_kernel(launch, arch=pipeline.arch,
                                        sample_blocks=launch.n_blocks,
                                        sim=getattr(pipeline, "sim", "")))
    return profiles


def _aligned_vectorization(compiled: CompiledOperator,
                           pipeline: AkgPipeline) -> bool:
    """True iff every vectorized access starts its lane groups on a memory
    transaction boundary.

    A misaligned vector group (e.g. a vector loop rebased at a nonzero
    lower bound, ``theta(i) = i + 2``) legitimately straddles one extra
    transaction per group, so the "vectorization never adds transactions"
    bound only holds for aligned results.  Alignment is checked
    conservatively: in each vectorized access's element-offset expression,
    every term except the lane variable's must be a multiple of the
    transaction granularity (in elements)."""
    for launch in compiled.launches:
        params = launch.kernel.params
        for node in walk(launch.ast):
            if not isinstance(node, Loop) or not node.vector:
                continue
            lane = node.var
            for call in walk(node.body):
                if not isinstance(call, StatementCall) \
                        or call.vector_width <= 1:
                    continue
                for access in call.statement.accesses:
                    strides = access.tensor.strides()
                    unit = max(pipeline.arch.sector_bytes
                               // access.tensor.dtype.size_bytes, 1)
                    offset = LinExpr()
                    for d, sub in enumerate(access.subscripts):
                        composed = LinExpr(const=sub.const)
                        for name, c in sub.coeffs.items():
                            composed = composed \
                                + c * call.iterator_exprs.get(name, var(name))
                        offset = offset + strides[d] * composed
                    if abs(offset.coeffs.get(lane, Fraction(0))) != 1:
                        continue  # not lane-contiguous; no vector claim
                    terms = [c for name, c in offset.coeffs.items()
                             if name != lane and name not in params]
                    terms.append(offset.const
                                 + sum(offset.coeffs.get(p, 0) * v
                                       for p, v in params.items()))
                    if any(t % unit != 0 for t in terms):
                        return False
    return True


def differential_oracle(kernel, pipeline: Optional[AkgPipeline] = None,
                        max_threads: int = 256,
                        exhaustive: Optional[bool] = None) -> list[str]:
    """Run the full cross-variant oracle on ``kernel``.

    Returns a list of human-readable problems (empty == the influenced
    compile is semantically identical to the baseline and respects the
    conservation invariants).  ``exhaustive`` defaults to automatic: on
    when every statement domain fits :data:`EXHAUSTIVE_POINT_LIMIT`.
    """
    obs = get_obs()
    problems: list[str] = []
    pipeline = pipeline or AkgPipeline(max_threads=max_threads)
    compiled = {}
    for variant in ("isl", "infl"):
        try:
            compiled[variant] = pipeline.compile(kernel, variant)
        except ReproError as exc:
            problems.append(f"{variant}/{kernel.name}: compilation failed "
                            f"after full ladder: {type(exc).__name__}: {exc}")
    if problems:
        return problems
    isl, infl = compiled["isl"], compiled["infl"]
    if obs.metrics.enabled:
        obs.metrics.count("verify.oracle.operators")
        if infl.degradation != "none":
            obs.metrics.count("verify.oracle.degraded")

    # Analytic checks (any scale): dependence preservation per launch.
    _check_schedules(isl, problems)
    _check_schedules(infl, problems)

    # Rung consistency: compare against the degradation rung actually
    # taken.  The `isl-baseline` rung is defined as "compile exactly what
    # the baseline compiles", so its output must match bit for bit.
    if infl.degradation == "isl-baseline" \
            and infl.signature() != isl.signature():
        problems.append(f"{kernel.name}: isl-baseline fallback differs "
                        f"from the real isl compile")

    if exhaustive is None:
        exhaustive = domain_points(kernel) is not None
    if exhaustive:
        # Per-variant semantics: exact domains, conflict order preserved.
        _check_launch_semantics(isl, problems)
        _check_launch_semantics(infl, problems)
        # Cross-variant instance equality.
        instances_isl = instance_set(isl)
        instances_infl = instance_set(infl)
        if instances_isl != instances_infl:
            only_isl = len(instances_isl - instances_infl)
            only_infl = len(instances_infl - instances_isl)
            problems.append(
                f"{kernel.name}: variant instance sets differ "
                f"({only_isl} only in isl, {only_infl} only in infl)")
        # Conservation under exact simulation.
        prof_isl = _exhaustive_profiles(isl, pipeline)
        prof_infl = _exhaustive_profiles(infl, pipeline)
        flops_isl = sum(p.flops for p in prof_isl)
        flops_infl = sum(p.flops for p in prof_infl)
        if abs(flops_isl - flops_infl) > _REL_EPS * max(flops_isl, 1.0):
            problems.append(f"{kernel.name}: flop totals differ "
                            f"(isl={flops_isl}, infl={flops_infl})")
        footprint = kernel.total_bytes_touched()
        for variant, profs in (("isl", prof_isl), ("infl", prof_infl)):
            moved = sum(p.dram_bytes for p in profs)
            if moved + _REL_EPS * footprint < footprint:
                problems.append(
                    f"{variant}/{kernel.name}: DRAM traffic {moved:.0f}B "
                    f"below the compulsory footprint {footprint}B")
        tx_isl = sum(p.dram_transactions for p in prof_isl)
        tx_infl = sum(p.dram_transactions for p in prof_infl)
        if infl.degradation == "none" and infl.vectorized \
                and _aligned_vectorization(infl, pipeline) \
                and tx_infl > tx_isl * (1.0 + _REL_EPS):
            problems.append(
                f"{kernel.name}: vectorized influenced variant issues more "
                f"DRAM transactions than the baseline "
                f"(infl={tx_infl:.0f} > isl={tx_isl:.0f})")
    if obs.metrics.enabled and problems:
        obs.metrics.count("verify.oracle.problems", len(problems))
    return problems
