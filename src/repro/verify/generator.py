"""Seeded random kernel specs for the fuzzer and the reproducer corpus.

The fuzzer needs three things hypothesis strategies do not give it: full
determinism from a plain integer seed (bit-identical corpora across runs
and machines), a *spec* layer that survives outside the process (so
failing inputs can be minimized structurally and written as ``.kernel``
reproducer files), and independence from the test harness so the same
generator drives ``repro fuzz`` from the CLI.

A :class:`KernelSpec` is a declarative mirror of the hypothesis strategy
in ``tests/test_fuzz_pipeline.py``: 1-3 statements over iterators drawn
from ``i, j, k`` at depth 1-3, rectangular or triangular domains, affine
subscripts with permutation / reuse / constant pinning, accumulator-style
self reads, and a pool of shared input tensors.  Specs convert both to
:class:`~repro.ir.kernel.Kernel` objects (builder API) and to the textual
kernel format of :mod:`repro.ir.kparser`, and the two paths produce
equivalent kernels — reproducers replay through the parser.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel

ITER_POOL = ("i", "j", "k")
DEFAULT_EXTENT = 4  # small enough for exhaustive instance checking
WINDOW_EXTENT = 2   # extent of the windowed-access iterator ``r``

# Deterministic weight presets the fuzzer cycles through: default costs,
# vectorization-greedy, and locality-heavy.  Varying the weight vector
# varies the influence-tree shape, so the same kernel population covers
# more scheduler configurations.
WEIGHT_PRESETS: tuple[CostWeights, ...] = (
    CostWeights(),
    CostWeights(w1=10.0, w2=8.0),   # vectorization-greedy
    CostWeights(w3=4.0, w4=4.0),    # stride/locality-heavy
)


@dataclass(frozen=True)
class StatementSpec:
    """One statement: bounds as ``(iterator, lower, upper-text)`` plus
    ``(tensor, subscript-texts)`` accesses — everything is kparser text."""

    name: str
    bounds: tuple[tuple[str, int, str], ...]
    writes: tuple[tuple[str, tuple[str, ...]], ...]
    reads: tuple[tuple[str, tuple[str, ...]], ...] = ()
    flops: int = 1


@dataclass(frozen=True)
class KernelSpec:
    """A declarative kernel: params + tensors + statements."""

    name: str
    params: tuple[tuple[str, int], ...]
    tensors: tuple[tuple[str, tuple[int, ...]], ...]
    statements: tuple[StatementSpec, ...]
    weights_index: int = 0  # into WEIGHT_PRESETS

    @property
    def weights(self) -> CostWeights:
        return WEIGHT_PRESETS[self.weights_index % len(WEIGHT_PRESETS)]


def spec_to_kernel(spec: KernelSpec) -> Kernel:
    """Build the concrete kernel a spec describes (validated)."""
    kernel = Kernel(spec.name, params=dict(spec.params))
    for name, shape in spec.tensors:
        kernel.add_tensor(name, shape)
    for s in spec.statements:
        kernel.add_statement(s.name,
                             [(it, lo, hi) for it, lo, hi in s.bounds],
                             writes=[(t, list(subs)) for t, subs in s.writes],
                             reads=[(t, list(subs)) for t, subs in s.reads],
                             flops=s.flops)
    kernel.validate()
    return kernel


def spec_to_text(spec: KernelSpec, header: str = "") -> str:
    """The spec in :mod:`repro.ir.kparser` format (a ``.kernel`` file).

    ``header`` lines are embedded as ``#`` comments, so reproducer files
    carry their provenance (fuzz seed, case index, failure summary)."""
    lines = [f"# {line}" for line in header.splitlines() if line.strip()]
    params = ", ".join(f"{p}={v}" for p, v in spec.params)
    lines.append(f"kernel {spec.name}" + (f" ({params})" if params else ""))
    for name, shape in spec.tensors:
        dims = "".join(f"[{extent}]" for extent in shape)
        lines.append(f"tensor {name}{dims}")
    for s in spec.statements:
        iters = ", ".join(f"{it}: {lo}..{hi}" for it, lo, hi in s.bounds)
        flops = f" flops={s.flops}" if s.flops != 1 else ""

        def access(t, subs):
            return t + "".join(f"[{sub}]" for sub in subs)

        left = ", ".join(access(t, subs) for t, subs in s.writes)
        args = ", ".join(access(t, subs) for t, subs in s.reads)
        right = f"f({args})"
        lines.append(f"{s.name}[{iters}]{flops}: {left} = {right}")
    return "\n".join(lines) + "\n"


# -- random generation ---------------------------------------------------------


def random_spec(rng: random.Random, index: int = 0,
                extent: int = DEFAULT_EXTENT) -> KernelSpec:
    """One random kernel spec (mirrors the hypothesis strategy).

    Beyond the elementwise/triangular base grammar, two productions reach
    the dependence shapes of the new operator families: *windowed access*
    (an extra iterator ``r`` of constant extent feeding ``i + r``
    subscripts into padded inputs — the depthwise-conv pattern) and
    *multi-reduction* (a rank-reducing accumulator statement that also
    broadcast-reads an earlier reduction's output — the attention
    row-max/row-sum chain).
    """
    n = extent
    pad = n + WINDOW_EXTENT - 1
    tensors: list[tuple[str, tuple[int, ...]]] = [
        (f"In{rank}", (n,) * rank) for rank in (1, 2, 3)]
    # Window-padded inputs: ``i + r`` stays in bounds for i < N, r < WINDOW.
    tensors += [("WIn1", (pad,)), ("WIn2", (pad, pad))]
    written: list[tuple[str, int]] = [(f"In{r}", r) for r in (1, 2, 3)]
    statements: list[StatementSpec] = []

    n_statements = rng.randint(1, 3)
    for s_index in range(n_statements):
        depth = rng.randint(1, 3)
        iters = list(ITER_POOL[:depth])
        triangular = depth >= 2 and rng.random() < 0.5
        windowed = not triangular and rng.random() < 0.25
        reduction = (not triangular and not windowed and depth >= 2
                     and rng.random() < 0.25)
        bounds = []
        for level, it in enumerate(iters):
            if triangular and level == 1:
                bounds.append((it, 0, "i + 1"))
            else:
                # Occasionally start above zero: nonzero lower bounds reach
                # the vector-loop rebasing paths (see the corpus reproducer
                # for the strip-mining lower-bound regression).
                bounds.append((it, rng.choice((0, 0, 0, 2)), "N"))
        if windowed:
            bounds.append(("r", 0, str(WINDOW_EXTENT)))

        def subscripts(rank: int) -> tuple[str, ...]:
            subs = []
            for _ in range(rank):
                choice = rng.choice(iters + ["const"])
                if choice == "const":
                    subs.append(str(rng.randrange(n)))
                elif rng.random() < 0.5 and not triangular:
                    subs.append(f"{choice} + 0")
                else:
                    subs.append(choice)
            return tuple(subs)

        if reduction:
            out_rank = depth - 1  # innermost iterator reduces away
        else:
            out_rank = rng.randint(1, min(3, depth))
        out_name = f"T{s_index}"
        tensors.append((out_name, (n,) * out_rank))
        write_subs = tuple(iters[:out_rank])
        reads = []
        if windowed:
            # A shifted read through the window iterator; the write omits
            # ``r``, so the statement accumulates over the window.
            wrank = rng.choice((1, 2))
            subs = tuple([f"{iters[0]} + r"]
                         + [rng.choice(iters) for _ in range(wrank - 1)])
            reads.append((f"WIn{wrank}", subs))
            reads.append((out_name, write_subs))
        for _ in range(rng.randint(0, 2)):
            tensor, rank = rng.choice(written)
            reads.append((tensor, subscripts(rank)))
        if reduction:
            reads.append((out_name, write_subs))  # carried accumulator
            prior = [t for t, rank in written
                     if rank == 1 and t.startswith("T")]
            if prior:
                # Broadcast an earlier reduction's row vector back in —
                # the reduce -> broadcast -> reduce chain of attention.
                reads.append((prior[-1], (iters[0],)))
        elif not windowed and rng.random() < 0.5:
            reads.append((out_name, write_subs))  # accumulator style
        statements.append(StatementSpec(
            name=f"S{s_index}",
            bounds=tuple(bounds),
            writes=((out_name, write_subs),),
            reads=tuple(reads)))
        written.append((out_name, out_rank))

    return KernelSpec(
        name=f"fuzz{index:06d}",
        params=(("N", n),),
        tensors=tuple(tensors),
        statements=tuple(statements),
        weights_index=rng.randrange(len(WEIGHT_PRESETS)))


# -- minimization --------------------------------------------------------------


def _used_tensors(statements: tuple[StatementSpec, ...],
                  spec: KernelSpec) -> tuple[tuple[str, tuple[int, ...]], ...]:
    used = {t for s in statements for t, _ in s.writes + s.reads}
    return tuple(t for t in spec.tensors if t[0] in used)


def _candidates(spec: KernelSpec):
    """Strictly smaller specs, most aggressive first."""
    n = len(spec.statements)
    # Drop one statement (and any later reads of its output).
    for drop in range(n - 1, -1, -1):
        if n == 1:
            break
        dropped = spec.statements[drop].writes[0][0]
        kept = []
        for index, s in enumerate(spec.statements):
            if index == drop:
                continue
            reads = tuple(r for r in s.reads if r[0] != dropped)
            kept.append(replace(s, reads=reads))
        statements = tuple(kept)
        yield replace(spec, statements=statements,
                      tensors=_used_tensors(statements, spec))
    # Drop one read access.
    for s_index, s in enumerate(spec.statements):
        for r_index in range(len(s.reads)):
            reads = s.reads[:r_index] + s.reads[r_index + 1:]
            statements = (spec.statements[:s_index]
                          + (replace(s, reads=reads),)
                          + spec.statements[s_index + 1:])
            yield replace(spec, statements=statements,
                          tensors=_used_tensors(statements, spec))
    # Rectangularize triangular bounds.
    for s_index, s in enumerate(spec.statements):
        if any(hi != "N" for _, _, hi in s.bounds):
            bounds = tuple((it, lo, "N") for it, lo, _ in s.bounds)
            statements = (spec.statements[:s_index]
                          + (replace(s, bounds=bounds),)
                          + spec.statements[s_index + 1:])
            yield replace(spec, statements=statements)
    # Rebase nonzero lower bounds at zero.
    for s_index, s in enumerate(spec.statements):
        if any(lo != 0 for _, lo, _ in s.bounds):
            bounds = tuple((it, 0, hi) for it, _, hi in s.bounds)
            statements = (spec.statements[:s_index]
                          + (replace(s, bounds=bounds),)
                          + spec.statements[s_index + 1:])
            yield replace(spec, statements=statements)
    # Fall back to the default weight preset.
    if spec.weights_index != 0:
        yield replace(spec, weights_index=0)


def minimize_spec(spec: KernelSpec, still_fails) -> KernelSpec:
    """Greedy structural shrinking: repeatedly take the first strictly
    smaller candidate for which ``still_fails(spec)`` holds, until no
    candidate fails.  ``still_fails`` must be a pure predicate."""
    changed = True
    while changed:
        changed = False
        for candidate in _candidates(spec):
            ok = False
            try:
                ok = still_fails(candidate)
            except Exception:
                ok = True  # crashing on the candidate still reproduces a bug
            if ok:
                spec = candidate
                changed = True
                break
    return spec
