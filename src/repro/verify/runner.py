"""`repro verify` orchestration: goldens + oracle + metamorphic + corpus.

One entry point, :func:`run_verify`, drives the five verification engines
over the Table II networks:

* golden regression (:mod:`repro.verify.snapshot`) on each network's
  production-scale suite — exact snapshot comparison, or re-blessing with
  ``update_goldens=True``;
* per-operator-family goldens (``family_*.json``): fixed tiny kernels for
  depthwise conv, attention blocks and the 2D stencils, pinned under both
  golden variants plus the family's template baseline;
* the differential oracle (:mod:`repro.verify.oracle`): the analytic tier
  on the same production-scale operators, and the full exhaustive tier on
  the network's tiny-shape :func:`~repro.workloads.generator.verification_suite`;
* metamorphic relations (:mod:`repro.verify.metamorphic`) on the tiny
  suite;
* replay of the committed fuzz corpus (:mod:`repro.verify.fuzz`).

The report keeps problems per engine, so the CLI can print a usable
breakdown and CI can fail with the first offending section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.obs.runtime import get_obs
from repro.pipeline.akg import AkgPipeline
from repro.verify.fuzz import replay_corpus
from repro.verify.metamorphic import metamorphic_check
from repro.verify.oracle import differential_oracle
from repro.verify.snapshot import (GOLDEN_FAMILIES, GoldenConfig,
                                   build_family_golden, build_network_golden,
                                   compare_goldens, load_golden, write_golden)
from repro.workloads.generator import generate_network_suite, verification_suite
from repro.workloads.networks import NETWORKS


@dataclass(frozen=True)
class VerifyConfig:
    """What ``repro verify`` runs and against which pinned configuration."""

    networks: tuple[str, ...] = ()  # empty == all Table II networks
    seed: int = 0
    limit: int = 2                  # production-scale operators per network
    sample_blocks: int = 2
    max_threads: int = 256
    sim: str = ""                   # simulator backend; "" = REPRO_SIM
    update_goldens: bool = False
    goldens_dir: Optional[str] = None
    corpus_dir: Optional[str] = None
    check_goldens: bool = True
    check_families: bool = True
    check_oracle: bool = True
    check_metamorphic: bool = True
    check_corpus: bool = True

    def golden_config(self) -> GoldenConfig:
        return GoldenConfig(seed=self.seed, limit=self.limit,
                            sample_blocks=self.sample_blocks,
                            max_threads=self.max_threads)

    def network_names(self) -> tuple[str, ...]:
        return self.networks or tuple(NETWORKS)


@dataclass
class VerifyReport:
    """Per-engine problem lists plus what was (re)blessed."""

    problems: dict[str, list[str]] = field(default_factory=dict)
    updated_goldens: list[str] = field(default_factory=list)
    networks: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not any(self.problems.values())

    @property
    def total_problems(self) -> int:
        return sum(len(v) for v in self.problems.values())

    def add(self, section: str, problems: list[str]) -> None:
        if problems:
            self.problems.setdefault(section, []).extend(problems)

    def render(self) -> str:
        lines = [f"verify: networks={','.join(self.networks)} "
                 f"problems={self.total_problems}"]
        for path in self.updated_goldens:
            lines.append(f"  blessed {path}")
        for section in sorted(self.problems):
            lines.append(f"  [{section}] {len(self.problems[section])} "
                         f"problem(s)")
            for problem in self.problems[section]:
                lines.append(f"    {problem}")
        if self.ok:
            lines.append("  all checks passed")
        return "\n".join(lines)


def _verify_goldens(config: VerifyConfig, report: VerifyReport,
                    pipeline: AkgPipeline) -> None:
    golden_config = config.golden_config()
    for network in report.networks:
        try:
            actual = build_network_golden(network, golden_config,
                                          pipeline=pipeline)
        except ReproError as exc:
            # A perturbed/broken compile must read as a verification
            # failure, not abort the remaining networks.
            report.add(f"golden/{network}",
                       [f"golden build failed: {type(exc).__name__}: {exc}"])
            continue
        if config.update_goldens:
            report.updated_goldens.append(
                write_golden(actual, config.goldens_dir))
            continue
        expected = load_golden(network, config.goldens_dir)
        if expected is None:
            report.add(f"golden/{network}",
                       ["no golden committed; run `repro verify "
                        "--update-goldens` and review the diff"])
            continue
        report.add(f"golden/{network}", compare_goldens(expected, actual))


def _verify_families(config: VerifyConfig, report: VerifyReport,
                     pipeline: AkgPipeline) -> None:
    """Per-operator-family goldens: fixed tiny kernels, network-independent,
    pinning both golden variants and the family template baseline."""
    golden_config = config.golden_config()
    for family in GOLDEN_FAMILIES:
        section = f"family/{family}"
        try:
            actual = build_family_golden(family, golden_config,
                                         pipeline=pipeline)
        except ReproError as exc:
            report.add(section,
                       [f"family build failed: {type(exc).__name__}: {exc}"])
            continue
        if config.update_goldens:
            report.updated_goldens.append(
                write_golden(actual, config.goldens_dir))
            continue
        expected = load_golden(actual["network"], config.goldens_dir)
        if expected is None:
            report.add(section,
                       ["no golden committed; run `repro verify "
                        "--update-goldens` and review the diff"])
            continue
        report.add(section, compare_goldens(expected, actual))


def _verify_oracle(config: VerifyConfig, report: VerifyReport,
                   pipeline: AkgPipeline) -> None:
    for network in report.networks:
        # Analytic tier on the production-scale suite the goldens pin.
        suite = generate_network_suite(network, seed=config.seed,
                                       limit=config.limit)
        for _, kernel in suite:
            report.add(f"oracle/{network}",
                       differential_oracle(kernel, pipeline=pipeline))
        # Exhaustive tier on the tiny per-class stand-ins.
        for _, kernel in verification_suite(network):
            report.add(f"oracle/{network}",
                       differential_oracle(kernel, pipeline=pipeline,
                                           exhaustive=True))


def _verify_metamorphic(config: VerifyConfig, report: VerifyReport,
                        pipeline: AkgPipeline) -> None:
    for network in report.networks:
        for _, kernel in verification_suite(network):
            try:
                problems = metamorphic_check(kernel, pipeline=pipeline)
            except ReproError as exc:
                problems = [f"{kernel.name}: metamorphic compile failed: "
                            f"{type(exc).__name__}: {exc}"]
            report.add(f"metamorphic/{network}", problems)


def run_verify(config: Optional[VerifyConfig] = None) -> VerifyReport:
    """Run every enabled verification engine; see module docstring."""
    config = config or VerifyConfig()
    obs = get_obs()
    report = VerifyReport(networks=config.network_names())
    for network in report.networks:
        if network not in NETWORKS:
            raise ValueError(f"unknown network {network!r}; "
                             f"pick from {list(NETWORKS)}")
    pipeline = AkgPipeline(max_threads=config.max_threads,
                           sample_blocks=config.sample_blocks,
                           sim=config.sim)
    if config.check_goldens:
        _verify_goldens(config, report, pipeline)
    if config.check_families:
        _verify_families(config, report, pipeline)
    if config.check_oracle:
        _verify_oracle(config, report, pipeline)
    if config.check_metamorphic:
        _verify_metamorphic(config, report, pipeline)
    if config.check_corpus:
        report.add("corpus", replay_corpus(config.corpus_dir))
    if obs.metrics.enabled:
        obs.metrics.count("verify.runs")
        if not report.ok:
            obs.metrics.count("verify.problems", report.total_problems)
    return report
