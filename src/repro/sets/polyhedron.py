"""Polyhedra over named dimensions.

A :class:`Polyhedron` is a conjunction of affine constraints (built with the
:class:`repro.solver.problem.LinExpr` DSL) over an ordered list of named
dimensions.  It supports the operations the polyhedral stack needs:

* emptiness testing (integer, with a safe rational fallback),
* dimension elimination (exact substitution through equalities, otherwise
  Fourier–Motzkin),
* bound extraction for code generation,
* renaming / substitution / intersection.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from repro.obs.logutil import logger
from repro.obs.runtime import get_obs
from repro.solver.ilp import BranchLimitExceeded, integer_feasible
from repro.solver.lp import LinearProgram, LPStatus, solve_lp
from repro.solver.problem import Constraint, LinExpr, var

# Memoized emptiness answers, keyed by canonical form.  Bounded; cleared
# wholesale when it grows past the cap (simple and good enough here).
_EMPTINESS_CACHE: dict = {}


class Polyhedron:
    """A conjunction of affine constraints over named dimensions."""

    def __init__(self, dims: Sequence[str], constraints: Iterable[Constraint] = ()):
        self.dims: list[str] = list(dims)
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"duplicate dimensions in {self.dims}")
        self.constraints: list[Constraint] = []
        for c in constraints:
            self._check(c)
            self.constraints.append(c)

    def _check(self, constraint: Constraint) -> None:
        extra = constraint.expr.variables() - set(self.dims)
        if extra:
            raise ValueError(f"constraint uses unknown dimensions {sorted(extra)}")

    # -- construction -------------------------------------------------------

    @classmethod
    def universe(cls, dims: Sequence[str]) -> "Polyhedron":
        """The unconstrained set over ``dims``."""
        return cls(dims)

    def copy(self) -> "Polyhedron":
        return Polyhedron(self.dims, list(self.constraints))

    def with_constraints(self, constraints: Iterable[Constraint]) -> "Polyhedron":
        """A new polyhedron with extra constraints added."""
        out = self.copy()
        for c in constraints:
            out._check(c)
            out.constraints.append(c)
        return out

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """Conjunction; the other polyhedron's dims must be a subset."""
        missing = set(other.dims) - set(self.dims)
        if missing:
            raise ValueError(f"cannot intersect: unknown dims {sorted(missing)}")
        return self.with_constraints(other.constraints)

    def rename(self, mapping: dict[str, str]) -> "Polyhedron":
        """Rename dimensions according to ``mapping`` (identity elsewhere)."""
        new_dims = [mapping.get(d, d) for d in self.dims]
        new_constraints = []
        for c in self.constraints:
            coeffs = {mapping.get(n, n): v for n, v in c.expr.coeffs.items()}
            new_constraints.append(Constraint(LinExpr(coeffs, c.expr.const), c.sense))
        return Polyhedron(new_dims, new_constraints)

    # -- queries --------------------------------------------------------------

    def _to_lp(self) -> LinearProgram:
        index = {d: i for i, d in enumerate(self.dims)}
        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for c in self.constraints:
            row = [Fraction(0)] * len(self.dims)
            for name, coeff in c.expr.coeffs.items():
                row[index[name]] = coeff
            rhs = -c.expr.const
            if c.sense == "<=":
                a_ub.append(row)
                b_ub.append(rhs)
            elif c.sense == ">=":
                a_ub.append([-x for x in row])
                b_ub.append(-rhs)
            else:
                a_eq.append(row)
                b_eq.append(rhs)
        return LinearProgram(
            objective=[Fraction(0)] * len(self.dims),
            a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
            lower=[None] * len(self.dims), upper=[None] * len(self.dims),
        )

    def canonical(self) -> tuple:
        """A hashable canonical form (dims + sorted constraint signatures).

        Fractions are flattened to ``(numerator, denominator)`` int pairs —
        a unique representation whose tuples hash much faster than
        ``Fraction`` instances (whose ``__hash__`` computes a modular
        inverse each call)."""
        sigs = []
        for c in self.constraints:
            coeffs = tuple(sorted((n, v.numerator, v.denominator)
                                  for n, v in c.expr.coeffs.items()))
            sigs.append((c.sense, coeffs,
                         c.expr.const.numerator, c.expr.const.denominator))
        return (tuple(self.dims), tuple(sorted(sigs)))

    def is_empty(self, integer: bool = True, max_nodes: int = 2000) -> bool:
        """True iff the set contains no (integer) point.

        When the branch-and-bound node budget is exhausted on an unbounded
        integer problem we fall back to the rational answer, which can only
        report *non*-empty for an integer-empty set — a safe over-
        approximation for dependence analysis (at worst a spurious
        dependence is kept).  Results are memoized on the canonical form:
        the scheduler asks the same satisfaction questions many times.
        """
        key = (self.canonical(), integer)
        cached = _EMPTINESS_CACHE.get(key)
        if cached is not None:
            return cached
        result = self._is_empty_uncached(integer, max_nodes)
        if len(_EMPTINESS_CACHE) > 50_000:
            _EMPTINESS_CACHE.clear()
        _EMPTINESS_CACHE[key] = result
        return result

    def _is_empty_uncached(self, integer: bool, max_nodes: int) -> bool:
        lp = self._to_lp()
        result = solve_lp(lp)
        if result.status is LPStatus.INFEASIBLE:
            return True
        if not integer:
            return False
        try:
            return not integer_feasible(lp, max_nodes=max_nodes)
        except BranchLimitExceeded:
            # Rational-feasible but the integer search blew its node cap:
            # conservatively report non-empty (at worst a spurious
            # dependence survives).  Surface the give-up instead of
            # swallowing it silently — a set that triggers this repeatedly
            # is a scheduler-performance smell.
            obs = get_obs()
            if obs.metrics.enabled:
                obs.metrics.count("sets.emptiness_branch_limit")
            logger.warning(
                "emptiness test hit the %d-node branch-and-bound cap on a "
                "%d-dim set over %s (%d constraints); assuming non-empty",
                max_nodes, len(self.dims), self.dims, len(self.constraints))
            return False

    def contains(self, point: dict[str, Fraction]) -> bool:
        """True iff ``point`` (a full assignment) satisfies every constraint."""
        missing = set(self.dims) - set(point)
        if missing:
            raise KeyError(f"point misses dimensions {sorted(missing)}")
        return all(c.satisfied_by(point) for c in self.constraints)

    def sample(self, box: int = 1000) -> Optional[dict[str, Fraction]]:
        """An integer point with all coordinates in ``[-box, box]`` or None."""
        lp = self._to_lp()
        boxed = LinearProgram(
            objective=lp.objective,
            a_ub=lp.a_ub, b_ub=lp.b_ub, a_eq=lp.a_eq, b_eq=lp.b_eq,
            lower=[Fraction(-box)] * len(self.dims),
            upper=[Fraction(box)] * len(self.dims),
        )
        from repro.solver.ilp import solve_ilp
        result = solve_ilp(boxed)
        if result.status is not LPStatus.OPTIMAL:
            return None
        return dict(zip(self.dims, result.x))

    # -- elimination ------------------------------------------------------------

    def _normalized(self) -> list[LinExpr]:
        """All constraints as a list of ``expr >= 0`` forms (equalities give
        two opposite inequalities)."""
        out = []
        for c in self.constraints:
            if c.sense == ">=":
                out.append(c.expr)
            elif c.sense == "<=":
                out.append(-c.expr)
            else:
                out.append(c.expr)
                out.append(-c.expr)
        return out

    def eliminate(self, dim: str) -> "Polyhedron":
        """Project out ``dim``.

        If an equality constraint defines ``dim`` it is substituted exactly;
        otherwise Fourier–Motzkin combines lower and upper bounds.  The
        result is the rational shadow (exact for our use: loop bound
        computation on full-dimensional schedules).
        """
        if dim not in self.dims:
            raise ValueError(f"unknown dimension {dim!r}")

        # Exact substitution through an equality when available.
        for c in self.constraints:
            if c.sense == "==" and c.expr.coeffs.get(dim):
                coeff = c.expr.coeffs[dim]
                # dim = rest / (-coeff) where expr = coeff*dim + rest == 0.
                rest = LinExpr({n: v for n, v in c.expr.coeffs.items() if n != dim},
                               c.expr.const)
                substitution = rest * Fraction(-1, 1) * (1 / coeff)
                new_constraints = []
                for other in self.constraints:
                    if other is c:
                        continue
                    k = other.expr.coeffs.get(dim, Fraction(0))
                    if k == 0:
                        new_constraints.append(other)
                    else:
                        without = LinExpr(
                            {n: v for n, v in other.expr.coeffs.items() if n != dim},
                            other.expr.const)
                        new_constraints.append(
                            Constraint(without + k * substitution, other.sense))
                dims = [d for d in self.dims if d != dim]
                return Polyhedron(dims, new_constraints)

        lowers, uppers, others = [], [], []
        for expr in self._normalized():
            k = expr.coeffs.get(dim, Fraction(0))
            if k == 0:
                others.append(Constraint(expr, ">="))
            elif k > 0:
                # k*dim + rest >= 0  =>  dim >= -rest/k
                rest = LinExpr({n: v for n, v in expr.coeffs.items() if n != dim},
                               expr.const)
                lowers.append((-1 / k) * rest)
            else:
                # k*dim + rest >= 0 with k<0  =>  dim <= rest/(-k)
                rest = LinExpr({n: v for n, v in expr.coeffs.items() if n != dim},
                               expr.const)
                uppers.append((1 / -k) * rest)
        combined = list(others)
        for lo in lowers:
            for hi in uppers:
                combined.append(hi - lo >= 0)
        dims = [d for d in self.dims if d != dim]
        return Polyhedron(dims, combined)

    def eliminate_all(self, dims: Sequence[str]) -> "Polyhedron":
        """Project out several dimensions in order."""
        out = self
        for d in dims:
            out = out.eliminate(d)
        return out

    def bounds_of(self, dim: str) -> tuple[list[LinExpr], list[LinExpr]]:
        """Lower and upper affine bounds on ``dim`` from constraints that
        mention only ``dim`` and other dimensions of this set.

        Returns ``(lowers, uppers)``: lists of expressions over the other
        dimensions such that ``max(lowers) <= dim <= min(uppers)``.
        """
        lowers, uppers = [], []
        for expr in self._normalized():
            k = expr.coeffs.get(dim, Fraction(0))
            if k == 0:
                continue
            rest = LinExpr({n: v for n, v in expr.coeffs.items() if n != dim},
                           expr.const)
            if k > 0:
                lowers.append((-1 / k) * rest)
            else:
                uppers.append((1 / -k) * rest)
        return lowers, uppers

    # -- misc ----------------------------------------------------------------------

    def __repr__(self):
        body = " and ".join(repr(c) for c in self.constraints) or "true"
        return f"Polyhedron[{', '.join(self.dims)}]({body})"

    def __eq__(self, other):
        return (isinstance(other, Polyhedron)
                and self.dims == other.dims
                and self.constraints == other.constraints)
