"""Affine sets: named-dimension polyhedra with exact operations.

This is the (small) replacement for the subset of isl functionality the
paper's system needs: building dependence polyhedra, testing emptiness, and
eliminating dimensions to compute loop bounds during code generation.

* :class:`repro.sets.polyhedron.Polyhedron` — a conjunction of affine
  constraints over named dimensions.
* Fourier–Motzkin elimination (:meth:`Polyhedron.eliminate`) and exact bound
  extraction (:meth:`Polyhedron.bounds_of`).
* Emptiness via the exact ILP core (with a rational fallback that is a safe
  over-approximation for dependence testing).
"""

from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import LinExpr, Constraint, var

__all__ = ["Polyhedron", "LinExpr", "Constraint", "var"]
