"""Structured exception taxonomy for the compilation stack.

Every failure the pipeline can recover from derives from
:class:`ReproError`, so callers (the degradation ladder in
``repro.pipeline.akg``, the evaluation runner, the CLI) can catch one
base class and discriminate on the concrete type:

* :class:`SchedulingError` — the scheduler exhausted its backtracking
  ladder without a complete valid schedule.
* :class:`SolverTimeout` — a :class:`~repro.solver.budget.SolveBudget`
  (wall-clock deadline, pivot or node allowance) expired mid-solve.
* :class:`BranchLimitExceeded` — one branch-and-bound call explored more
  nodes than its per-call ``max_nodes`` cap.
* :class:`CodegenError` — AST generation could not order statement
  instances under the produced schedule.

This module is a leaf: it imports nothing from ``repro`` so every layer
(solver, sets, scheduler, codegen, pipeline, eval) can depend on it
without cycles.  The historical definition sites re-export these names
(``repro.schedule.scheduler.SchedulingError``,
``repro.solver.ilp.BranchLimitExceeded``,
``repro.codegen.generate.CodegenError``), so existing imports keep
working and ``isinstance`` checks agree across old and new spellings.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every recoverable compilation-stack failure."""


class SchedulingError(ReproError):
    """The scheduler could not construct a complete valid schedule."""


class SolverTimeout(ReproError):
    """A solve budget (deadline / pivot / node allowance) was exhausted."""


class BranchLimitExceeded(ReproError):
    """Branch and bound explored more nodes than one call allows."""


class CodegenError(ReproError):
    """AST generation failed to realize the schedule as loops."""
