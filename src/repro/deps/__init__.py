"""Polyhedral dependence analysis.

Dependences are represented exactly, as relations between pairs of statement
iterations (Section IV-A-1 of the paper): a
:class:`~repro.deps.relation.DependenceRelation` carries a polyhedron over
the renamed source/target iteration vectors and the kernel parameters.

:func:`~repro.deps.analysis.compute_dependences` builds all flow, anti,
output (and optionally input/read-after-read) relations, split by
lexicographic precedence level of the original 2d+1 execution order, so each
relation is a single convex set — the form the Farkas-based constraint
builders require.
"""

from repro.deps.relation import DependenceRelation, source_dim, target_dim
from repro.deps.analysis import compute_dependences
from repro.deps.graph import DependenceGraph

__all__ = [
    "DependenceRelation",
    "compute_dependences",
    "DependenceGraph",
    "source_dim",
    "target_dim",
]
