"""Dependence analysis: build all dependence relations of a kernel.

For every ordered pair of statements and every pair of conflicting accesses
(same tensor, at least one write — or two reads when input dependences are
requested), we build the conflict polyhedron

* both iterations in their domains,
* equal subscripts on every tensor dimension,
* source precedes target in the original interleaved (2d+1) order,

and split it by precedence level so each emitted
:class:`~repro.deps.relation.DependenceRelation` is convex.
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from itertools import product
from typing import Iterable

from repro.deps.relation import (
    DependenceRelation,
    rename_expr,
    source_dim,
    target_dim,
)
from repro.ir.kernel import Kernel
from repro.ir.signature import kernel_signature
from repro.ir.statement import Statement
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import Constraint, LinExpr, var

# Content-keyed memo over whole kernels, the same aliasing contract as the
# pipeline's ScheduleCache: every consumer reads relations through statement
# *names*, so an entry built from one kernel object serves every
# content-equal kernel.  Entries are immutable tuples; callers get a fresh
# list so mutating a result cannot corrupt the memo.
_DEPENDENCES_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_DEPENDENCES_MEMO_MAX = 512


def _interleaved_exprs(statement: Statement, suffix: str) -> list[LinExpr]:
    """The statement's original-order entries as LinExpr over renamed dims."""
    exprs = []
    for kind, value in statement.interleaved_entries():
        if kind == "beta":
            exprs.append(LinExpr(const=value))
        else:
            name = source_dim(value) if suffix == "s" else target_dim(value)
            exprs.append(LinExpr({name: Fraction(1)}))
    return exprs


def _conflict_polyhedron(source: Statement, target: Statement,
                         src_access, tgt_access,
                         params: Iterable[str]) -> Polyhedron:
    """Domain membership + subscript equality (no precedence yet)."""
    dims = ([source_dim(it) for it in source.iterators]
            + [target_dim(it) for it in target.iterators]
            + [p for p in params])
    poly = Polyhedron(dims)

    src_domain = source.domain.rename(
        {it: source_dim(it) for it in source.iterators})
    tgt_domain = target.domain.rename(
        {it: target_dim(it) for it in target.iterators})
    poly = poly.with_constraints(src_domain.constraints)
    poly = poly.with_constraints(tgt_domain.constraints)

    subscript_eqs: list[Constraint] = []
    for s_sub, t_sub in zip(src_access.subscripts, tgt_access.subscripts):
        s_expr = rename_expr(s_sub, source.iterators, "s")
        t_expr = rename_expr(t_sub, target.iterators, "t")
        subscript_eqs.append((s_expr - t_expr).eq(0))
    poly = poly.with_constraints(subscript_eqs)

    # Parameters are positive extents in this application domain.
    poly = poly.with_constraints([var(p) >= 1 for p in params])
    return poly


def _dependence_kind(src_is_write: bool, tgt_is_write: bool) -> str:
    if src_is_write and tgt_is_write:
        return "output"
    if src_is_write:
        return "flow"
    if tgt_is_write:
        return "anti"
    return "input"


def _split_by_level(base: Polyhedron, source: Statement,
                    target: Statement) -> Iterable[tuple[int, Polyhedron]]:
    """Split the conflict set by lexicographic precedence level.

    Level ``l`` keeps pairs whose interleaved dates agree on entries
    ``0..l-1`` and where the source's entry ``l`` is strictly smaller.
    Shorter date vectors are zero-padded (the paper pads schedules the same
    way in Section III-B).
    """
    src_entries = _interleaved_exprs(source, "s")
    tgt_entries = _interleaved_exprs(target, "t")
    length = max(len(src_entries), len(tgt_entries))
    src_entries += [LinExpr(const=0)] * (length - len(src_entries))
    tgt_entries += [LinExpr(const=0)] * (length - len(tgt_entries))

    prefix_eqs: list[Constraint] = []
    for level in range(length):
        strict = tgt_entries[level] - src_entries[level] - 1 >= 0
        candidate = base.with_constraints(prefix_eqs + [strict])
        if not candidate.is_empty():
            yield level, candidate
        equality = (src_entries[level] - tgt_entries[level]).eq(0)
        diff = src_entries[level] - tgt_entries[level]
        if diff.is_constant() and diff.const != 0:
            return  # entries can never be equal; no deeper level exists
        prefix_eqs.append(equality)


def compute_dependences(kernel: Kernel,
                        include_input: bool = False) -> list[DependenceRelation]:
    """All dependence relations of ``kernel``, split by precedence level.

    ``include_input`` adds read-after-read relations, which carry no
    validity requirement but sharpen the proximity (reuse distance) cost —
    the paper considers them for proximity (Section IV-A-2).
    """
    key = (kernel_signature(kernel), include_input)
    cached = _DEPENDENCES_MEMO.get(key)
    if cached is not None:
        _DEPENDENCES_MEMO.move_to_end(key)
        return list(cached)
    params = kernel.parameter_names
    relations: list[DependenceRelation] = []
    for source, target in product(kernel.statements, repeat=2):
        for src_access, tgt_access in product(source.accesses, target.accesses):
            if src_access.tensor.name != tgt_access.tensor.name:
                continue
            if not (src_access.is_write or tgt_access.is_write):
                if not include_input:
                    continue
            kind = _dependence_kind(src_access.is_write, tgt_access.is_write)
            shared_params = [p for p in params]
            base = _conflict_polyhedron(source, target, src_access,
                                        tgt_access, shared_params)
            if base.is_empty():
                continue
            for level, poly in _split_by_level(base, source, target):
                relations.append(DependenceRelation(
                    source=source, target=target, kind=kind,
                    polyhedron=poly, level=level,
                    source_access=src_access, target_access=tgt_access))
    _DEPENDENCES_MEMO[key] = tuple(relations)
    while len(_DEPENDENCES_MEMO) > _DEPENDENCES_MEMO_MAX:
        _DEPENDENCES_MEMO.popitem(last=False)
    return relations
