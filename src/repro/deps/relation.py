"""Dependence relations between statement iterations.

A relation ``delta_{S -> T}`` is a polyhedron over the dimensions

* ``src(it)`` for every iterator of the source statement,
* ``tgt(it)`` for every iterator of the target statement,
* the kernel parameters (shared, unrenamed),

containing exactly the pairs ``<s, t>`` such that iteration ``t`` of the
target depends on iteration ``s`` of the source.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.ir.access import Access
from repro.ir.statement import Statement
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import LinExpr


def source_dim(iterator: str) -> str:
    """Renamed dimension for a source iterator."""
    return f"{iterator}__s"


def target_dim(iterator: str) -> str:
    """Renamed dimension for a target iterator."""
    return f"{iterator}__t"


def rename_expr(expr: LinExpr, iterators: list[str], suffix: str) -> LinExpr:
    """Rename the iterator variables of ``expr`` with the given renamer."""
    renamer = source_dim if suffix == "s" else target_dim
    coeffs = {}
    for name, c in expr.coeffs.items():
        coeffs[renamer(name) if name in iterators else name] = c
    return LinExpr(coeffs, expr.const)


@dataclass
class DependenceRelation:
    """One convex dependence relation ``delta_{source -> target}``."""

    source: Statement
    target: Statement
    kind: str  # "flow" | "anti" | "output" | "input"
    polyhedron: Polyhedron
    level: int  # lexicographic precedence level in the interleaved order
    source_access: Access
    target_access: Access

    KINDS = ("flow", "anti", "output", "input")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"bad dependence kind {self.kind!r}")

    @property
    def tensor_name(self) -> str:
        return self.source_access.tensor.name

    @property
    def is_self(self) -> bool:
        return self.source.name == self.target.name

    # -- schedule-row queries ------------------------------------------------
    #
    # A schedule row phi is a LinExpr over a statement's iterators and the
    # parameters.  The scheduler asks whether phi_T - phi_S >= delta holds
    # for every pair in the relation; we answer exactly by testing whether
    # the negation intersected with the relation is (integer-)empty.

    def delta_expr(self, phi_source: LinExpr, phi_target: LinExpr) -> LinExpr:
        """``phi_T(t) - phi_S(s)`` over the relation's renamed dimensions."""
        src = rename_expr(phi_source, self.source.iterators, "s")
        tgt = rename_expr(phi_target, self.target.iterators, "t")
        return tgt - src

    def weakly_satisfied_by(self, phi_source: LinExpr, phi_target: LinExpr) -> bool:
        """True iff ``phi_T(t) - phi_S(s) >= 0`` on the whole relation."""
        delta = self.delta_expr(phi_source, phi_target)
        violation = self.polyhedron.with_constraints([delta <= -1])
        return violation.is_empty()

    def strongly_satisfied_by(self, phi_source: LinExpr, phi_target: LinExpr) -> bool:
        """True iff ``phi_T(t) - phi_S(s) >= 1`` on the whole relation."""
        delta = self.delta_expr(phi_source, phi_target)
        violation = self.polyhedron.with_constraints([delta <= 0])
        return violation.is_empty()

    def zero_distance_on(self, phi_source: LinExpr, phi_target: LinExpr) -> bool:
        """True iff ``phi_T(t) == phi_S(s)`` on the whole relation
        (the coincidence/space-partition condition of Lim & Lam)."""
        delta = self.delta_expr(phi_source, phi_target)
        above = self.polyhedron.with_constraints([delta >= 1])
        below = self.polyhedron.with_constraints([delta <= -1])
        return above.is_empty() and below.is_empty()

    def __str__(self):
        return (f"{self.kind}:{self.source.name}->{self.target.name}"
                f"@{self.tensor_name}(level {self.level})")
