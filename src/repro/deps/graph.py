"""Dependence graph over statements with SCC support.

Algorithm 1's last fallback separates strongly connected components of the
dependence graph by inserting scalar schedule dimensions; this module
provides the graph, Tarjan's SCC algorithm, and a topological order of the
components.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.deps.relation import DependenceRelation
from repro.ir.statement import Statement


class DependenceGraph:
    """Directed graph: statements as nodes, dependence relations as edges."""

    def __init__(self, statements: Sequence[Statement],
                 relations: Iterable[DependenceRelation]):
        self.statements = list(statements)
        self.names = [s.name for s in self.statements]
        self.edges: dict[str, set[str]] = {name: set() for name in self.names}
        for rel in relations:
            if rel.source.name not in self.edges or rel.target.name not in self.edges:
                raise ValueError(f"relation {rel} references unknown statements")
            if rel.source.name != rel.target.name:
                self.edges[rel.source.name].add(rel.target.name)

    def strongly_connected_components(self) -> list[list[str]]:
        """Tarjan's algorithm; components are returned in reverse
        topological order of the condensation (callees first)."""
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: dict[str, bool] = {}
        components: list[list[str]] = []

        def strongconnect(node: str):
            index[node] = index_counter[0]
            lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack[node] = True
            for succ in sorted(self.edges[node]):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == node:
                        break
                components.append(sorted(component))

        for name in self.names:
            if name not in index:
                strongconnect(name)
        return components

    def topological_components(self) -> list[list[str]]:
        """SCCs in topological order (sources of the condensation first).

        Tarjan emits components in reverse topological order of the
        condensation, so reversing yields dependence-respecting order.
        """
        return list(reversed(self.strongly_connected_components()))

    def component_of(self, name: str) -> list[str]:
        """The SCC containing statement ``name``."""
        for comp in self.strongly_connected_components():
            if name in comp:
                return comp
        raise KeyError(name)

    @property
    def n_nodes(self) -> int:
        return len(self.names)
