"""Algorithm 2: building influenced dimension scenarios (Section V).

The non-linear optimizer inspects each statement's accesses with concrete
tensor shapes and picks the shortest ordered list of innermost dimensions
that minimizes memory transactions — an *influenced dimension scenario*.
The cost function is the paper's:

    cost(W, D, A, L, d) = w1|V_w| + w2|V_r| + w3/M + w4|C| + w5*F*L/N

* ``V_w`` / ``V_r``: vectorizable store / load accesses (innermost position
  only) — stores need stride exactly 1 along ``d``; loads may be stride 0
  (broadcast scalars mix with vector types) or 1;
* ``M``: minimum nonzero stride over all accesses along ``d``;
* ``C``: accesses achieving that minimum stride;
* ``N``: trip count of ``d``; ``F`` = 1 iff ``N < L`` (thread limit).

The paper's best weights are ``w1=5, w2=3, w3=w4=w5=1`` (store vectorization
over load vectorization over short jumps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Sequence

from repro.ir.access import Access
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.obs.provenance import get_journal
from repro.solver.problem import var


@dataclass(frozen=True)
class CostWeights:
    """The weight vector W of Algorithm 2."""

    w1: float = 5.0  # vectorizable stores
    w2: float = 3.0  # vectorizable loads
    w3: float = 1.0  # inverse minimum stride
    w4: float = 1.0  # accesses at the minimum stride
    w5: float = 1.0  # thread-count contribution

    PAPER_DEFAULT = None  # set below


CostWeights.PAPER_DEFAULT = CostWeights()


@dataclass
class DimensionScenario:
    """One influenced dimension scenario for one statement.

    ``dims`` lists iterator names outermost-to-innermost; they are intended
    to become the *last* ``len(dims)`` schedule dimensions of the statement.
    """

    statement: str
    dims: list[str]
    score: float
    vector_width: int = 0  # 0 = innermost not vector-eligible

    @property
    def innermost(self) -> Optional[str]:
        return self.dims[-1] if self.dims else None

    @property
    def vectorizable(self) -> bool:
        return self.vector_width > 1


# Extents are asked for again and again with identical content: every
# scenario alternative re-ranks the same iterators, and the pipeline's
# schedule variants rebuild scenarios for the same statements.  The answer
# is a pure function of (domain, iterator set, iterator, parameters), so it
# is memoized process-wide on that content (same lifetime argument as the
# polyhedron emptiness cache: forked evaluation workers inherit it, keeping
# serial and parallel runs on identical code paths).
_EXTENT_CACHE: dict = {}
_EXTENT_CACHE_MAX = 20_000


def iterator_extent(statement: Statement, iterator: str,
                    params: dict[str, int]) -> int:
    """Trip count of one iterator (max over outer values for non-rectangular
    domains), computed from the domain bounds under concrete parameters."""
    key = (statement.domain.canonical(), tuple(statement.iterators),
           iterator, tuple(sorted(params.items())))
    cached = _EXTENT_CACHE.get(key)
    if cached is not None:
        return cached
    shadow = statement.domain.eliminate_all(
        [it for it in statement.iterators if it != iterator])
    lowers, uppers = shadow.bounds_of(iterator)
    env = {p: Fraction(v) for p, v in params.items()}
    # Remaining bound expressions may only mention parameters now.
    los = [e.evaluate(env) for e in lowers]
    his = [e.evaluate(env) for e in uppers]
    if not los or not his:
        raise ValueError(f"unbounded iterator {iterator} in {statement.name}")
    extent = int(min(his) - max(los)) + 1
    if len(_EXTENT_CACHE) >= _EXTENT_CACHE_MAX:
        _EXTENT_CACHE.clear()
    _EXTENT_CACHE[key] = extent
    return extent


def _vector_width_for(accesses: Sequence[Access], extent: int) -> int:
    """Largest usable vector width (4 or 2) for the given stride-1 accesses,
    or 0 when none is usable (paper condition (b): sizes 2 and 4 only)."""
    for width in (4, 2):
        if extent % width != 0:
            continue
        if all(width in a.tensor.dtype.vector_widths() for a in accesses):
            return width
    return 0


def stride_table(accesses: Sequence[Access],
                 iterators: Sequence[str]) -> dict[str, list]:
    """Per-iterator ``(access, stride)`` pairs, computed once per statement.

    Algorithm 2 re-ranks the same candidate set at every dimension position
    of every alternative, and each ranking re-derived every stride from the
    access's affine expression.  The strides only depend on the statement,
    so one table serves all of them."""
    return {it: [(a, a.stride_along(it)) for a in accesses]
            for it in iterators}


def dimension_cost(weights: CostWeights, accesses: Sequence[Access],
                   thread_limit: float, trip_count: int,
                   iterator: str, innermost: bool,
                   strides_by_iterator: Optional[dict[str, list]] = None
                   ) -> float:
    """The paper's cost() for scheduling ``iterator`` at one position."""
    if strides_by_iterator is not None:
        strides = strides_by_iterator[iterator]
    else:
        strides = [(a, a.stride_along(iterator)) for a in accesses]
    score = 0.0
    if innermost:
        v_w = [a for a, s in strides if a.is_write and s == 1]
        v_r = [a for a, s in strides if not a.is_write and s in (0, 1)]
        score += weights.w1 * len(v_w) + weights.w2 * len(v_r)
    nonzero = [(a, s) for a, s in strides if s > 0]
    if nonzero:
        minimum = min(s for _, s in nonzero)
        score += weights.w3 / minimum
        # C: accesses at the minimum stride — counted only when that stride
        # is a genuinely *short* jump (stays within one 32-byte transaction),
        # per the stated intent "favors as many references as possible with
        # short memory jumps"; counting references tied at a huge stride
        # would reward uniformly bad dimensions.
        short = [a for a, s in nonzero
                 if s == minimum and s * a.tensor.dtype.size_bytes <= 32]
        score += weights.w4 * len(short)
    # Thread-contribution term.  The paper prints w5*F*L/N, but that reading
    # explodes for tiny dimensions (a trip count of 8 under L=1024 would
    # score 128 and override every other criterion), contradicting both the
    # stated intent ("favors high contribution to the number of threads not
    # exceeding L") and the claim that w5=1 merely *orders* dimensions by
    # thread use.  We read it as w5*F*N/L: large-but-mappable dimensions
    # score close to w5, oversized ones score 0 (see DESIGN.md).
    if trip_count < thread_limit:
        score += weights.w5 * trip_count / thread_limit
    return score


def _best(weights: CostWeights, candidates: Sequence[str],
          accesses: Sequence[Access], thread_limit: float,
          extents: dict[str, int], innermost: bool,
          textual_order: Sequence[str],
          strides_by_iterator: Optional[dict[str, list]] = None
          ) -> list[tuple[str, float]]:
    """Candidates ranked by cost (descending), textual order breaking ties
    toward the original innermost loop."""
    ranked = []
    for it in candidates:
        score = dimension_cost(weights, accesses, thread_limit,
                               extents[it], it, innermost,
                               strides_by_iterator=strides_by_iterator)
        ranked.append((it, score))
    position = {it: k for k, it in enumerate(textual_order)}
    ranked.sort(key=lambda pair: (-pair[1], -position[pair[0]]))
    return ranked


def build_statement_scenarios(statement: Statement, params: dict[str, int],
                              weights: CostWeights = CostWeights(),
                              thread_limit: int = 1024,
                              max_alternatives: int = 3,
                              max_scenario_dims: int = 3) -> list[DimensionScenario]:
    """Algorithm 2 for one statement, with alternatives.

    The primary scenario follows the paper exactly (greedy best() from the
    innermost position outwards); alternatives restart from the next-best
    innermost choices, giving the constraint tree its lower-priority
    branches.
    """
    accesses = statement.accesses
    extents = {it: iterator_extent(statement, it, params)
               for it in statement.iterators}
    candidates = list(statement.iterators)
    if not candidates:
        return []

    journal = get_journal()
    strides = stride_table(accesses, candidates)
    inner_ranked = _best(weights, candidates, accesses, thread_limit,
                         extents, True, statement.iterators,
                         strides_by_iterator=strides)
    if journal.enabled:
        # Alternatives cut by the max_alternatives cap never grow a full
        # dimension chain; record them (innermost choice + its simulated
        # cost) so `repro explain` can show what pruning discarded.
        for rank, (inner, score) in enumerate(inner_ranked):
            if rank >= max_alternatives:
                journal.scenario(statement.name, [inner], score,
                                 vector_width=0, rank=rank, kept=False)
    scenarios: list[DimensionScenario] = []
    for inner_choice, inner_score in inner_ranked[:max_alternatives]:
        dims = [inner_choice]
        total = inner_score
        limit = thread_limit / max(extents[inner_choice], 1)
        while len(dims) < max_scenario_dims and len(dims) < len(candidates):
            remaining = [it for it in candidates if it not in dims]
            ranked = _best(weights, remaining, accesses, limit, extents,
                           False, statement.iterators,
                           strides_by_iterator=strides)
            choice, score = ranked[0]
            dims.insert(0, choice)
            total += score
            limit = limit / max(extents[choice], 1)
        stride1_writes = [a for a, s in strides[inner_choice]
                          if a.is_write and s == 1]
        stride1_reads = [a for a, s in strides[inner_choice]
                         if not a.is_write and s == 1]
        vectorizable = stride1_writes or stride1_reads
        width = _vector_width_for(stride1_writes + stride1_reads,
                                  extents[inner_choice]) if vectorizable else 0
        scenarios.append(DimensionScenario(
            statement=statement.name, dims=dims, score=total,
            vector_width=width))
        journal.scenario(statement.name, dims, total, vector_width=width,
                         rank=len(scenarios) - 1, kept=True)
    return scenarios


def build_scenarios(kernel: Kernel,
                    weights: CostWeights = CostWeights(),
                    thread_limit: int = 1024,
                    max_alternatives: int = 3) -> dict[str, list[DimensionScenario]]:
    """Algorithm 2 over all statements of a kernel."""
    out: dict[str, list[DimensionScenario]] = {}
    for statement in kernel.statements:
        out[statement.name] = build_statement_scenarios(
            statement, kernel.params, weights=weights,
            thread_limit=thread_limit, max_alternatives=max_alternatives)
    return out
