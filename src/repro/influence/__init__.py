"""Influence constraint trees and the non-linear optimizer that builds them.

* :mod:`repro.influence.tree` — the influence constraint tree abstraction of
  Section IV-A-4 (Fig. 3): an ordered tree of prioritized constraint sets
  over schedule coefficients, spanning multiple scheduling dimensions.
* :mod:`repro.influence.scenarios` — Algorithm 2: the non-linear cost model
  (``cost()``/``best()``) that picks *influenced dimension scenarios* for
  load/store vectorization on GPU (Section V).
* :mod:`repro.influence.builder` — translates scenarios into an influence
  constraint tree, adding higher-priority fusion variants and lower-priority
  relaxed variants, ordering siblings by the cost function.
"""

from repro.influence.tree import (
    InfluenceNode,
    InfluenceTree,
    TreeCursor,
    theta_const,
    theta_iter,
    theta_param,
)
from repro.influence.scenarios import (
    CostWeights,
    DimensionScenario,
    build_scenarios,
    dimension_cost,
)
from repro.influence.builder import build_influence_tree

__all__ = [
    "InfluenceNode",
    "InfluenceTree",
    "TreeCursor",
    "theta_iter",
    "theta_param",
    "theta_const",
    "CostWeights",
    "DimensionScenario",
    "build_scenarios",
    "dimension_cost",
    "build_influence_tree",
]
