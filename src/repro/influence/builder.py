"""Translate influenced dimension scenarios into an influence constraint tree.

Following Section V: a scenario pins the anchor statement's last schedule
dimensions to its chosen iterators (coefficient 1 for the chosen iterator,
0 for the other scenario iterators) and zeroes the scenario iterators on all
earlier dimensions.  For each scenario we emit:

* a higher-priority *fused* variant that additionally equates the schedule
  coefficients of same-named iterators across statements on the leading
  dimensions (influencing towards loop fusion), and
* a lower-priority *solo* variant carrying only the vectorization-related
  constraints (leaving the other statements free).

Branches from different scenarios share their common constraint prefixes
("the tree is built by considering common constraints to different
scenarios") and siblings are ordered by the cost function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.influence.scenarios import (
    CostWeights,
    DimensionScenario,
    build_scenarios,
)
from repro.influence.tree import (
    InfluenceNode,
    InfluenceTree,
    theta_const,
    theta_iter,
    theta_param,
)
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.obs.provenance import get_journal
from repro.solver.problem import Constraint, LinExpr, var


@dataclass
class _NodeSpec:
    """Blueprint of one tree node before trie merging."""

    constraints: list[Constraint] = field(default_factory=list)
    mark_vector: bool = False
    vector_width: int = 0
    allow_zero: frozenset = frozenset()
    label: str = ""

    def signature(self) -> tuple:
        sigs = tuple(sorted(
            (c.sense, tuple(sorted(c.expr.coeffs.items())), c.expr.const)
            for c in self.constraints))
        return (sigs, self.mark_vector, self.vector_width, self.allow_zero)


def _scenario_node_constraints(statement: Statement,
                               scenario: DimensionScenario,
                               depth: int) -> list[Constraint]:
    """Constraints the scenario imposes on tree depth ``depth`` for the
    anchor statement."""
    n_dims = statement.depth
    first_pinned = n_dims - len(scenario.dims)
    constraints: list[Constraint] = []
    if depth >= n_dims:
        return constraints
    index_of = {it: k for k, it in enumerate(statement.iterators)}
    if depth < first_pinned:
        for it in scenario.dims:
            constraints.append(
                var(theta_iter(statement.name, depth, index_of[it])).eq(0))
        return constraints
    chosen = scenario.dims[depth - first_pinned]
    constraints.append(
        var(theta_iter(statement.name, depth, index_of[chosen])).eq(1))
    for it in scenario.dims:
        if it != chosen:
            constraints.append(
                var(theta_iter(statement.name, depth, index_of[it])).eq(0))
    if depth == n_dims - 1:
        # The innermost dimension must be the pure chosen iterator so the
        # backend can rewrite it with vector types.
        for it in statement.iterators:
            if it not in scenario.dims:
                constraints.append(
                    var(theta_iter(statement.name, depth, index_of[it])).eq(0))
    return constraints


def _fusion_constraints(anchor: Statement, other: Statement,
                        depth: int) -> list[Constraint]:
    """Equate the coefficients of same-named iterators (and parameters) of
    ``other`` with the anchor's at one leading dimension."""
    if depth >= other.depth or depth >= anchor.depth:
        return []
    anchor_index = {it: k for k, it in enumerate(anchor.iterators)}
    other_index = {it: k for k, it in enumerate(other.iterators)}
    constraints = []
    for it, k_other in other_index.items():
        if it in anchor_index:
            lhs = var(theta_iter(other.name, depth, k_other))
            rhs = var(theta_iter(anchor.name, depth, anchor_index[it]))
            constraints.append((lhs - rhs).eq(0))
    return constraints


def _pick_anchor(kernel: Kernel) -> Statement:
    """The statement whose vectorization matters most: deepest, then most
    accesses, then latest in textual order (outputs tend to come last)."""
    return max(kernel.statements,
               key=lambda s: (s.depth, len(s.accesses),
                              kernel.statements.index(s)))


def build_influence_tree(kernel: Kernel,
                         scenarios: Optional[dict[str, list[DimensionScenario]]] = None,
                         weights: CostWeights = CostWeights(),
                         thread_limit: int = 1024,
                         max_branches: int = 8,
                         fuse_variants: bool = True) -> InfluenceTree:
    """Build the influence constraint tree for a kernel (Section V)."""
    if scenarios is None:
        scenarios = build_scenarios(kernel, weights=weights,
                                    thread_limit=thread_limit)
    anchor = _pick_anchor(kernel)
    anchor_scenarios = scenarios.get(anchor.name, [])
    max_depth = max(s.depth for s in kernel.statements)
    others = [s for s in kernel.statements if s.name != anchor.name]

    journal = get_journal()
    branches: list[list[_NodeSpec]] = []
    for rank, scenario in enumerate(anchor_scenarios):
        variants = ["fused", "solo"] if (fuse_variants and others) else ["solo"]
        for variant in variants:
            branch_label = f"{variant}/{scenario.innermost}"
            if len(branches) >= max_branches:
                journal.tree_branch(branch_label, rank=rank, kept=False)
                continue
            journal.tree_branch(branch_label, rank=rank, kept=True)
            chain: list[_NodeSpec] = []
            for depth in range(max_depth):
                spec = _NodeSpec(
                    label=f"{variant}/{scenario.innermost}/d{depth}")
                spec.constraints.extend(
                    _scenario_node_constraints(anchor, scenario, depth))
                if variant == "fused":
                    # When the anchor's row at this depth is pinned to an
                    # iterator a producer does not have, let that producer
                    # take a zero (scalar) row: it will sit at a constant
                    # time inside the consumer's loop (the Fig. 2(c) shape).
                    first_pinned = anchor.depth - len(scenario.dims)
                    chosen = None
                    if first_pinned <= depth < anchor.depth:
                        chosen = scenario.dims[depth - first_pinned]
                    exempt = set()
                    for other in others:
                        spec.constraints.extend(
                            _fusion_constraints(anchor, other, depth))
                        if chosen is not None and \
                                chosen not in other.iterators:
                            exempt.add(other.name)
                    spec.allow_zero = frozenset(exempt)
                if depth == anchor.depth - 1 and scenario.vectorizable:
                    spec.mark_vector = True
                    spec.vector_width = scenario.vector_width
                chain.append(spec)
            branches.append(chain)

    tree = InfluenceTree()
    for chain in branches:
        node = tree.root
        for spec in chain:
            existing = next(
                (child for child in node.children
                 if _NodeSpec(child.constraints, child.mark_vector,
                              child.vector_width,
                              child.allow_zero).signature()
                 == spec.signature()),
                None)
            if existing is not None:
                node = existing
                continue
            child = InfluenceNode(
                constraints=list(spec.constraints),
                mark_vector=spec.mark_vector,
                vector_width=spec.vector_width,
                allow_zero=spec.allow_zero,
                label=spec.label)
            node = node.add_child(child)
    tree.validate()
    return tree
