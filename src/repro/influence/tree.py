"""The influence constraint tree abstraction (Section IV-A-4, Fig. 3).

A node at depth ``d`` carries affine constraints over schedule coefficients
of *all* statements, from scheduling dimension 0 up to ``d``.  Constraints
are written over dimension-tagged coefficient names produced by
:func:`theta_iter` / :func:`theta_param` / :func:`theta_const`; the
scheduler substitutes already-fixed dimensions with their solved values and
maps current-dimension names onto the ILP's variables.

Sibling order encodes priority: the left-most child is the most desirable
alternative.  The scheduler walks the tree depth-first (Algorithm 1),
falling back to right siblings and ancestor siblings when a constraint set
makes the scheduling ILP infeasible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.solver.problem import Constraint, LinExpr


def theta_iter(stmt: str, dim: int, index: int) -> str:
    """Name of the coefficient of iterator ``index`` at schedule dim ``dim``."""
    return f"theta[{stmt}][{dim}].i{index}"


def theta_param(stmt: str, dim: int, param: str) -> str:
    """Name of the coefficient of parameter ``param`` at dim ``dim``."""
    return f"theta[{stmt}][{dim}].p[{param}]"


def theta_const(stmt: str, dim: int) -> str:
    """Name of the constant coefficient at dim ``dim``."""
    return f"theta[{stmt}][{dim}].0"


_THETA_RE = re.compile(r"^theta\[(?P<stmt>[^]]+)\]\[(?P<dim>\d+)\]\.(?P<what>.+)$")


def parse_theta(name: str) -> Optional[tuple[str, int, str]]:
    """Split a theta-name into (statement, dim, which); None if not one."""
    m = _THETA_RE.match(name)
    if not m:
        return None
    return m.group("stmt"), int(m.group("dim")), m.group("what")


@dataclass
class InfluenceNode:
    """One node of the influence constraint tree.

    Besides hard constraints a node may carry *injected objectives*
    (Section IV-A-4: "Our implementation also supports the specification of
    new objective functions in each node"): affine expressions over
    theta-names minimized lexicographically.  ``objectives`` is ordered by
    priority; each entry is inserted into the scheduler's objective list
    after the proximity levels and before the coefficient-sum levels, so an
    injected objective can steer choices the built-in cost leaves tied
    without overriding reuse-distance minimization.
    """

    constraints: list[Constraint] = field(default_factory=list)
    objectives: list[LinExpr] = field(default_factory=list)
    children: list["InfluenceNode"] = field(default_factory=list)
    require_parallel: bool = False   # meta: dimension must be coincident
    wants_extra_dim: bool = False    # meta: progression may be dropped
    mark_vector: bool = False        # meta: dimension prepared for vector types
    vector_width: int = 0            # lanes for the vector rewrite (2 or 4)
    # Statements allowed a zero/dependent row at this dimension (progression
    # constraints are skipped for them): used by fused variants when a
    # producer lacks the anchor's pinned iterator, so it can sit at a scalar
    # time inside the consumer's loop.
    allow_zero: frozenset = frozenset()
    label: str = ""

    def add_child(self, node: "InfluenceNode") -> "InfluenceNode":
        self.children.append(node)
        return node

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def max_dim_mentioned(self) -> int:
        """Largest schedule dimension referenced by this node's constraints
        or injected objectives (-1 when none)."""
        best = -1
        exprs = [c.expr for c in self.constraints] + list(self.objectives)
        for expr in exprs:
            for name in expr.variables():
                parsed = parse_theta(name)
                if parsed:
                    best = max(best, parsed[1])
        return best

    def validate(self, depth: int) -> None:
        """Constraints at depth ``d`` may mention dims ``0..d`` only."""
        if self.max_dim_mentioned() > depth:
            raise ValueError(
                f"node {self.label or '?'} at depth {depth} mentions "
                f"dimension {self.max_dim_mentioned()}")
        for child in self.children:
            child.validate(depth + 1)


class InfluenceTree:
    """An ordered tree of prioritized scheduling constraint sets."""

    def __init__(self, root: Optional[InfluenceNode] = None):
        self.root = root or InfluenceNode(label="root")

    def validate(self) -> None:
        """Check dimension discipline: the root (depth -1) carries no
        constraints; children of the root constrain dimension 0, etc."""
        if self.root.constraints:
            raise ValueError("the root node must not carry constraints")
        for child in self.root.children:
            child.validate(0)

    def cursor(self) -> Optional["TreeCursor"]:
        """A cursor at the highest-priority first-dimension node, or None
        for an empty tree."""
        if not self.root.children:
            return None
        return TreeCursor(self, [0])

    def n_nodes(self) -> int:
        def count(node: InfluenceNode) -> int:
            return 1 + sum(count(c) for c in node.children)
        return count(self.root) - 1  # exclude the root

    def pretty(self) -> str:
        lines: list[str] = []

        def render(node: InfluenceNode, depth: int, priority: int):
            indent = "  " * depth
            label = node.label or f"C[{depth},{priority}]"
            metas = []
            if node.require_parallel:
                metas.append("parallel")
            if node.wants_extra_dim:
                metas.append("extra-dim")
            meta = f" <{','.join(metas)}>" if metas else ""
            lines.append(f"{indent}{label}{meta}")
            for c in node.constraints:
                lines.append(f"{indent}  | {c}")
            for p, child in enumerate(node.children):
                render(child, depth + 1, p)

        for p, child in enumerate(self.root.children):
            render(child, 0, p)
        return "\n".join(lines)


class TreeCursor:
    """A position in the tree during the scheduler's depth-first walk.

    The path is a list of child indexes from the root; depth == len(path)-1
    is the schedule dimension the current node constrains.
    """

    def __init__(self, tree: InfluenceTree, path: list[int]):
        self.tree = tree
        self.path = list(path)
        self.node  # validate the path eagerly

    @property
    def node(self) -> InfluenceNode:
        node = self.tree.root
        for idx in self.path:
            node = node.children[idx]
        return node

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def right_sibling(self) -> Optional["TreeCursor"]:
        """The next alternative at the same depth, or None."""
        parent = self.tree.root
        for idx in self.path[:-1]:
            parent = parent.children[idx]
        nxt = self.path[-1] + 1
        if nxt < len(parent.children):
            return TreeCursor(self.tree, self.path[:-1] + [nxt])
        return None

    def first_child(self) -> Optional["TreeCursor"]:
        if self.node.children:
            return TreeCursor(self.tree, self.path + [0])
        return None

    def ancestor_right_sibling(self) -> Optional["TreeCursor"]:
        """The closest right sibling of an ancestor (Algorithm 1 line 26),
        scanning from the nearest ancestor upward."""
        for cut in range(len(self.path) - 1, 0, -1):
            parent = self.tree.root
            for idx in self.path[:cut - 1]:
                parent = parent.children[idx]
            nxt = self.path[cut - 1] + 1
            if nxt < len(parent.children):
                return TreeCursor(self.tree, self.path[:cut - 1] + [nxt])
        return None

    def __repr__(self):
        return f"TreeCursor({self.path})"
