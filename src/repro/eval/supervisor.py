"""Supervised parallel evaluation: heartbeats, hung-task kill, retry.

The plain ``ProcessPoolExecutor``/``as_completed`` loop the runner used
through PR 7 had two failure modes a long evaluation cannot afford: a
*hung* worker (a degenerate solve that slipped past the budget, a kernel
driver stall, an injected ``worker.hang``) parks ``as_completed``
forever, and a *dead* worker breaks the whole pool.  This module
replaces it with an explicitly supervised worker fleet:

* **Heartbeats.**  Every worker owns a shared (``multiprocessing.Value``)
  timestamp it touches when it picks a task up and again before each
  variant compilation (the ``beat`` callback threaded into
  :func:`~repro.eval.runner.evaluate_operator`).  The supervisor reads it
  lock-protected; both sides use ``time.monotonic()``, which on Linux is
  the system-wide ``CLOCK_MONOTONIC`` and therefore comparable across
  processes.
* **Hung-task kill.**  A busy worker whose heartbeat is older than the
  task timeout (:func:`resolve_task_timeout`: explicit
  ``task_timeout_s``, else derived from ``deadline_ms`` with headroom,
  else disabled) is terminated (SIGTERM, then SIGKILL) and replaced; the
  in-flight task is requeued.
* **Bounded retry with deterministic backoff.**  A task lost to a kill
  or a worker death is retried up to ``config.retries`` times; retry
  ``n`` becomes runnable ``retry_backoff_s * 2**(n-1)`` seconds after
  the loss (pure function of the attempt number — no jitter, so runs
  are reproducible).  A task whose retries are exhausted by worker
  *deaths* falls back to one serial evaluation in the parent (deaths are
  result-invariant: the compilation model is deterministic, and injected
  crashes only fire inside workers).  A task exhausted by *hangs* is
  never run in the parent — a computation that hung N workers would hang
  the supervisor too — and is reported as a failed operator instead,
  which is what keeps a pathological run terminating rather than wedged.

Everything the supervisor does is surfaced in
``resilience.supervisor.*`` counters (kills, worker deaths, respawns,
retries, backoff seconds, gave-up tasks) kept in their own metric
snapshot so every other counter stays identical between serial and
parallel runs, and per operator in ``OperatorResult.attempts`` /
``OperatorResult.kill_reason``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Optional

from repro.obs import logger
from repro.pipeline.akg import VARIANTS

# Supervisor poll interval: the latency of hang detection and task
# assignment, traded against parent wake-ups.
POLL_S = 0.05

# With only --deadline-ms to go on, a task may legitimately spend the
# whole budget on each of the four variants plus measurement; the
# timeout leaves generous headroom above that so it only fires on tasks
# the budget machinery failed to bound.
TASK_TIMEOUT_HEADROOM = 8.0
MIN_DERIVED_TIMEOUT_S = 10.0

# How long a worker gets to exit after SIGTERM before SIGKILL.
_TERM_GRACE_S = 1.0


def resolve_task_timeout(config) -> Optional[float]:
    """The effective per-task timeout for an evaluation config.

    Explicit ``task_timeout_s`` wins (``0`` means "derive"); otherwise a
    ``deadline_ms`` solve budget implies a generous per-task bound
    (variants x deadline x headroom, floored); with neither, hang
    detection is off — matching the pre-supervisor behavior of waiting
    indefinitely.
    """
    if config.task_timeout_s:
        return config.task_timeout_s
    if config.deadline_ms:
        per_attempt = config.deadline_ms / 1000.0
        return max(MIN_DERIVED_TIMEOUT_S,
                   len(VARIANTS) * per_attempt * TASK_TIMEOUT_HEADROOM)
    return None


def retry_backoff(backoff_s: float, attempt: int) -> float:
    """Deterministic exponential backoff before retry ``attempt`` (>=1)."""
    if attempt <= 0:
        return 0.0
    return backoff_s * (2.0 ** (attempt - 1))


@dataclass
class _Task:
    """One ``(network, index)`` evaluation and its retry history."""

    network: str
    index: int
    attempt: int = 0
    not_before: float = 0.0          # monotonic instant it may run
    reasons: list = field(default_factory=list)  # one entry per loss


class _Worker:
    """One supervised worker process plus its parent-side handles."""

    def __init__(self, ctx, config):
        self.conn, child = ctx.Pipe(duplex=True)
        self.heartbeat = ctx.Value("d", 0.0)
        self.proc = ctx.Process(target=_worker_main,
                                args=(child, self.heartbeat, config),
                                daemon=True)
        self.proc.start()
        child.close()
        self.task: Optional[_Task] = None
        self.assigned_at = 0.0

    def last_beat(self) -> float:
        with self.heartbeat.get_lock():
            beat = self.heartbeat.value
        return max(beat, self.assigned_at)

    def assign(self, task: _Task, now: float) -> None:
        self.conn.send(("task", task.network, task.index, task.attempt))
        self.task = task
        self.assigned_at = now

    def stop(self) -> None:
        """Cooperative shutdown; escalates to SIGTERM/SIGKILL."""
        try:
            self.conn.send(("stop",))
        except OSError:
            pass
        self.proc.join(timeout=_TERM_GRACE_S)
        self.kill()

    def kill(self) -> None:
        """Hard stop: SIGTERM, short grace, then SIGKILL."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=_TERM_GRACE_S)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join()
        try:
            self.conn.close()
        except OSError:
            pass


def _worker_main(conn, heartbeat, config) -> None:
    """Worker loop: receive tasks, evaluate, send results, beat."""
    from repro.eval import runner
    runner._mark_worker_process()

    def beat() -> None:
        with heartbeat.get_lock():
            heartbeat.value = time.monotonic()

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message[0] != "task":
            return
        _, network, index, attempt = message
        beat()
        try:
            index, result, metrics = runner._evaluate_index(
                network, config, index, attempt=attempt, beat=beat)
            payload = ("done", network, index, attempt, result, metrics)
        except BaseException as exc:  # a genuine bug, not a typed failure
            payload = ("error", network, index, attempt,
                       f"{type(exc).__name__}: {exc}")
        beat()
        try:
            conn.send(payload)
        except OSError:
            return


class SupervisedRunError(RuntimeError):
    """A worker raised an unexpected (non-``ReproError``) exception."""


def run_supervised(tasks: list[tuple[str, int]], config, jobs: int,
                   suites: dict,
                   on_complete: Callable,
                   ) -> dict[str, dict]:
    """Evaluate ``(network, index)`` tasks under supervision.

    ``on_complete(network, index, result, metrics)`` fires once per task
    in completion order (results are deterministic regardless of that
    order).  Returns ``{network: supervisor-counter dict}`` with entries
    only for networks whose tasks needed intervention, so a healthy run
    contributes no extra counters and serial = parallel parity holds.
    """
    from repro.eval import runner

    timeout = resolve_task_timeout(config)
    counters: dict[str, dict] = {}

    def count(network: str, name: str, value: float = 1.0) -> None:
        bucket = counters.setdefault(network, {})
        bucket[name] = bucket.get(name, 0.0) + value

    ctx = multiprocessing.get_context()
    pending: list[_Task] = [_Task(network, index) for network, index in tasks]
    fallback: list[_Task] = []   # death-exhausted: retried serially in parent
    gave_up: list[_Task] = []    # hang-exhausted: reported failed
    workers: list[_Worker] = []
    initial_fleet = min(jobs, len(pending))
    spawned = 0

    def lose(task: _Task, reason: str, now: float) -> None:
        """Requeue a lost task, or route it to its terminal handling."""
        task.reasons.append(reason)
        if task.attempt < config.retries:
            task.attempt += 1
            delay = retry_backoff(config.retry_backoff_s, task.attempt)
            task.not_before = now + delay
            pending.append(task)
            count(task.network, "resilience.supervisor.retries")
            count(task.network, "resilience.supervisor.backoff_seconds",
                  delay)
            logger.warning("task %s[%d] lost (%s); retry %d/%d in %.2fs",
                           task.network, task.index, reason, task.attempt,
                           config.retries, delay)
        elif reason == "hung":
            gave_up.append(task)
            count(task.network, "resilience.supervisor.gave_up")
            logger.error("task %s[%d] hung %d time(s); giving up",
                         task.network, task.index, len(task.reasons))
        else:
            fallback.append(task)
            logger.warning("task %s[%d] lost workers %d time(s) (%s); "
                           "will retry serially in the parent",
                           task.network, task.index, len(task.reasons),
                           reason)

    def finish(task: _Task, result, metrics) -> None:
        result.attempts = task.attempt + 1
        if task.reasons:
            result.kill_reason = ";".join(task.reasons)
        on_complete(task.network, task.index, result, metrics)

    try:
        while pending or any(w.task is not None for w in workers):
            now = time.monotonic()

            # Reap workers that died on their own (crash, OOM-kill).
            for worker in list(workers):
                if worker.proc.is_alive():
                    continue
                workers.remove(worker)
                if worker.task is not None:
                    count(worker.task.network,
                          "resilience.supervisor.worker_deaths")
                    lose(worker.task, f"worker-died(exit "
                         f"{worker.proc.exitcode})", now)
                worker.kill()  # close handles

            # Keep the fleet sized to the outstanding work.
            busy = sum(1 for w in workers if w.task is not None)
            target = min(jobs, busy + len(pending))
            while len(workers) < target:
                workers.append(_Worker(ctx, config))
                spawned += 1
                if spawned > initial_fleet:
                    network = pending[0].network if pending else tasks[0][0]
                    count(network, "resilience.supervisor.respawns")

            # Assign ready tasks to idle workers.
            for worker in workers:
                if worker.task is not None or not pending:
                    continue
                ready = next((t for t in pending if t.not_before <= now),
                             None)
                if ready is None:
                    break
                try:
                    worker.assign(ready, now)
                except OSError:
                    # Worker died between liveness check and send; the
                    # task was never charged an attempt.
                    worker.kill()
                    workers.remove(worker)
                    continue
                pending.remove(ready)

            # Wait for results (or the next backoff instant).
            conns = {w.conn: w for w in workers if w.task is not None}
            if conns:
                ready_conns = _connection_wait(list(conns), timeout=POLL_S)
            else:
                wake = [t.not_before for t in pending if t.not_before > now]
                time.sleep(min([POLL_S] + [max(0.0, w - now) for w in wake]))
                ready_conns = []

            for conn in ready_conns:
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    continue  # death handled by the reaper next iteration
                kind = message[0]
                task, worker.task = worker.task, None
                if kind == "done":
                    _, _, index, _, result, metrics = message
                    finish(task, result, metrics)
                else:
                    _, network, index, _, detail = message
                    raise SupervisedRunError(
                        f"worker evaluating {network}[{index}] raised: "
                        f"{detail}")

            # Hung-task detection: kill and requeue.
            if timeout is None:
                continue
            now = time.monotonic()
            for worker in list(workers):
                task = worker.task
                if task is None or now - worker.last_beat() <= timeout:
                    continue
                logger.warning("killing worker on %s[%d]: no heartbeat "
                               "for %.1fs (task timeout %.1fs)",
                               task.network, task.index,
                               now - worker.last_beat(), timeout)
                worker.kill()
                workers.remove(worker)
                count(task.network, "resilience.supervisor.kills")
                lose(task, "hung", now)
    finally:
        for worker in workers:
            worker.stop()

    # Death-exhausted tasks: one serial attempt in the parent, with a
    # fresh pipeline (hence a fresh SolveBudget) per attempt so a retried
    # operator never inherits an already-charged deadline.
    for task in sorted(fallback, key=lambda t: (t.network, t.index)):
        count(task.network, "resilience.worker_retries")
        index, result, metrics = runner._evaluate_index_fresh(
            task.network, config, task.index)
        finish(task, result, metrics)

    # Hang-exhausted tasks become failed operators: the run terminates
    # with the loss on the record instead of wedging.
    for task in sorted(gave_up, key=lambda t: (t.network, t.index)):
        op_class, kernel = suites[task.network][task.index]
        result = runner.OperatorResult(
            name=kernel.name, op_class=op_class, times={}, influenced=False,
            vectorized=False, launches={}, status="failed",
            error=f"worker hung {len(task.reasons)} time(s); killed after "
                  f"task timeout ({timeout:g}s), retries exhausted")
        finish(task, result, {})
    return counters
