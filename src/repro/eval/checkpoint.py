"""Crash-safe incremental evaluation checkpoints.

A ``table2`` or ``profile`` run appends one *partial record* per
completed operator to ``<runs-dir>/checkpoints/<eval_key>.jsonl``.  The
file follows the run store's durability discipline (:mod:`repro.obs.store`):
append-only JSONL, one whole line per ``os.write`` on an ``O_APPEND``
descriptor, schema-versioned records, torn tail lines (a writer killed
mid-append) silently skipped by readers.  Killing the parent at any
instant therefore loses at most the operator in flight.

Addressing is by content, not by position:

* ``eval_key`` (the file name) hashes the command, network list and the
  *result-affecting* configuration — seed, limits, sampling, arch,
  weights, deadline, resolved solver backend.  Execution knobs (jobs,
  retries, timeouts, tracing) are deliberately excluded: they cannot
  change results, so a run resumed with different parallelism still
  matches.
* Each record carries a per-operator ``content_key`` hashing the
  kernel's canonical IR signature (plus its generated name) together
  with the configuration hash.  ``--resume`` reloads completed
  operators by that key and schedules only the remainder; because the
  compilation model is deterministic and each record stores the full
  operator result plus its metric snapshot, a resumed run merges to a
  report bitwise-identical to an uninterrupted one.

Checkpointing is best-effort by design: an append failure (ENOSPC, the
``store.append`` fault site) is logged and counted, the checkpoint
disables itself so a torn half-line can never be glued to a later
record, and the evaluation carries on — a broken disk costs resumability,
never results.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
from dataclasses import asdict
from typing import Optional

from repro.faultinject import fault_action
from repro.ir.signature import kernel_signature
from repro.obs.logutil import logger
from repro.obs.store import content_hash, default_store_root
from repro.schedule.scheduler import SchedulerStats
from repro.solver.backend import resolve_backend

CHECKPOINT_SCHEMA_VERSION = 1
CHECKPOINT_DIR = "checkpoints"


class CheckpointError(ValueError):
    """A checkpoint reference could not be resolved."""


def evaluation_scope(config) -> dict:
    """The result-affecting slice of an :class:`EvaluationConfig`.

    Everything that can change an ``OperatorResult`` is in; everything
    that only changes *how* the run executes (jobs, retries, timeouts,
    tracing, checkpointing itself) is out.
    """
    return {
        "seed": config.seed,
        "limit": config.limit_per_network,
        "sample_blocks": config.sample_blocks,
        "max_threads": config.max_threads,
        "arch": asdict(config.arch),
        "weights": asdict(config.weights),
        "deadline_ms": config.deadline_ms,
        "verify": config.verify,
        "templates": config.templates,
        "solver": resolve_backend(config.solver).name,
    }


def _kernel_content_hash(kernel) -> str:
    """SHA-256 prefix over the kernel's canonical IR signature + name.

    The IR signature deliberately excludes the kernel name (caches must
    share content-equal kernels); the checkpoint deliberately includes
    it, so two content-identical operators in one run restore under
    their own names.
    """
    text = f"{kernel.name}|{kernel_signature(kernel)!r}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# -- operator (de)serialization ----------------------------------------------


def operator_to_record(result) -> dict:
    """A JSON-safe rendering of an ``OperatorResult`` that restores
    losslessly (unlike ``as_record``, scheduler stats are kept)."""
    record = result.as_record()
    record["attempts"] = result.attempts
    record["kill_reason"] = result.kill_reason
    record["scheduler_stats"] = {
        variant: [asdict(s) for s in stats]
        for variant, stats in result.scheduler_stats.items()}
    return record


def operator_from_record(record: dict):
    """Rebuild an ``OperatorResult`` from :func:`operator_to_record`."""
    from repro.eval.runner import OperatorResult
    stats = {variant: [SchedulerStats(**entry) for entry in entries]
             for variant, entries in record.get("scheduler_stats",
                                                {}).items()}
    return OperatorResult(
        name=record["name"],
        op_class=record["op_class"],
        times=dict(record.get("times", {})),
        influenced=record.get("influenced", False),
        vectorized=record.get("vectorized", False),
        launches=dict(record.get("launches", {})),
        scheduler_stats=stats,
        status=record.get("status", "ok"),
        degradation=dict(record.get("degradation", {})),
        error=record.get("error", ""),
        verify_problems=list(record.get("verify_problems", ())),
        schedule_hashes=dict(record.get("schedule_hashes", {})),
        attempts=record.get("attempts", 1),
        kill_reason=record.get("kill_reason", ""),
    )


# -- the checkpoint ----------------------------------------------------------


class EvalCheckpoint:
    """One run's incremental checkpoint file (see the module docstring)."""

    def __init__(self, command: str, networks: list[str], scope: dict,
                 root: Optional[str] = None):
        self.command = command
        self.config_key = content_hash(scope)
        self.eval_key = content_hash({
            "command": command, "networks": list(networks),
            "config": self.config_key})
        self.root = os.path.join(root or default_store_root(),
                                 CHECKPOINT_DIR)
        self.path = os.path.join(self.root, f"{self.eval_key}.jsonl")
        self.restore_path = self.path
        self.counters: dict[str, float] = {}
        self._broken = False

    @classmethod
    def for_eval(cls, command: str, networks: list[str], config,
                 root: Optional[str] = None) -> "EvalCheckpoint":
        """The checkpoint for a ``table2``-style evaluation config."""
        return cls(command, networks, evaluation_scope(config), root=root)

    def use_ref(self, ref: str) -> None:
        """Restore from an explicit checkpoint id (unique prefix) instead
        of the configuration-derived file; appends still go to the
        derived file, so a foreign checkpoint is never polluted."""
        if ref in ("", "auto"):
            return
        matches = sorted(glob.glob(os.path.join(self.root,
                                                f"{ref}*.jsonl")))
        if not matches:
            raise CheckpointError(
                f"no checkpoint matching {ref!r} under {self.root}")
        if len(matches) > 1:
            names = [os.path.basename(m) for m in matches]
            raise CheckpointError(
                f"checkpoint prefix {ref!r} is ambiguous: {names}")
        self.restore_path = matches[0]

    def _count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def operator_key(self, kernel) -> str:
        return content_hash({"config": self.config_key,
                             "kernel": _kernel_content_hash(kernel)})

    # -- writing -------------------------------------------------------------

    def record(self, network: str, index: int, kernel,
               payload: dict) -> None:
        """Append one completed-operator record (best-effort)."""
        if self._broken:
            return
        record = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "eval_key": self.eval_key,
            "network": network,
            "index": index,
            "content_key": self.operator_key(kernel),
        }
        record.update(payload)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            self._append_line(line, key=record["content_key"])
        except OSError as exc:
            # Disable rather than keep appending: a short write followed
            # by another append would glue two records into one torn
            # line and lose both.
            self._broken = True
            self._count("resilience.checkpoint.append_errors")
            logger.warning("checkpoint append failed (%s); further "
                           "checkpointing disabled for this run", exc)
            return
        self._count("resilience.checkpoint.appends")

    def _append_line(self, line: str, key: str) -> None:
        action = fault_action("store.append", kind="checkpoint",
                              path=os.path.basename(self.path), key=key)
        if action == "enospc":
            import errno
            raise OSError(errno.ENOSPC, "injected ENOSPC (fault plan)")
        os.makedirs(self.root, exist_ok=True)
        data = line.encode()
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            if action == "short-write":
                import errno
                os.write(fd, data[:max(1, len(data) // 2)])
                raise OSError(errno.EIO, "injected short write "
                              "(fault plan)")
            # One write on O_APPEND: concurrent appenders (two workers'
            # parents sharing a store) emit whole lines, never torn ones.
            os.write(fd, data)
        finally:
            os.close(fd)

    def record_operator(self, network: str, index: int, kernel,
                        result, metrics: dict) -> None:
        """Checkpoint one completed ``OperatorResult`` + metric snapshot."""
        self.record(network, index, kernel, {
            "operator": operator_to_record(result),
            "metrics": metrics})

    # -- reading -------------------------------------------------------------

    def stored_records(self) -> dict[str, dict]:
        """``content_key -> record`` for every intact stored line (later
        appends win; torn tails and future schema majors are skipped)."""
        out: dict[str, dict] = {}
        try:
            handle = open(self.restore_path, "rb")
        except OSError:
            return out
        with handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn line from a killed writer
                if record.get("schema", 0) > CHECKPOINT_SCHEMA_VERSION:
                    continue
                key = record.get("content_key", "")
                if key:
                    out[key] = record
        return out

    def restore_operators(self, kernels: dict) -> dict:
        """Match stored records against ``{(network, index): kernel}``.

        Returns ``{(network, index): (OperatorResult, metrics dict)}``
        for every task whose content key has a completed record.
        """
        stored = self.stored_records()
        restored = {}
        for (network, index), kernel in kernels.items():
            record = stored.get(self.operator_key(kernel))
            if record is None or "operator" not in record:
                continue
            restored[(network, index)] = (
                operator_from_record(record["operator"]),
                record.get("metrics") or {})
        if restored:
            self._count("resilience.checkpoint.restored", len(restored))
            logger.info("resumed %d completed operator(s) from "
                        "checkpoint %s", len(restored),
                        os.path.basename(self.restore_path))
        return restored
