"""Formatting of Table I and Table II in the paper's layout."""

from __future__ import annotations

from typing import Iterable

from repro.eval.runner import NetworkResult
from repro.workloads.networks import table1_rows


def format_table1() -> str:
    """TABLE I: target end-to-end workloads."""
    rows = table1_rows()
    width_name = max(len(r[0]) for r in rows) + 2
    width_type = 6
    lines = [
        "TABLE I — TARGET END-TO-END WORKLOADS",
        f"{'Network':<{width_name}}{'Type':<{width_type}}Dataset",
        "-" * (width_name + width_type + 24),
    ]
    for name, kind, dataset in rows:
        lines.append(f"{name:<{width_name}}{kind:<{width_type}}{dataset}")
    return "\n".join(lines)


def table2_row(result: NetworkResult) -> dict:
    """One Table II row as a dict (times in milliseconds)."""
    def ms(variant, influenced_only=False):
        return result.total_time(variant, influenced_only) * 1e3

    return {
        "network": result.network,
        "total": result.count_total,
        "vec": result.count_vec,
        "infl_count": result.count_influenced,
        "all": {
            "isl_ms": ms("isl"),
            "tvm_ms": ms("tvm"),
            "novec_ms": ms("novec"),
            "infl_ms": ms("infl"),
            "template_ms": ms("template"),
            "speedup_tvm": result.speedup("tvm"),
            "speedup_novec": result.speedup("novec"),
            "speedup_infl": result.speedup("infl"),
            "speedup_template": result.speedup("template"),
        },
        "influenced": {
            "isl_ms": ms("isl", True),
            "tvm_ms": ms("tvm", True),
            "novec_ms": ms("novec", True),
            "infl_ms": ms("infl", True),
            "template_ms": ms("template", True),
            "speedup_tvm": result.speedup("tvm", True),
            "speedup_novec": result.speedup("novec", True),
            "speedup_infl": result.speedup("infl", True),
            "speedup_template": result.speedup("template", True),
        },
    }


def format_table2(results: Iterable[NetworkResult]) -> str:
    """TABLE II: fused operators execution times, in the paper's layout."""
    header1 = (f"{'':12s}|{'Operator Count':^17s}|"
               f"{'Execution Time (ms) — All':^41s}|{'Speedup':^26s}|"
               f"{'Exec Time (ms) — Influenced':^41s}|{'Speedup':^26s}")
    header2 = (f"{'Network':<12s}|{'total':>5s}{'vec':>5s}{'infl':>6s} |"
               f"{'isl':>8s}{'tvm':>8s}{'novec':>8s}{'infl':>8s}"
               f"{'tmpl':>8s} |"
               f"{'tvm':>6s}{'novec':>7s}{'infl':>6s}{'tmpl':>6s} |"
               f"{'isl':>8s}{'tvm':>8s}{'novec':>8s}{'infl':>8s}"
               f"{'tmpl':>8s} |"
               f"{'tvm':>6s}{'novec':>7s}{'infl':>6s}{'tmpl':>6s}")
    lines = ["TABLE II — FUSED OPERATORS EXECUTION TIMES",
             header1, header2, "-" * len(header2)]
    for result in results:
        row = table2_row(result)
        a, i = row["all"], row["influenced"]
        lines.append(
            f"{row['network']:<12s}|{row['total']:>5d}{row['vec']:>5d}"
            f"{row['infl_count']:>6d} |"
            f"{a['isl_ms']:>8.2f}{a['tvm_ms']:>8.2f}"
            f"{a['novec_ms']:>8.2f}{a['infl_ms']:>8.2f}"
            f"{a['template_ms']:>8.2f} |"
            f"{a['speedup_tvm']:>6.2f}{a['speedup_novec']:>7.2f}"
            f"{a['speedup_infl']:>6.2f}{a['speedup_template']:>6.2f} |"
            f"{i['isl_ms']:>8.2f}{i['tvm_ms']:>8.2f}"
            f"{i['novec_ms']:>8.2f}{i['infl_ms']:>8.2f}"
            f"{i['template_ms']:>8.2f} |"
            f"{i['speedup_tvm']:>6.2f}{i['speedup_novec']:>7.2f}"
            f"{i['speedup_infl']:>6.2f}{i['speedup_template']:>6.2f}")
    return "\n".join(lines)


def degradation_row(result: NetworkResult) -> dict:
    """Per-network resilience counts (ok/degraded/failed + activations)."""
    counters = result.metrics.get("counters", {}) if result.metrics else {}
    return {
        "network": result.network,
        "ok": result.count_ok,
        "degraded": result.count_degraded,
        "failed": result.count_failed,
        "fallbacks": int(counters.get("resilience.fallback", 0)),
        "worker_retries": int(counters.get("resilience.worker_retries", 0)),
    }


def format_degradation_summary(results: Iterable[NetworkResult]) -> str:
    """Per-network degradation summary: how many operators compiled at
    full quality, how many rode the fallback ladder, how many failed —
    so quality loss is visible next to the Table II numbers."""
    results = list(results)
    lines = ["degradation summary (per network):",
             f"  {'network':<14}{'ok':>5}{'degraded':>10}{'failed':>8}"
             f"{'fallbacks':>11}{'retries':>9}"]
    for result in results:
        row = degradation_row(result)
        lines.append(f"  {row['network']:<14}{row['ok']:>5}"
                     f"{row['degraded']:>10}{row['failed']:>8}"
                     f"{row['fallbacks']:>11}{row['worker_retries']:>9}")
    for result in results:
        for op in result.operators:
            if op.status == "degraded":
                rungs = ", ".join(f"{v}={level}" for v, level
                                  in sorted(op.degradation.items()))
                lines.append(f"    {result.network}/{op.name}: "
                             f"degraded ({rungs})")
            elif op.status == "failed":
                lines.append(f"    {result.network}/{op.name}: "
                             f"FAILED ({op.error})")
    return "\n".join(lines)


def geomean_speedup(results: Iterable[NetworkResult],
                    variant: str = "infl") -> float:
    """Geometric-mean speedup over networks (the paper's 1.7x headline)."""
    import math
    speedups = [r.speedup(variant) for r in results]
    speedups = [s for s in speedups if s == s and s > 0]  # drop NaN
    if not speedups:
        return float("nan")
    return math.exp(sum(math.log(s) for s in speedups) / len(speedups))
