"""Report generation: dump evaluation runs as CSV and markdown.

Turns a set of :class:`~repro.eval.runner.NetworkResult` into durable
artifacts: a per-operator CSV (one row per fused operator with all four
variant times and flags), a markdown summary in the EXPERIMENTS.md style,
and a JSON blob for downstream tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping

from repro.eval.runner import NetworkResult
from repro.eval.tables import (
    format_degradation_summary,
    geomean_speedup,
    table2_row,
)
from repro.pipeline.passes import format_pass_summary, merge_metric_dicts

CSV_FIELDS = [
    "network", "operator", "op_class", "influenced", "vectorized",
    "isl_us", "tvm_us", "novec_us", "infl_us", "template_us",
    "speedup_tvm", "speedup_novec", "speedup_infl", "speedup_template",
    "launches_isl", "launches_infl", "launches_template",
    "status", "degradation",
]


def _us(op, variant: str):
    time = op.times.get(variant)
    return round(time * 1e6, 2) if time is not None else ""


def _speedup(op, variant: str):
    value = op.speedup(variant)
    return round(value, 3) if value == value else ""  # blank for NaN


def operators_csv(results: Iterable[NetworkResult]) -> str:
    """One CSV row per fused operator (failed variants leave blank cells)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for result in results:
        for op in result.operators:
            writer.writerow({
                "network": result.network,
                "operator": op.name,
                "op_class": op.op_class,
                "influenced": int(op.influenced),
                "vectorized": int(op.vectorized),
                "isl_us": _us(op, "isl"),
                "tvm_us": _us(op, "tvm"),
                "novec_us": _us(op, "novec"),
                "infl_us": _us(op, "infl"),
                "template_us": _us(op, "template"),
                "speedup_tvm": _speedup(op, "tvm"),
                "speedup_novec": _speedup(op, "novec"),
                "speedup_infl": _speedup(op, "infl"),
                "speedup_template": _speedup(op, "template"),
                "launches_isl": op.launches.get("isl", ""),
                "launches_infl": op.launches.get("infl", ""),
                "launches_template": op.launches.get("template", ""),
                "status": op.status,
                "degradation": ";".join(f"{v}={level}" for v, level
                                        in sorted(op.degradation.items())),
            })
    return buffer.getvalue()


def markdown_summary(results: Iterable[NetworkResult]) -> str:
    """A markdown table in the EXPERIMENTS.md comparison style."""
    results = list(results)
    lines = [
        "| Network | total | vec | infl | isl (ms) | tvm | novec | infl "
        "| template | speedup infl | speedup tmpl |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        row = table2_row(result)
        a = row["all"]
        lines.append(
            f"| {row['network']} | {row['total']} | {row['vec']} "
            f"| {row['infl_count']} | {a['isl_ms']:.2f} | {a['tvm_ms']:.2f} "
            f"| {a['novec_ms']:.2f} | {a['infl_ms']:.2f} "
            f"| {a['template_ms']:.2f} "
            f"| {a['speedup_infl']:.2f}x | {a['speedup_template']:.2f}x |")
    lines.append("")
    lines.append(f"geomean influenced speedup: "
                 f"{geomean_speedup(results):.2f}x")
    if any(r.count_degraded or r.count_failed for r in results):
        lines.append("")
        lines.append("```")
        lines.append(format_degradation_summary(results))
        lines.append("```")
    merged = merge_metric_dicts([r.metrics for r in results if r.metrics])
    if merged.get("passes"):
        lines.append("")
        lines.append("```")
        lines.append(format_pass_summary(merged))
        lines.append("```")
    return "\n".join(lines)


def json_dump(results: Mapping[str, NetworkResult]) -> str:
    """A machine-readable dump of the whole run."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "row": table2_row(result),
            "pass_metrics": {k: v for k, v in result.metrics.items()
                             if k != "events"},
            "operators": [
                {
                    "name": op.name,
                    "class": op.op_class,
                    "influenced": op.influenced,
                    "vectorized": op.vectorized,
                    "times_us": {v: t * 1e6 for v, t in op.times.items()},
                    "launches": op.launches,
                    "status": op.status,
                    "degradation": op.degradation,
                    "error": op.error,
                }
                for op in result.operators
            ],
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_report(results: Mapping[str, NetworkResult], directory) -> list:
    """Write csv/markdown/json artifacts into ``directory``; returns paths."""
    from pathlib import Path
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ordered = [results[name] for name in results]
    paths = []
    for filename, content in (
            ("operators.csv", operators_csv(ordered)),
            ("summary.md", markdown_summary(ordered)),
            ("results.json", json_dump(results))):
        path = directory / filename
        path.write_text(content)
        paths.append(path)
    return paths
