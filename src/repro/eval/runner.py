"""Run fused-operator suites through the four compilation variants.

For every operator we compile/measure ``isl``, ``tvm``, ``novec`` and
``infl`` and record:

* the four execution times (from the GPU model),
* whether influence modified the compiled result (``influenced``: the
  normalized code signatures of ``isl`` and ``infl`` differ),
* whether the influenced result uses explicit vector types (``vec``).

These are the quantities Table II aggregates.

Suites can be evaluated in parallel (``jobs > 1``): operators are farmed
out to a :class:`~concurrent.futures.ProcessPoolExecutor`, each worker
regenerating its kernels deterministically from ``(network, seed, limit)``
so no IR crosses process boundaries, and the per-worker pass metrics are
merged into one report.  The compilation model is deterministic, so the
parallel path produces bitwise-identical results to the serial one.

Failures are isolated per operator: a typed compilation failure
(:class:`~repro.errors.ReproError`) marks that operator's
:attr:`OperatorResult.status` ``failed`` (or ``degraded`` when the
pipeline's fallback ladder produced a lower-quality result) instead of
aborting the run, and operators lost to a dead worker process
(``BrokenProcessPool``) are retried serially in the parent — fault
decisions are content-keyed (:mod:`repro.faultinject`), so serial and
parallel runs produce identical degradation records.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ReproError
from repro.faultinject import fault_action
from repro.gpu.arch import GpuArch, V100
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.obs import logger
from repro.pipeline.akg import AkgPipeline, VARIANTS
from repro.pipeline.passes import PassContext, merge_metric_dicts
from repro.schedule.scheduler import SchedulerOptions
from repro.solver.budget import SolveBudget
from repro.solver.dedup import SolveCache, use_solve_cache
from repro.solver.warmstart import WarmStartPool, use_warm_pool
from repro.workloads.generator import generate_network_suite
from repro.workloads.networks import NETWORKS

OPERATOR_STATUSES = ("ok", "degraded", "failed")


@dataclass
class EvaluationConfig:
    """Knobs for an evaluation run."""

    seed: int = 0
    limit_per_network: Optional[int] = None  # None = the paper's full counts
    sample_blocks: int = 8
    max_threads: int = 256
    arch: GpuArch = V100
    weights: CostWeights = field(default_factory=CostWeights)
    jobs: int = 1          # worker processes; 1 = serial (deterministic tests)
    trace: bool = False    # record structured pass-trace events
    deadline_ms: Optional[float] = None  # wall-clock solve budget per attempt
    verify: bool = False   # run the differential oracle on every operator
    solver: str = ""       # backend name; "" = REPRO_SOLVER env / default


@dataclass
class OperatorResult:
    """Per-operator measurements across the four variants."""

    name: str
    op_class: str
    times: dict  # variant -> seconds (absent for failed variants)
    influenced: bool
    vectorized: bool
    launches: dict  # variant -> number of kernel launches
    scheduler_stats: dict = field(default_factory=dict)
    status: str = "ok"          # one of OPERATOR_STATUSES
    degradation: dict = field(default_factory=dict)  # variant -> rung
    error: str = ""             # "variant: ExcType: message; ..." when failed
    verify_problems: list = field(default_factory=list)  # oracle findings
    schedule_hashes: dict = field(default_factory=dict)  # variant -> hash

    def speedup(self, variant: str) -> float:
        base = self.times.get("isl")
        other = self.times.get(variant)
        if base is None or not other:
            return float("nan")
        return base / other

    def as_record(self) -> dict:
        """The run-store representation of this operator (see
        :mod:`repro.obs.store`)."""
        record = {
            "name": self.name,
            "op_class": self.op_class,
            "times": dict(self.times),
            "influenced": self.influenced,
            "vectorized": self.vectorized,
            "launches": dict(self.launches),
            "status": self.status,
            "schedule_hashes": dict(self.schedule_hashes),
        }
        if self.degradation:
            record["degradation"] = dict(self.degradation)
        if self.error:
            record["error"] = self.error
        if self.verify_problems:
            record["verify_problems"] = list(self.verify_problems)
        return record


@dataclass
class NetworkResult:
    """All operator results of one network."""

    network: str
    operators: list[OperatorResult]
    metrics: dict = field(default_factory=dict)  # merged pass metrics

    # -- Table II aggregates -------------------------------------------------

    @property
    def count_total(self) -> int:
        return len(self.operators)

    @property
    def count_vec(self) -> int:
        return sum(1 for op in self.operators if op.vectorized)

    @property
    def count_influenced(self) -> int:
        return sum(1 for op in self.operators if op.influenced)

    # -- resilience aggregates ----------------------------------------------

    @property
    def count_ok(self) -> int:
        return sum(1 for op in self.operators if op.status == "ok")

    @property
    def count_degraded(self) -> int:
        return sum(1 for op in self.operators if op.status == "degraded")

    @property
    def count_failed(self) -> int:
        return sum(1 for op in self.operators if op.status == "failed")

    def _ops_with(self, *variants: str,
                  influenced_only: bool = False) -> list[OperatorResult]:
        return [op for op in self.operators
                if all(v in op.times for v in variants)
                and (not influenced_only or op.influenced)]

    def total_time(self, variant: str, influenced_only: bool = False) -> float:
        ops = self._ops_with(variant, influenced_only=influenced_only)
        return sum(op.times[variant] for op in ops)

    def speedup(self, variant: str, influenced_only: bool = False) -> float:
        # Both totals over the same operators (those with both variants
        # measured), so partially-failed operators do not bias the ratio.
        ops = self._ops_with("isl", variant, influenced_only=influenced_only)
        base = sum(op.times["isl"] for op in ops)
        other = sum(op.times[variant] for op in ops)
        return base / other if other else float("nan")


def _make_pipeline(config: EvaluationConfig) -> AkgPipeline:
    options = None
    if config.deadline_ms or config.solver:
        budget = (SolveBudget(deadline_s=config.deadline_ms / 1000.0)
                  if config.deadline_ms else None)
        options = SchedulerOptions(budget=budget, solver=config.solver)
    return AkgPipeline(arch=config.arch, max_threads=config.max_threads,
                       sample_blocks=config.sample_blocks,
                       weights=config.weights,
                       scheduler_options=options,
                       trace=config.trace)


def evaluate_operator(pipeline: AkgPipeline, name: str, op_class: str,
                      kernel: Kernel, verify: bool = False) -> OperatorResult:
    """Compile and measure one fused operator under all four variants.

    Typed failures are contained per variant: a variant whose whole
    degradation ladder failed is simply absent from ``times`` and the
    operator is marked ``failed``; a variant produced by a lower ladder
    rung marks it ``degraded``.

    With ``verify`` the differential oracle (:mod:`repro.verify.oracle`)
    runs after the variant loop against the pipeline's cached compiles;
    any finding lands in :attr:`OperatorResult.verify_problems` and marks
    the operator ``failed`` — a measurement whose semantics drifted from
    the baseline is worse than one that never compiled.
    """
    times: dict[str, float] = {}
    launches: dict[str, int] = {}
    signatures: dict[str, str] = {}
    stats: dict[str, list] = {}
    hashes: dict[str, str] = {}
    degradation: dict[str, str] = {}
    errors: list[str] = []
    vectorized = False
    # One solver reuse scope across all four variants of this operator:
    # identical constraint systems (e.g. novec vs infl) replay from the
    # dedup cache, and near-identical ones (per-cluster and per-statement
    # sub-problems of the same kernel) share warm-start incumbent bounds.
    # Scoping at the operator keeps serial and parallel evaluation
    # metric-identical — either way an operator is evaluated wholly inside
    # one process, with the scope freshly installed.
    with use_solve_cache(SolveCache()), use_warm_pool(WarmStartPool()):
        for variant in VARIANTS:
            try:
                compiled = pipeline.compile(kernel, variant)
            except ReproError as exc:
                errors.append(f"{variant}: {type(exc).__name__}: {exc}")
                pipeline.context.count("resilience.variant_failures")
                logger.warning("operator %s variant %s failed: %s",
                               name, variant, exc)
                continue
            timing = pipeline.measure(compiled)
            times[variant] = timing.time
            launches[variant] = compiled.n_launches
            signatures[variant] = compiled.signature()
            stats[variant] = compiled.scheduler_stats
            hashes[variant] = compiled.schedule_hash
            if compiled.degradation != "none":
                degradation[variant] = compiled.degradation
            if variant == "infl":
                vectorized = compiled.vectorized
        verify_problems: list[str] = []
        if verify and not errors:
            from repro.verify.oracle import differential_oracle
            verify_problems = differential_oracle(kernel, pipeline=pipeline)
    status = ("failed" if errors or verify_problems
              else ("degraded" if degradation else "ok"))
    return OperatorResult(
        name=name,
        op_class=op_class,
        times=times,
        influenced="isl" in signatures and "infl" in signatures
                   and signatures["isl"] != signatures["infl"],
        vectorized=vectorized,
        launches=launches,
        scheduler_stats=stats,
        status=status,
        degradation=degradation,
        error="; ".join(errors),
        verify_problems=verify_problems,
        schedule_hashes=hashes,
    )


# -- parallel workers --------------------------------------------------------

# Per-worker-process state: the suites are deterministic functions of
# (network, seed, limit), and one long-lived pipeline keeps the schedule
# cache warm across the operators a worker picks up.  Pipelines are keyed
# by the config's repr so retries in the parent — where several configs
# may pass through one process — never reuse a mismatched pipeline.
_WORKER_SUITES: dict[tuple, list] = {}
_WORKER_PIPELINES: dict[str, AkgPipeline] = {}

# True only in pool worker processes (set by the pool initializer), so
# injected worker crashes never fire during the parent's serial retry.
_IS_WORKER = False


def _mark_worker_process() -> None:
    global _IS_WORKER
    _IS_WORKER = True


def _worker_suite(network: str, seed: int, limit: Optional[int]) -> list:
    key = (network, seed, limit)
    if key not in _WORKER_SUITES:
        _WORKER_SUITES[key] = generate_network_suite(network, seed=seed,
                                                     limit=limit)
    return _WORKER_SUITES[key]


def _evaluate_index(network: str, config: EvaluationConfig,
                    index: int) -> tuple:
    """Worker entry point: evaluate operator ``index`` of one network.

    Returns ``(index, OperatorResult, pass-metrics dict)``; the context is
    reset per operator so the caller can merge snapshots without
    double-counting."""
    pipeline_key = repr(config)
    if pipeline_key not in _WORKER_PIPELINES:
        _WORKER_PIPELINES[pipeline_key] = _make_pipeline(config)
    pipeline = _WORKER_PIPELINES[pipeline_key]
    pipeline.session.context = PassContext(trace=config.trace)
    op_class, kernel = _worker_suite(network, config.seed,
                                     config.limit_per_network)[index]
    if _IS_WORKER and fault_action("worker", network=network,
                                   kernel=kernel.name) == "crash":
        os._exit(17)  # simulate a hard worker death (OOM-kill, segfault)
    result = evaluate_operator(pipeline, kernel.name, op_class, kernel,
                               verify=config.verify)
    return index, result, pipeline.context.as_dict()


def _evaluate_parallel(tasks: list[tuple[str, int]],
                       config: EvaluationConfig, jobs: int,
                       progress: Optional[Callable[[str], None]]
                       ) -> dict[str, tuple[list, list]]:
    """Run ``(network, index)`` tasks over a process pool.

    Returns ``{network: (operator results in suite order, metric dicts)}``.
    Tasks lost to a dead worker (``BrokenProcessPool``) are retried
    serially in the parent after the pool winds down; the compilation
    model is deterministic, so retried items produce the same results a
    healthy worker would have.
    """
    per_network: dict[str, tuple[list, list]] = {}
    counts: dict[str, int] = {}
    for network, _ in tasks:
        counts[network] = counts.get(network, 0) + 1
    for network, count in counts.items():
        per_network[network] = ([None] * count, [])
    broken: list[tuple[str, int]] = []
    with ProcessPoolExecutor(max_workers=jobs,
                             initializer=_mark_worker_process) as pool:
        futures = {}
        try:
            for network, index in tasks:
                futures[pool.submit(_evaluate_index, network, config,
                                    index)] = (network, index)
        except BrokenProcessPool:
            # Pool died mid-submission: everything not yet submitted goes
            # straight to the serial retry list.
            submitted = set(futures.values())
            broken.extend(t for t in tasks if t not in submitted)
        for future in as_completed(futures):
            network, index = futures[future]
            try:
                index, result, metrics = future.result()
            except BrokenProcessPool:
                broken.append((network, index))
                continue
            results, metric_dicts = per_network[network]
            results[index] = result
            metric_dicts.append(metrics)
            if progress:
                progress(f"{network}: {result.name}")
    if broken:
        logger.warning("worker pool broke; retrying %d operator(s) "
                       "serially in the parent", len(broken))
        for network, index in sorted(broken):
            index, result, metrics = _evaluate_index(network, config, index)
            results, metric_dicts = per_network[network]
            results[index] = result
            metric_dicts.append(metrics)
            if progress:
                progress(f"{network}: {result.name} (retried)")
        # Surface the retries in the merged report.  Kept in its own
        # snapshot: every other counter stays identical to a serial run.
        first = broken[0][0]
        per_network[first][1].append(
            {"counters": {"resilience.worker_retries": float(len(broken))}})
    return per_network


# -- entry points ------------------------------------------------------------


def evaluate_network(network: str,
                     config: Optional[EvaluationConfig] = None,
                     progress: Optional[Callable[[str], None]] = None,
                     jobs: Optional[int] = None) -> NetworkResult:
    """Evaluate one Table I network's fused-operator suite.

    ``jobs`` overrides ``config.jobs``; with more than one job the suite is
    evaluated concurrently with results identical to the serial path.
    """
    config = config or EvaluationConfig()
    n_jobs = config.jobs if jobs is None else jobs
    suite = generate_network_suite(network, seed=config.seed,
                                   limit=config.limit_per_network)
    if n_jobs and n_jobs > 1:
        tasks = [(network, index) for index in range(len(suite))]
        per_network = _evaluate_parallel(tasks, config, n_jobs, progress)
        results, metric_dicts = per_network[network]
        return NetworkResult(network=network, operators=results,
                             metrics=merge_metric_dicts(metric_dicts))
    pipeline = _make_pipeline(config)
    results = []
    for op_class, kernel in suite:
        if progress:
            progress(f"{network}: {kernel.name}")
        results.append(evaluate_operator(pipeline, kernel.name, op_class,
                                         kernel, verify=config.verify))
    return NetworkResult(network=network, operators=results,
                         metrics=pipeline.context.as_dict())


def evaluate_all(config: Optional[EvaluationConfig] = None,
                 networks: Optional[list[str]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 jobs: Optional[int] = None) -> dict[str, NetworkResult]:
    """Evaluate every network (the full Table II).

    With ``jobs > 1`` all operators of all requested networks share one
    process pool, so small suites do not serialize behind large ones.
    Per-operator failures are contained in ``OperatorResult.status``; this
    function only raises for non-compilation errors (genuine bugs).
    """
    config = config or EvaluationConfig()
    n_jobs = config.jobs if jobs is None else jobs
    names = list(networks or NETWORKS)
    if n_jobs and n_jobs > 1:
        tasks = []
        for network in names:
            suite = generate_network_suite(network, seed=config.seed,
                                           limit=config.limit_per_network)
            tasks.extend((network, index) for index in range(len(suite)))
        per_network = _evaluate_parallel(tasks, config, n_jobs, progress)
        return {network: NetworkResult(
                    network=network,
                    operators=per_network[network][0],
                    metrics=merge_metric_dicts(per_network[network][1]))
                for network in names}
    out = {}
    for network in names:
        out[network] = evaluate_network(network, config, progress, jobs=1)
    return out
