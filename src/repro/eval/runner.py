"""Run fused-operator suites through the four compilation variants.

For every operator we compile/measure ``isl``, ``tvm``, ``novec`` and
``infl`` and record:

* the four execution times (from the GPU model),
* whether influence modified the compiled result (``influenced``: the
  normalized code signatures of ``isl`` and ``infl`` differ),
* whether the influenced result uses explicit vector types (``vec``).

These are the quantities Table II aggregates.

Suites can be evaluated in parallel (``jobs > 1``): operators are farmed
out to a supervised worker fleet (:mod:`repro.eval.supervisor`), each
worker regenerating its kernels deterministically from ``(network, seed,
limit)`` so no IR crosses process boundaries, and the per-worker pass
metrics are merged into one report.  The compilation model is
deterministic, so the parallel path produces bitwise-identical results to
the serial one.  Workers heartbeat between variant compilations; hung
workers are killed and their task retried with deterministic backoff (see
the supervisor module for the full protocol).

Failures are isolated per operator: a typed compilation failure
(:class:`~repro.errors.ReproError`) marks that operator's
:attr:`OperatorResult.status` ``failed`` (or ``degraded`` when the
pipeline's fallback ladder produced a lower-quality result) instead of
aborting the run; operators lost to dead worker processes are retried —
serially in the parent once worker retries are exhausted, each parent
attempt on a fresh pipeline (hence a fresh ambient
:class:`~repro.solver.budget.SolveBudget`) so a retried operator never
inherits an already-charged deadline.  Fault decisions are content-keyed
(:mod:`repro.faultinject`), so serial and parallel runs produce identical
degradation records.

With an :class:`~repro.eval.checkpoint.EvalCheckpoint`, every completed
operator is durably appended as it finishes and a ``--resume`` run
reloads completed operators by content key, scheduling only the
remainder.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ReproError
from repro.faultinject import fault_action
from repro.gpu.arch import GpuArch, V100
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.obs import logger
from repro.pipeline.akg import AkgPipeline, VARIANTS
from repro.pipeline.passes import PassContext, merge_metric_dicts
from repro.schedule.scheduler import SchedulerOptions
from repro.solver.budget import SolveBudget
from repro.gpu.profile_cache import ProfileCache, use_profile_cache
from repro.solver.dedup import SolveCache, use_solve_cache
from repro.solver.warmstart import WarmStartPool, use_warm_pool
from repro.workloads.generator import generate_network_suite
from repro.workloads.networks import NETWORKS

OPERATOR_STATUSES = ("ok", "degraded", "failed")


@dataclass
class EvaluationConfig:
    """Knobs for an evaluation run."""

    seed: int = 0
    limit_per_network: Optional[int] = None  # None = the paper's full counts
    sample_blocks: int = 8
    max_threads: int = 256
    arch: GpuArch = V100
    weights: CostWeights = field(default_factory=CostWeights)
    jobs: int = 1          # worker processes; 1 = serial (deterministic tests)
    trace: bool = False    # record structured pass-trace events
    deadline_ms: Optional[float] = None  # wall-clock solve budget per attempt
    verify: bool = False   # run the differential oracle on every operator
    templates: bool = True  # measure the per-class template baseline column
    solver: str = ""       # backend name; "" = REPRO_SOLVER env / default
    sim: str = ""          # simulator backend; "" = REPRO_SIM env / default
    # -- supervision (parallel runs only; see repro.eval.supervisor) ---------
    task_timeout_s: Optional[float] = None  # None/0 = derive from deadline_ms
    retries: int = 2       # worker-side retries per lost task
    retry_backoff_s: float = 0.1  # base of the exponential retry backoff


@dataclass
class OperatorResult:
    """Per-operator measurements across the four variants."""

    name: str
    op_class: str
    times: dict  # variant -> seconds (absent for failed variants)
    influenced: bool
    vectorized: bool
    launches: dict  # variant -> number of kernel launches
    scheduler_stats: dict = field(default_factory=dict)
    status: str = "ok"          # one of OPERATOR_STATUSES
    degradation: dict = field(default_factory=dict)  # variant -> rung
    error: str = ""             # "variant: ExcType: message; ..." when failed
    verify_problems: list = field(default_factory=list)  # oracle findings
    schedule_hashes: dict = field(default_factory=dict)  # variant -> hash
    attempts: int = 1           # evaluation attempts under supervision
    kill_reason: str = ""       # ";"-joined supervisor loss reasons

    def speedup(self, variant: str) -> float:
        base = self.times.get("isl")
        other = self.times.get(variant)
        if base is None or not other:
            return float("nan")
        return base / other

    def as_record(self) -> dict:
        """The run-store representation of this operator (see
        :mod:`repro.obs.store`)."""
        record = {
            "name": self.name,
            "op_class": self.op_class,
            "times": dict(self.times),
            "influenced": self.influenced,
            "vectorized": self.vectorized,
            "launches": dict(self.launches),
            "status": self.status,
            "schedule_hashes": dict(self.schedule_hashes),
        }
        if self.degradation:
            record["degradation"] = dict(self.degradation)
        if self.error:
            record["error"] = self.error
        if self.verify_problems:
            record["verify_problems"] = list(self.verify_problems)
        if self.attempts != 1:
            record["attempts"] = self.attempts
        if self.kill_reason:
            record["kill_reason"] = self.kill_reason
        return record


@dataclass
class NetworkResult:
    """All operator results of one network."""

    network: str
    operators: list[OperatorResult]
    metrics: dict = field(default_factory=dict)  # merged pass metrics

    # -- Table II aggregates -------------------------------------------------

    @property
    def count_total(self) -> int:
        return len(self.operators)

    @property
    def count_vec(self) -> int:
        return sum(1 for op in self.operators if op.vectorized)

    @property
    def count_influenced(self) -> int:
        return sum(1 for op in self.operators if op.influenced)

    # -- resilience aggregates ----------------------------------------------

    @property
    def count_ok(self) -> int:
        return sum(1 for op in self.operators if op.status == "ok")

    @property
    def count_degraded(self) -> int:
        return sum(1 for op in self.operators if op.status == "degraded")

    @property
    def count_failed(self) -> int:
        return sum(1 for op in self.operators if op.status == "failed")

    def _ops_with(self, *variants: str,
                  influenced_only: bool = False) -> list[OperatorResult]:
        return [op for op in self.operators
                if all(v in op.times for v in variants)
                and (not influenced_only or op.influenced)]

    def total_time(self, variant: str, influenced_only: bool = False) -> float:
        ops = self._ops_with(variant, influenced_only=influenced_only)
        return sum(op.times[variant] for op in ops)

    def speedup(self, variant: str, influenced_only: bool = False) -> float:
        # Both totals over the same operators (those with both variants
        # measured), so partially-failed operators do not bias the ratio.
        ops = self._ops_with("isl", variant, influenced_only=influenced_only)
        base = sum(op.times["isl"] for op in ops)
        other = sum(op.times[variant] for op in ops)
        return base / other if other else float("nan")


def _make_pipeline(config: EvaluationConfig) -> AkgPipeline:
    options = None
    if config.deadline_ms or config.solver:
        budget = (SolveBudget(deadline_s=config.deadline_ms / 1000.0)
                  if config.deadline_ms else None)
        options = SchedulerOptions(budget=budget, solver=config.solver)
    return AkgPipeline(arch=config.arch, max_threads=config.max_threads,
                       sample_blocks=config.sample_blocks,
                       weights=config.weights,
                       scheduler_options=options,
                       trace=config.trace,
                       sim=config.sim)


def evaluate_operator(pipeline: AkgPipeline, name: str, op_class: str,
                      kernel: Kernel, verify: bool = False,
                      templates: bool = False,
                      beat: Optional[Callable[[], None]] = None
                      ) -> OperatorResult:
    """Compile and measure one fused operator under all four variants.

    Typed failures are contained per variant: a variant whose whole
    degradation ladder failed is simply absent from ``times`` and the
    operator is marked ``failed``; a variant produced by a lower ladder
    rung marks it ``degraded``.

    ``beat`` (supervised workers) is invoked before each variant
    compilation — the heartbeat that lets the supervisor distinguish a
    slow-but-progressing task from a hung one.

    With ``verify`` the differential oracle (:mod:`repro.verify.oracle`)
    runs after the variant loop against the pipeline's cached compiles;
    any finding lands in :attr:`OperatorResult.verify_problems` and marks
    the operator ``failed`` — a measurement whose semantics drifted from
    the baseline is worse than one that never compiled.

    With ``templates`` the operator is additionally compiled under its
    class's TVM-style template baseline
    (:mod:`repro.workloads.templates`); the measurement rides in
    ``times["template"]`` / ``launches["template"]`` next to the variants
    (a template failure only drops the column, never the operator).
    """
    times: dict[str, float] = {}
    launches: dict[str, int] = {}
    signatures: dict[str, str] = {}
    stats: dict[str, list] = {}
    hashes: dict[str, str] = {}
    degradation: dict[str, str] = {}
    errors: list[str] = []
    vectorized = False
    # One solver reuse scope across all four variants of this operator:
    # identical constraint systems (e.g. novec vs infl) replay from the
    # dedup cache, and near-identical ones (per-cluster and per-statement
    # sub-problems of the same kernel) share warm-start incumbent bounds.
    # Scoping at the operator keeps serial and parallel evaluation
    # metric-identical — either way an operator is evaluated wholly inside
    # one process, with the scope freshly installed.  The profile cache
    # follows the same rule: content-identical launches across the four
    # variants (e.g. the tvm variant's unfused clusters, degradation
    # rungs re-lowering the baseline mapping) dedup their simulation.
    with use_solve_cache(SolveCache()), use_warm_pool(WarmStartPool()), \
            use_profile_cache(ProfileCache()):
        for variant in VARIANTS:
            if beat is not None:
                beat()
            try:
                compiled = pipeline.compile(kernel, variant)
            except ReproError as exc:
                errors.append(f"{variant}: {type(exc).__name__}: {exc}")
                pipeline.context.count("resilience.variant_failures")
                logger.warning("operator %s variant %s failed: %s",
                               name, variant, exc)
                continue
            timing = pipeline.measure(compiled)
            times[variant] = timing.time
            launches[variant] = compiled.n_launches
            signatures[variant] = compiled.signature()
            stats[variant] = compiled.scheduler_stats
            hashes[variant] = compiled.schedule_hash
            if compiled.degradation != "none":
                degradation[variant] = compiled.degradation
            if variant == "infl":
                vectorized = compiled.vectorized
        if templates:
            from repro.workloads.templates import template_measure
            try:
                template = template_measure(
                    kernel, op_class, arch=pipeline.arch,
                    sample_blocks=pipeline.sample_blocks,
                    max_threads=pipeline.max_threads, sim=pipeline.sim)
            except ReproError as exc:
                pipeline.context.count("templates.failed")
                logger.warning("operator %s template baseline failed: %s",
                               name, exc)
            else:
                times["template"] = template.time
                launches["template"] = template.n_launches
        verify_problems: list[str] = []
        if verify and not errors:
            from repro.verify.oracle import differential_oracle
            verify_problems = differential_oracle(kernel, pipeline=pipeline)
    status = ("failed" if errors or verify_problems
              else ("degraded" if degradation else "ok"))
    return OperatorResult(
        name=name,
        op_class=op_class,
        times=times,
        influenced="isl" in signatures and "infl" in signatures
                   and signatures["isl"] != signatures["infl"],
        vectorized=vectorized,
        launches=launches,
        scheduler_stats=stats,
        status=status,
        degradation=degradation,
        error="; ".join(errors),
        verify_problems=verify_problems,
        schedule_hashes=hashes,
    )


# -- parallel workers --------------------------------------------------------

# Per-worker-process state: the suites are deterministic functions of
# (network, seed, limit), and one long-lived pipeline keeps the schedule
# cache warm across the operators a worker picks up.  Pipelines are keyed
# by the config's repr so retries in the parent — where several configs
# may pass through one process — never reuse a mismatched pipeline.
_WORKER_SUITES: dict[tuple, list] = {}
_WORKER_PIPELINES: dict[str, AkgPipeline] = {}

# True only in supervised worker processes (set by the worker main), so
# injected worker faults never fire during the parent's serial retry.
_IS_WORKER = False


def _mark_worker_process() -> None:
    global _IS_WORKER
    _IS_WORKER = True


def _worker_suite(network: str, seed: int, limit: Optional[int]) -> list:
    key = (network, seed, limit)
    if key not in _WORKER_SUITES:
        _WORKER_SUITES[key] = generate_network_suite(network, seed=seed,
                                                     limit=limit)
    return _WORKER_SUITES[key]


def _worker_faults(network: str, kernel_name: str, attempt: int) -> None:
    """Consult the ``worker*`` fault sites (supervised workers only).

    The ``attempt`` attribute is part of the decision key, so a
    probabilistic rule that crashed attempt 0 gets a fresh draw on the
    retry — while a ``p=1`` rule (or one matching ``@attempt=0``) stays
    fully deterministic.
    """
    attrs = {"network": network, "kernel": kernel_name, "attempt": attempt}
    if fault_action("worker", **attrs) == "crash":
        os._exit(17)  # simulate a hard worker death (OOM-kill, segfault)
    hang = fault_action("worker.hang", **attrs)
    if hang is not None:
        # "hang" = park effectively forever (the supervisor's SIGKILL is
        # the only way out); a numeric action sleeps that many seconds.
        try:
            duration = min(float(hang), 3600.0)
        except ValueError:
            duration = 3600.0
        time.sleep(duration)
    oom = fault_action("worker.oom", **attrs)
    if oom is not None:
        try:
            ballast_mb = int(oom)
        except ValueError:
            ballast_mb = 64
        ballast_mb = max(1, min(ballast_mb, 256))  # bounded: never a real OOM
        ballast = bytearray(ballast_mb << 20)
        ballast[::4096] = b"\xff" * len(ballast[::4096])  # fault the pages in
        os._exit(137)  # the exit code an OOM-killed process reports


def _evaluate_index(network: str, config: EvaluationConfig, index: int,
                    attempt: int = 0,
                    beat: Optional[Callable[[], None]] = None) -> tuple:
    """Worker entry point: evaluate operator ``index`` of one network.

    Returns ``(index, OperatorResult, pass-metrics dict)``; the context is
    reset per operator so the caller can merge snapshots without
    double-counting."""
    pipeline_key = repr(config)
    if pipeline_key not in _WORKER_PIPELINES:
        _WORKER_PIPELINES[pipeline_key] = _make_pipeline(config)
    pipeline = _WORKER_PIPELINES[pipeline_key]
    pipeline.session.context = PassContext(trace=config.trace)
    op_class, kernel = _worker_suite(network, config.seed,
                                     config.limit_per_network)[index]
    if _IS_WORKER:
        _worker_faults(network, kernel.name, attempt)
    result = evaluate_operator(pipeline, kernel.name, op_class, kernel,
                               verify=config.verify,
                               templates=config.templates, beat=beat)
    return index, result, pipeline.context.as_dict()


def _evaluate_index_fresh(network: str, config: EvaluationConfig,
                          index: int) -> tuple:
    """Parent-side serial retry of one operator on a *fresh* pipeline.

    A fresh pipeline means a fresh :class:`SolveBudget` in its scheduler
    options, so the retried operator gets the full deadline rather than
    whatever an earlier attempt left behind.  Metric-equivalent to a
    worker evaluation: the schedule cache only hits within one operator's
    variants, so a cold cache changes nothing.
    """
    pipeline = _make_pipeline(config)
    op_class, kernel = _worker_suite(network, config.seed,
                                     config.limit_per_network)[index]
    result = evaluate_operator(pipeline, kernel.name, op_class, kernel,
                               verify=config.verify,
                               templates=config.templates)
    return index, result, pipeline.context.as_dict()


# -- entry points ------------------------------------------------------------


def evaluate_network(network: str,
                     config: Optional[EvaluationConfig] = None,
                     progress: Optional[Callable[[str], None]] = None,
                     jobs: Optional[int] = None) -> NetworkResult:
    """Evaluate one Table I network's fused-operator suite.

    ``jobs`` overrides ``config.jobs``; with more than one job the suite is
    evaluated concurrently with results identical to the serial path.
    """
    config = config or EvaluationConfig()
    return evaluate_all(config, [network], progress, jobs=jobs)[network]


def evaluate_all(config: Optional[EvaluationConfig] = None,
                 networks: Optional[list[str]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 jobs: Optional[int] = None,
                 checkpoint=None,
                 resume: bool = False) -> dict[str, NetworkResult]:
    """Evaluate every network (the full Table II).

    With ``jobs > 1`` all operators of all requested networks share one
    supervised worker fleet, so small suites do not serialize behind
    large ones.  Per-operator failures are contained in
    ``OperatorResult.status``; this function only raises for
    non-compilation errors (genuine bugs).

    ``checkpoint`` (an :class:`~repro.eval.checkpoint.EvalCheckpoint`)
    durably records each operator as it completes; with ``resume`` the
    checkpoint is consulted first and already-completed operators are
    restored by content key instead of re-evaluated — the merged result
    is bitwise-identical to an uninterrupted run because both the
    operator result and its metric snapshot round-trip losslessly.
    """
    config = config or EvaluationConfig()
    n_jobs = config.jobs if jobs is None else jobs
    names = list(networks or NETWORKS)
    suites = {network: generate_network_suite(network, seed=config.seed,
                                              limit=config.limit_per_network)
              for network in names}
    slots: dict[str, list] = {network: [None] * len(suites[network])
                              for network in names}
    metric_dicts: dict[str, list] = {network: [] for network in names}

    restored: dict[tuple[str, int], tuple] = {}
    if checkpoint is not None and resume:
        kernels = {(network, index): kernel
                   for network in names
                   for index, (_, kernel) in enumerate(suites[network])}
        restored = checkpoint.restore_operators(kernels)
        for (network, index), (result, metrics) in sorted(restored.items()):
            slots[network][index] = result
            metric_dicts[network].append(metrics)
            if progress:
                progress(f"{network}: {result.name} (restored)")

    def on_complete(network: str, index: int, result, metrics: dict) -> None:
        slots[network][index] = result
        metric_dicts[network].append(metrics)
        if checkpoint is not None:
            _, kernel = suites[network][index]
            checkpoint.record_operator(network, index, kernel, result,
                                       metrics)
        if progress:
            progress(f"{network}: {result.name}")

    tasks = [(network, index)
             for network in names
             for index in range(len(suites[network]))
             if (network, index) not in restored]

    supervisor_counters: dict[str, dict] = {}
    if tasks and n_jobs and n_jobs > 1:
        from repro.eval.supervisor import run_supervised
        supervisor_counters = run_supervised(tasks, config, n_jobs, suites,
                                             on_complete)
    else:
        pipeline = _make_pipeline(config)
        for network, index in tasks:
            op_class, kernel = suites[network][index]
            # Reset the context per operator — the same discipline workers
            # follow — so checkpoints carry exact per-operator snapshots
            # and the merged totals match the parallel path bit for bit.
            pipeline.session.context = PassContext(trace=config.trace)
            result = evaluate_operator(pipeline, kernel.name, op_class,
                                       kernel, verify=config.verify,
                                       templates=config.templates)
            on_complete(network, index, result, pipeline.context.as_dict())

    out = {}
    for network in names:
        dicts = list(metric_dicts[network])
        # Supervisor interventions ride in their own snapshot, appended
        # only when non-empty: a healthy parallel run contributes no extra
        # counters and serial = parallel metric parity holds exactly.
        extra = supervisor_counters.get(network)
        if extra:
            dicts.append({"counters": dict(extra)})
        if checkpoint is not None and checkpoint.counters:
            # Checkpoint bookkeeping is global to the run; attach it to
            # the first network only so merging all networks counts once.
            if network == names[0]:
                dicts.append({"counters": dict(checkpoint.counters)})
        out[network] = NetworkResult(network=network,
                                     operators=slots[network],
                                     metrics=merge_metric_dicts(dicts))
    return out
