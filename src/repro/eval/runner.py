"""Run fused-operator suites through the four compilation variants.

For every operator we compile/measure ``isl``, ``tvm``, ``novec`` and
``infl`` and record:

* the four execution times (from the GPU model),
* whether influence modified the compiled result (``influenced``: the
  normalized code signatures of ``isl`` and ``infl`` differ),
* whether the influenced result uses explicit vector types (``vec``).

These are the quantities Table II aggregates.

Suites can be evaluated in parallel (``jobs > 1``): operators are farmed
out to a :class:`~concurrent.futures.ProcessPoolExecutor`, each worker
regenerating its kernels deterministically from ``(network, seed, limit)``
so no IR crosses process boundaries, and the per-worker pass metrics are
merged into one report.  The compilation model is deterministic, so the
parallel path produces bitwise-identical results to the serial one.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gpu.arch import GpuArch, V100
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.pipeline.akg import AkgPipeline, VARIANTS
from repro.pipeline.passes import PassContext, merge_metric_dicts
from repro.workloads.generator import generate_network_suite
from repro.workloads.networks import NETWORKS


@dataclass
class EvaluationConfig:
    """Knobs for an evaluation run."""

    seed: int = 0
    limit_per_network: Optional[int] = None  # None = the paper's full counts
    sample_blocks: int = 8
    max_threads: int = 256
    arch: GpuArch = V100
    weights: CostWeights = CostWeights()
    jobs: int = 1          # worker processes; 1 = serial (deterministic tests)
    trace: bool = False    # record structured pass-trace events


@dataclass
class OperatorResult:
    """Per-operator measurements across the four variants."""

    name: str
    op_class: str
    times: dict  # variant -> seconds
    influenced: bool
    vectorized: bool
    launches: dict  # variant -> number of kernel launches
    scheduler_stats: dict = field(default_factory=dict)

    def speedup(self, variant: str) -> float:
        other = self.times[variant]
        if not other:
            return float("nan")
        return self.times["isl"] / other


@dataclass
class NetworkResult:
    """All operator results of one network."""

    network: str
    operators: list[OperatorResult]
    metrics: dict = field(default_factory=dict)  # merged pass metrics

    # -- Table II aggregates -------------------------------------------------

    @property
    def count_total(self) -> int:
        return len(self.operators)

    @property
    def count_vec(self) -> int:
        return sum(1 for op in self.operators if op.vectorized)

    @property
    def count_influenced(self) -> int:
        return sum(1 for op in self.operators if op.influenced)

    def total_time(self, variant: str, influenced_only: bool = False) -> float:
        ops = [op for op in self.operators
               if not influenced_only or op.influenced]
        return sum(op.times[variant] for op in ops)

    def speedup(self, variant: str, influenced_only: bool = False) -> float:
        base = self.total_time("isl", influenced_only)
        other = self.total_time(variant, influenced_only)
        return base / other if other else float("nan")


def _make_pipeline(config: EvaluationConfig) -> AkgPipeline:
    return AkgPipeline(arch=config.arch, max_threads=config.max_threads,
                       sample_blocks=config.sample_blocks,
                       weights=config.weights, trace=config.trace)


def evaluate_operator(pipeline: AkgPipeline, name: str, op_class: str,
                      kernel: Kernel) -> OperatorResult:
    """Compile and measure one fused operator under all four variants."""
    times: dict[str, float] = {}
    launches: dict[str, int] = {}
    signatures: dict[str, str] = {}
    stats: dict[str, list] = {}
    vectorized = False
    for variant in VARIANTS:
        compiled = pipeline.compile(kernel, variant)
        timing = pipeline.measure(compiled)
        times[variant] = timing.time
        launches[variant] = compiled.n_launches
        signatures[variant] = compiled.signature()
        stats[variant] = compiled.scheduler_stats
        if variant == "infl":
            vectorized = compiled.vectorized
    return OperatorResult(
        name=name,
        op_class=op_class,
        times=times,
        influenced=signatures["isl"] != signatures["infl"],
        vectorized=vectorized,
        launches=launches,
        scheduler_stats=stats,
    )


# -- parallel workers --------------------------------------------------------

# Per-worker-process state: the suites are deterministic functions of
# (network, seed, limit), and one long-lived pipeline keeps the schedule
# cache warm across the operators a worker picks up.
_WORKER_SUITES: dict[tuple, list] = {}
_WORKER_PIPELINE: list = []


def _worker_suite(network: str, seed: int, limit: Optional[int]) -> list:
    key = (network, seed, limit)
    if key not in _WORKER_SUITES:
        _WORKER_SUITES[key] = generate_network_suite(network, seed=seed,
                                                     limit=limit)
    return _WORKER_SUITES[key]


def _evaluate_index(network: str, config: EvaluationConfig,
                    index: int) -> tuple:
    """Worker entry point: evaluate operator ``index`` of one network.

    Returns ``(index, OperatorResult, pass-metrics dict)``; the context is
    reset per operator so the caller can merge snapshots without
    double-counting."""
    if not _WORKER_PIPELINE:
        _WORKER_PIPELINE.append(_make_pipeline(config))
    pipeline = _WORKER_PIPELINE[0]
    pipeline.session.context = PassContext(trace=config.trace)
    op_class, kernel = _worker_suite(network, config.seed,
                                     config.limit_per_network)[index]
    result = evaluate_operator(pipeline, kernel.name, op_class, kernel)
    return index, result, pipeline.context.as_dict()


def _evaluate_parallel(tasks: list[tuple[str, int]],
                       config: EvaluationConfig, jobs: int,
                       progress: Optional[Callable[[str], None]]
                       ) -> dict[str, tuple[list, list]]:
    """Run ``(network, index)`` tasks over a process pool.

    Returns ``{network: (operator results in suite order, metric dicts)}``.
    """
    per_network: dict[str, tuple[list, list]] = {}
    counts: dict[str, int] = {}
    for network, _ in tasks:
        counts[network] = counts.get(network, 0) + 1
    for network, count in counts.items():
        per_network[network] = ([None] * count, [])
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_evaluate_index, network, config, index):
                   network for network, index in tasks}
        for future in as_completed(futures):
            network = futures[future]
            index, result, metrics = future.result()
            results, metric_dicts = per_network[network]
            results[index] = result
            metric_dicts.append(metrics)
            if progress:
                progress(f"{network}: {result.name}")
    return per_network


# -- entry points ------------------------------------------------------------


def evaluate_network(network: str,
                     config: Optional[EvaluationConfig] = None,
                     progress: Optional[Callable[[str], None]] = None,
                     jobs: Optional[int] = None) -> NetworkResult:
    """Evaluate one Table I network's fused-operator suite.

    ``jobs`` overrides ``config.jobs``; with more than one job the suite is
    evaluated concurrently with results identical to the serial path.
    """
    config = config or EvaluationConfig()
    n_jobs = config.jobs if jobs is None else jobs
    suite = generate_network_suite(network, seed=config.seed,
                                   limit=config.limit_per_network)
    if n_jobs and n_jobs > 1:
        tasks = [(network, index) for index in range(len(suite))]
        per_network = _evaluate_parallel(tasks, config, n_jobs, progress)
        results, metric_dicts = per_network[network]
        return NetworkResult(network=network, operators=results,
                             metrics=merge_metric_dicts(metric_dicts))
    pipeline = _make_pipeline(config)
    results = []
    for op_class, kernel in suite:
        if progress:
            progress(f"{network}: {kernel.name}")
        results.append(evaluate_operator(pipeline, kernel.name, op_class,
                                         kernel))
    return NetworkResult(network=network, operators=results,
                         metrics=pipeline.context.as_dict())


def evaluate_all(config: Optional[EvaluationConfig] = None,
                 networks: Optional[list[str]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 jobs: Optional[int] = None) -> dict[str, NetworkResult]:
    """Evaluate every network (the full Table II).

    With ``jobs > 1`` all operators of all requested networks share one
    process pool, so small suites do not serialize behind large ones.
    """
    config = config or EvaluationConfig()
    n_jobs = config.jobs if jobs is None else jobs
    names = list(networks or NETWORKS)
    if n_jobs and n_jobs > 1:
        tasks = []
        for network in names:
            suite = generate_network_suite(network, seed=config.seed,
                                           limit=config.limit_per_network)
            tasks.extend((network, index) for index in range(len(suite)))
        per_network = _evaluate_parallel(tasks, config, n_jobs, progress)
        return {network: NetworkResult(
                    network=network,
                    operators=per_network[network][0],
                    metrics=merge_metric_dicts(per_network[network][1]))
                for network in names}
    out = {}
    for network in names:
        out[network] = evaluate_network(network, config, progress, jobs=1)
    return out
