"""Run fused-operator suites through the four compilation variants.

For every operator we compile/measure ``isl``, ``tvm``, ``novec`` and
``infl`` and record:

* the four execution times (from the GPU model),
* whether influence modified the compiled result (``influenced``: the
  normalized code signatures of ``isl`` and ``infl`` differ),
* whether the influenced result uses explicit vector types (``vec``).

These are the quantities Table II aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gpu.arch import GpuArch, V100
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.pipeline.akg import AkgPipeline, VARIANTS
from repro.workloads.generator import generate_network_suite
from repro.workloads.networks import NETWORKS


@dataclass
class EvaluationConfig:
    """Knobs for an evaluation run."""

    seed: int = 0
    limit_per_network: Optional[int] = None  # None = the paper's full counts
    sample_blocks: int = 8
    max_threads: int = 256
    arch: GpuArch = V100
    weights: CostWeights = CostWeights()


@dataclass
class OperatorResult:
    """Per-operator measurements across the four variants."""

    name: str
    op_class: str
    times: dict  # variant -> seconds
    influenced: bool
    vectorized: bool
    launches: dict  # variant -> number of kernel launches
    scheduler_stats: dict = field(default_factory=dict)

    def speedup(self, variant: str) -> float:
        return self.times["isl"] / self.times[variant]


@dataclass
class NetworkResult:
    """All operator results of one network."""

    network: str
    operators: list[OperatorResult]

    # -- Table II aggregates -------------------------------------------------

    @property
    def count_total(self) -> int:
        return len(self.operators)

    @property
    def count_vec(self) -> int:
        return sum(1 for op in self.operators if op.vectorized)

    @property
    def count_influenced(self) -> int:
        return sum(1 for op in self.operators if op.influenced)

    def total_time(self, variant: str, influenced_only: bool = False) -> float:
        ops = [op for op in self.operators
               if not influenced_only or op.influenced]
        return sum(op.times[variant] for op in ops)

    def speedup(self, variant: str, influenced_only: bool = False) -> float:
        base = self.total_time("isl", influenced_only)
        other = self.total_time(variant, influenced_only)
        return base / other if other else float("nan")


def evaluate_operator(pipeline: AkgPipeline, name: str, op_class: str,
                      kernel: Kernel) -> OperatorResult:
    """Compile and measure one fused operator under all four variants."""
    times: dict[str, float] = {}
    launches: dict[str, int] = {}
    signatures: dict[str, str] = {}
    stats: dict[str, list] = {}
    vectorized = False
    for variant in VARIANTS:
        compiled = pipeline.compile(kernel, variant)
        timing = pipeline.measure(compiled)
        times[variant] = timing.time
        launches[variant] = compiled.n_launches
        signatures[variant] = compiled.signature()
        stats[variant] = compiled.scheduler_stats
        if variant == "infl":
            vectorized = compiled.vectorized
    return OperatorResult(
        name=name,
        op_class=op_class,
        times=times,
        influenced=signatures["isl"] != signatures["infl"],
        vectorized=vectorized,
        launches=launches,
        scheduler_stats=stats,
    )


def evaluate_network(network: str,
                     config: Optional[EvaluationConfig] = None,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> NetworkResult:
    """Evaluate one Table I network's fused-operator suite."""
    config = config or EvaluationConfig()
    pipeline = AkgPipeline(arch=config.arch, max_threads=config.max_threads,
                           sample_blocks=config.sample_blocks,
                           weights=config.weights)
    suite = generate_network_suite(network, seed=config.seed,
                                   limit=config.limit_per_network)
    results = []
    for op_class, kernel in suite:
        if progress:
            progress(f"{network}: {kernel.name}")
        results.append(evaluate_operator(pipeline, kernel.name, op_class,
                                         kernel))
    return NetworkResult(network=network, operators=results)


def evaluate_all(config: Optional[EvaluationConfig] = None,
                 networks: Optional[list[str]] = None,
                 progress: Optional[Callable[[str], None]] = None
                 ) -> dict[str, NetworkResult]:
    """Evaluate every network (the full Table II)."""
    config = config or EvaluationConfig()
    out = {}
    for network in (networks or list(NETWORKS)):
        out[network] = evaluate_network(network, config, progress)
    return out
