"""Evaluation harness: run the four variants over the network suites and
format Table I / Table II exactly as the paper reports them."""

from repro.eval.checkpoint import CheckpointError, EvalCheckpoint
from repro.eval.runner import (
    EvaluationConfig,
    NetworkResult,
    OperatorResult,
    evaluate_network,
    evaluate_all,
)
from repro.eval.supervisor import SupervisedRunError, resolve_task_timeout
from repro.eval.tables import format_table1, format_table2, table2_row

__all__ = [
    "CheckpointError",
    "EvalCheckpoint",
    "EvaluationConfig",
    "NetworkResult",
    "OperatorResult",
    "SupervisedRunError",
    "evaluate_network",
    "evaluate_all",
    "format_table1",
    "format_table2",
    "resolve_task_timeout",
    "table2_row",
]
