"""Evaluation harness: run the four variants over the network suites and
format Table I / Table II exactly as the paper reports them."""

from repro.eval.runner import (
    EvaluationConfig,
    NetworkResult,
    OperatorResult,
    evaluate_network,
    evaluate_all,
)
from repro.eval.tables import format_table1, format_table2, table2_row

__all__ = [
    "EvaluationConfig",
    "NetworkResult",
    "OperatorResult",
    "evaluate_network",
    "evaluate_all",
    "format_table1",
    "format_table2",
    "table2_row",
]
