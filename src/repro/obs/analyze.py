"""Cross-run analytics over the persistent run store.

Two consumers:

* ``repro obs diff RUN_A RUN_B`` — :func:`diff_runs` compares two stored
  records section by section: per-operator variant times (flagged only
  beyond a significance threshold, so timer noise does not read as
  change), schedule-hash changes (any change is significant — the
  compilation model is deterministic), status/degradation transitions,
  benchmark means, per-pass timings and counters.
* ``repro obs trend`` — :func:`build_trend` folds every stored record into
  per-kernel (and per-benchmark) time series ordered by ``started_at`` and
  flags series whose latest value regressed beyond the threshold against
  the best previously observed value.  The CI bench job appends its result
  to the committed trend store, so BENCH history accumulates across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

# Relative time change below which a delta is reported as noise.
DEFAULT_SIGNIFICANCE = 0.05


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


@dataclass
class Delta:
    """One compared quantity across two runs."""

    name: str
    before: Optional[float]
    after: Optional[float]

    @property
    def ratio(self) -> float:
        if not self.before or self.after is None:
            return float("nan")
        return self.after / self.before

    def significant(self, threshold: float) -> bool:
        if self.before is None or self.after is None:
            return True  # appeared / disappeared
        if not self.before:
            return bool(self.after)
        return abs(self.ratio - 1.0) > threshold

    def regressed(self, threshold: float) -> bool:
        """Strictly slower beyond the threshold (higher = worse)."""
        return (self.before is not None and self.after is not None
                and bool(self.before) and self.ratio - 1.0 > threshold)

    def render(self) -> str:
        if self.before is None:
            return f"{self.name}: (new) -> {_fmt_seconds(self.after or 0.0)}"
        if self.after is None:
            return f"{self.name}: {_fmt_seconds(self.before)} -> (gone)"
        return (f"{self.name}: {_fmt_seconds(self.before)} -> "
                f"{_fmt_seconds(self.after)} ({self.ratio:.2f}x)")


@dataclass
class RunDiff:
    """Structured comparison of two run records."""

    run_a: str
    run_b: str
    threshold: float = DEFAULT_SIGNIFICANCE
    time_deltas: list = field(default_factory=list)      # Delta, operators
    bench_deltas: list = field(default_factory=list)     # Delta, benchmarks
    kernel_deltas: list = field(default_factory=list)    # Delta, profiles
    pass_deltas: list = field(default_factory=list)      # Delta, pass seconds
    schedule_changes: list = field(default_factory=list)  # (name, old, new)
    status_changes: list = field(default_factory=list)    # (name, old, new)
    counter_deltas: list = field(default_factory=list)    # (name, old, new)

    @property
    def n_schedule_changes(self) -> int:
        return len(self.schedule_changes)

    def significant_deltas(self) -> list:
        return [d for d in (self.time_deltas + self.bench_deltas
                            + self.kernel_deltas)
                if d.significant(self.threshold)]

    def regressions(self, threshold: Optional[float] = None) -> list:
        limit = self.threshold if threshold is None else threshold
        return [d for d in (self.time_deltas + self.bench_deltas
                            + self.kernel_deltas) if d.regressed(limit)]

    def render(self) -> str:
        lines = [f"diff {self.run_a} -> {self.run_b} "
                 f"(significance threshold {self.threshold * 100:.0f}%)"]
        lines.append(f"schedule-hash changes: {self.n_schedule_changes}")
        for name, old, new in self.schedule_changes:
            lines.append(f"  {name}: {old} -> {new}")
        for name, old, new in self.status_changes:
            lines.append(f"status {name}: {old} -> {new}")
        significant = self.significant_deltas()
        label = "timing deltas beyond threshold"
        if significant:
            lines.append(f"{label}: {len(significant)}")
            for delta in significant:
                lines.append(f"  {delta.render()}")
        else:
            lines.append(f"{label}: none")
        if self.pass_deltas:
            shown = [d for d in self.pass_deltas
                     if d.significant(self.threshold)]
            if shown:
                lines.append("per-pass time deltas beyond threshold:")
                for delta in shown:
                    lines.append(f"  {delta.render()}")
        if self.counter_deltas:
            lines.append("counter deltas:")
            for name, old, new in self.counter_deltas:
                lines.append(f"  {name}: {old:g} -> {new:g}")
        return "\n".join(lines)


def _operator_map(record: dict) -> dict:
    return {op.get("name", ""): op for op in record.get("operators", ())}


def _kernel_map(record: dict) -> dict:
    return {k.get("name", ""): k for k in record.get("kernels", ())}


def diff_runs(record_a: dict, record_b: dict,
              threshold: float = DEFAULT_SIGNIFICANCE) -> RunDiff:
    """Compare two stored run records (any mix of record kinds)."""
    diff = RunDiff(run_a=record_a.get("run_id", "?"),
                   run_b=record_b.get("run_id", "?"),
                   threshold=threshold)

    ops_a, ops_b = _operator_map(record_a), _operator_map(record_b)
    for name in sorted(set(ops_a) | set(ops_b)):
        a, b = ops_a.get(name), ops_b.get(name)
        if a is None or b is None:
            diff.status_changes.append(
                (name, a.get("status") if a else "(absent)",
                 b.get("status") if b else "(absent)"))
            continue
        if a.get("status") != b.get("status") \
                or a.get("degradation") != b.get("degradation"):
            old = f"{a.get('status')}{a.get('degradation') or ''}"
            new = f"{b.get('status')}{b.get('degradation') or ''}"
            diff.status_changes.append((name, old, new))
        times_a, times_b = a.get("times", {}), b.get("times", {})
        for variant in sorted(set(times_a) | set(times_b)):
            diff.time_deltas.append(Delta(f"{name}/{variant}",
                                          times_a.get(variant),
                                          times_b.get(variant)))
        hashes_a = a.get("schedule_hashes", {})
        hashes_b = b.get("schedule_hashes", {})
        for variant in sorted(set(hashes_a) | set(hashes_b)):
            old = hashes_a.get(variant, "(absent)")
            new = hashes_b.get(variant, "(absent)")
            if old != new:
                diff.schedule_changes.append((f"{name}/{variant}", old, new))

    kernels_a, kernels_b = _kernel_map(record_a), _kernel_map(record_b)
    for name in sorted(set(kernels_a) | set(kernels_b)):
        a, b = kernels_a.get(name, {}), kernels_b.get(name, {})
        diff.kernel_deltas.append(Delta(f"kernel {name}",
                                        a.get("time"), b.get("time")))

    bench_a = record_a.get("benchmarks", {})
    bench_b = record_b.get("benchmarks", {})
    for name in sorted(set(bench_a) | set(bench_b)):
        diff.bench_deltas.append(Delta(name, bench_a.get(name),
                                       bench_b.get(name)))

    passes_a = record_a.get("passes", {})
    passes_b = record_b.get("passes", {})
    for name in sorted(set(passes_a) | set(passes_b)):
        diff.pass_deltas.append(Delta(
            f"pass {name}",
            passes_a.get(name, {}).get("seconds"),
            passes_b.get(name, {}).get("seconds")))

    counters_a = record_a.get("metrics", {}).get("counters", {})
    counters_b = record_b.get("metrics", {}).get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        old = float(counters_a.get(name, 0.0))
        new = float(counters_b.get(name, 0.0))
        if old != new:
            diff.counter_deltas.append((name, old, new))
    return diff


# -- trend -------------------------------------------------------------------


@dataclass
class TrendSeries:
    """One per-kernel (or per-benchmark) time series across stored runs."""

    name: str
    points: list = field(default_factory=list)  # (started_at, run_id, value)

    @property
    def values(self) -> list:
        return [value for _, _, value in self.points]

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def best_previous(self) -> Optional[float]:
        previous = self.values[:-1]
        return min(previous) if previous else None

    def regressed(self, threshold: float) -> bool:
        best = self.best_previous
        return best is not None and best > 0 \
            and self.latest / best - 1.0 > threshold


@dataclass
class TrendReport:
    """All series plus the regression verdicts."""

    series: list = field(default_factory=list)
    threshold: float = DEFAULT_SIGNIFICANCE

    def regressions(self) -> list:
        return [s for s in self.series
                if len(s.points) > 1 and s.regressed(self.threshold)]

    def render(self) -> str:
        if not self.series:
            return "(no runs stored)"
        width = max(len(s.name) for s in self.series) + 2
        lines = [f"{'series':<{width}}{'runs':>6}{'first':>12}{'latest':>12}"
                 f"{'best':>12}{'vs best':>9}"]
        for s in sorted(self.series, key=lambda s: s.name):
            values = s.values
            best = min(values)
            ratio = s.latest / best if best else float("nan")
            flag = "  REGRESSED" if (len(values) > 1
                                     and s.regressed(self.threshold)) else ""
            lines.append(f"{s.name:<{width}}{len(values):>6}"
                         f"{_fmt_seconds(values[0]):>12}"
                         f"{_fmt_seconds(s.latest):>12}"
                         f"{_fmt_seconds(best):>12}{ratio:>8.2f}x{flag}")
        regressed = self.regressions()
        lines.append(f"{len(self.series)} series, "
                     f"{len(regressed)} regressed beyond "
                     f"{self.threshold * 100:.0f}%")
        return "\n".join(lines)


def _series_points(record: dict) -> Iterable[tuple[str, float]]:
    """Every (series name, seconds) pair one record contributes."""
    network = record.get("config", {}).get("networks", "")
    prefix = f"{network}/" if isinstance(network, str) and network else ""
    for op in record.get("operators", ()):
        time = op.get("times", {}).get("infl")
        if time is not None:
            yield f"{prefix}{op.get('name', '?')}/infl", time
    for kernel in record.get("kernels", ()):
        if kernel.get("time") is not None:
            yield f"{prefix}{kernel.get('name', '?')}", kernel["time"]
    for name, mean in record.get("benchmarks", {}).items():
        yield name, mean


def build_trend(records: list[dict], match: str = "",
                threshold: float = DEFAULT_SIGNIFICANCE) -> TrendReport:
    """Fold stored records into per-kernel series (append order = time
    order for one store; ``started_at`` breaks ties across merged stores).

    ``match`` filters series by substring.
    """
    ordered = sorted(records, key=lambda r: r.get("started_at", 0.0))
    series: dict[str, TrendSeries] = {}
    for record in ordered:
        run_id = record.get("run_id", "?")
        started = record.get("started_at", 0.0)
        for name, value in _series_points(record):
            if match and match not in name:
                continue
            entry = series.get(name)
            if entry is None:
                entry = series[name] = TrendSeries(name=name)
            entry.points.append((started, run_id, value))
    return TrendReport(series=list(series.values()), threshold=threshold)
