"""Atomic JSON export shared by every observability writer.

All on-disk observability artifacts — ``--trace``/``--metrics`` files, run
records, trend stores — go through :func:`atomic_write_json`: the payload
is serialized into a sibling temp file and moved into place with
``os.replace``, so a crash mid-export can never leave a truncated JSON
file behind and concurrent readers only ever observe complete documents.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_json(path: str, payload, indent: int = 2) -> None:
    """Write ``payload`` as JSON via temp file + ``os.replace``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp",
                                    prefix=os.path.basename(path) + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=indent)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
