"""Persistent, content-addressed, append-only run store.

Every ``compile``/``table2``/``profile``/bench invocation records one *run
record* — kernel and solver configuration, per-pass timings, the full
metrics snapshot, per-operator times/status/degradation rung and schedule
hashes — into ``.repro/runs/runs.jsonl`` (override with ``REPRO_RUNS_DIR``
or an explicit store root).  The store is the substrate the cross-run
analytics (:mod:`repro.obs.analyze`), ``repro explain`` and the future
compile-service daemon read from.

Durability and concurrency model:

* **Append-only JSONL.**  One record per line, written with a *single*
  ``os.write`` on an ``O_APPEND`` descriptor: POSIX serializes the
  offset-update-plus-write, so two processes appending concurrently (two
  ``--jobs`` evaluations sharing a store) produce two intact lines, never
  an interleaving.  Nothing is ever rewritten in place.
* **Content-addressed ids.**  ``run_id`` is a SHA-256 prefix over the
  record's canonical JSON (which includes ``started_at``/``pid``, so two
  observations of the same configuration remain distinct records unless
  byte-identical).  Re-appending a byte-identical record — e.g. CI
  re-ingesting the committed benchmark baseline — deduplicates naturally.
* **mmap-friendly index.**  ``index.json`` maps ``run_id`` to a
  ``[byte offset, byte length]`` pair into ``runs.jsonl`` so single-record
  reads slice an ``mmap`` of the log instead of parsing it.  The index is
  a rebuildable cache, refreshed (write-then-rename) whenever its recorded
  log size goes stale; a racing writer can at worst leave it stale, never
  wrong, because reads fall back to a full scan on any miss.

Records are schema-versioned (:data:`RUN_SCHEMA_VERSION`); readers reject
majors they do not understand instead of misinterpreting them.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import time
from typing import Callable, Iterator, Optional

from repro.obs.export import atomic_write_json

RUN_SCHEMA_VERSION = 1

DEFAULT_RUNS_DIR = os.path.join(".repro", "runs")
ENV_RUNS_DIR = "REPRO_RUNS_DIR"

RECORDS_FILE = "runs.jsonl"
INDEX_FILE = "index.json"


def content_hash(payload) -> str:
    """SHA-256 prefix over the canonical JSON rendering of ``payload``."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def default_store_root() -> str:
    """The ambient store root: ``$REPRO_RUNS_DIR`` or ``.repro/runs``."""
    return os.environ.get(ENV_RUNS_DIR, "") or DEFAULT_RUNS_DIR


class RunStoreError(ValueError):
    """A run record or run reference could not be used."""


class RunStore:
    """One on-disk run store (see the module docstring for the layout)."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_store_root()
        self.records_path = os.path.join(self.root, RECORDS_FILE)
        self.index_path = os.path.join(self.root, INDEX_FILE)

    # -- writing -------------------------------------------------------------

    def append(self, record: dict) -> str:
        """Append one record; returns its (content-addressed) ``run_id``.

        The record is stamped with ``schema`` and ``run_id`` fields; a
        record whose ``run_id`` already exists is not re-appended (content
        addressing makes duplicates byte-identical, hence redundant).
        """
        record = dict(record)
        record.setdefault("schema", RUN_SCHEMA_VERSION)
        record.pop("run_id", None)
        run_id = content_hash(record)
        record["run_id"] = run_id
        if self._index().get(run_id) is not None or \
                any(rid == run_id for rid, _ in self._scan_ids()):
            return run_id
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        # Fault-injection site: chaos plans can fail durable appends with
        # ENOSPC (nothing written) or a short write (a torn tail line the
        # readers must skip).
        from repro.faultinject import fault_action
        action = fault_action("store.append", kind="run",
                              path=os.path.basename(self.records_path),
                              key=run_id)
        if action == "enospc":
            import errno
            raise OSError(errno.ENOSPC, "injected ENOSPC (fault plan)")
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(self.records_path,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            data = line.encode()
            if action == "short-write":
                import errno
                os.write(fd, data[:max(1, len(data) // 2)])
                raise OSError(errno.EIO, "injected short write (fault plan)")
            # One write call: O_APPEND makes the offset update + write
            # atomic, so concurrent appenders cannot interleave lines.
            os.write(fd, data)
        finally:
            os.close(fd)
        self._refresh_index()
        return run_id

    # -- the index -----------------------------------------------------------

    def _log_size(self) -> int:
        try:
            return os.path.getsize(self.records_path)
        except OSError:
            return 0

    def _index(self) -> dict:
        """The run_id -> [offset, length] map, or {} when stale/absent."""
        try:
            with open(self.index_path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if payload.get("size") != self._log_size():
            return {}
        return payload.get("runs", {})

    def _refresh_index(self) -> None:
        """Rebuild the index from the log (best-effort, atomic replace)."""
        runs = {rid: span for rid, span in self._scan_ids()}
        try:
            atomic_write_json(self.index_path,
                              {"size": self._log_size(), "runs": runs},
                              indent=None)
        except OSError:  # pragma: no cover - index is just a cache
            pass

    # -- reading -------------------------------------------------------------

    def _scan_ids(self) -> Iterator[tuple[str, list[int]]]:
        """Yield ``(run_id, [offset, length])`` for every intact line."""
        try:
            handle = open(self.records_path, "rb")
        except OSError:
            return
        with handle:
            offset = 0
            for raw in handle:
                length = len(raw)
                line = raw.strip()
                if line:
                    try:
                        record = json.loads(line)
                        yield record.get("run_id", ""), [offset, length]
                    except ValueError:
                        pass  # torn tail line from a crashed writer
                offset += length

    def records(self) -> list[dict]:
        """Every intact record, in append order."""
        out = []
        try:
            handle = open(self.records_path, "rb")
        except OSError:
            return out
        with handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if self._schema_ok(record):
                    out.append(record)
        return out

    @staticmethod
    def _schema_ok(record: dict) -> bool:
        return record.get("schema", 0) <= RUN_SCHEMA_VERSION

    def read(self, run_id: str) -> dict:
        """One record by exact ``run_id`` (mmap slice via the index when
        fresh, full scan otherwise)."""
        span = self._index().get(run_id)
        if span is not None:
            offset, length = span
            try:
                with open(self.records_path, "rb") as handle:
                    with mmap.mmap(handle.fileno(), 0,
                                   access=mmap.ACCESS_READ) as view:
                        record = json.loads(view[offset:offset + length])
                if record.get("run_id") == run_id:
                    return record
            except (OSError, ValueError):
                pass
        for record in self.records():
            if record.get("run_id") == run_id:
                return record
        raise RunStoreError(f"run {run_id!r} not found in {self.root}")

    def resolve(self, ref: str) -> dict:
        """A record by reference: exact id, unique id prefix, or
        ``latest``/``latest~N`` (N appends back)."""
        if ref.startswith("latest"):
            back = 0
            if ref != "latest":
                if not ref.startswith("latest~"):
                    raise RunStoreError(f"bad run reference {ref!r}")
                back = int(ref[len("latest~"):])
            records = self.records()
            if back >= len(records):
                raise RunStoreError(
                    f"store {self.root} has only {len(records)} run(s); "
                    f"cannot resolve {ref!r}")
            return records[-1 - back]
        matches = [record for record in self.records()
                   if record.get("run_id", "").startswith(ref)]
        if not matches:
            raise RunStoreError(f"run {ref!r} not found in {self.root}")
        exact = [r for r in matches if r.get("run_id") == ref]
        if exact:
            return exact[0]
        distinct = {r["run_id"] for r in matches}
        if len(distinct) > 1:
            raise RunStoreError(f"run prefix {ref!r} is ambiguous: "
                                f"{sorted(distinct)}")
        return matches[0]

    def last_matching(self, predicate: Callable[[dict], bool]) -> Optional[dict]:
        for record in reversed(self.records()):
            if predicate(record):
                return record
        return None


# -- record assembly ---------------------------------------------------------


def new_record(command: str, config: Optional[dict] = None,
               status: str = "ok") -> dict:
    """A run-record skeleton; callers fill the payload sections and append.

    ``started_at``/``pid`` make otherwise-identical runs distinct records
    (the id stays a pure function of the record content).
    """
    return {
        "schema": RUN_SCHEMA_VERSION,
        "command": command,
        "started_at": time.time(),
        "pid": os.getpid(),
        "status": status,
        "config": dict(config or {}),
    }


def finalize_record(record: dict, metrics: Optional[dict] = None,
                    wall_seconds: Optional[float] = None) -> dict:
    """Attach the metrics snapshot (full: counters/gauges/histograms plus
    per-pass timings) and wall time to a record under construction."""
    if wall_seconds is not None:
        record["wall_seconds"] = wall_seconds
    if metrics:
        record["passes"] = metrics.get("passes", {})
        record["metrics"] = {
            "counters": metrics.get("counters", {}),
            "gauges": metrics.get("gauges", {}),
            "histograms": metrics.get("histograms", {}),
        }
    return record
