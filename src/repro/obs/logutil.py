"""The package-level ``repro`` logger.

All progress/diagnostic output that previously went through
``print(..., file=sys.stderr)`` is routed through ``logging.getLogger("repro")``
so library users can silence or redirect it.  The CLI calls
:func:`configure_logging` once, mapping ``--quiet``/``--verbose`` to levels;
library use leaves the logger untouched (it propagates to the root logger
as usual, with a NullHandler so nothing prints by default).
"""

from __future__ import annotations

import logging
import sys

logger = logging.getLogger("repro")
logger.addHandler(logging.NullHandler())


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger.

    ``verbosity``: negative = quiet (warnings only), 0 = progress (info),
    positive = debug.  Re-configuring replaces the previous CLI handler, so
    tests may call this repeatedly.
    """
    level = (logging.WARNING if verbosity < 0
             else logging.INFO if verbosity == 0 else logging.DEBUG)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler.set_name("repro-cli")
    for existing in list(logger.handlers):
        if existing.get_name() == "repro-cli":
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
