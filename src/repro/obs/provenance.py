"""Scheduler decision provenance: the "why this schedule?" journal.

The paper's constraint-injection mechanism makes scheduling a sequence of
*decisions*: Algorithm 2 enumerates influenced-dimension scenarios and
scores each with the cost model, the tree builder keeps some as prioritized
branches and prunes the rest, and Algorithm 1 walks the tree injecting one
constraint set per dimension, backtracking when an ILP turns infeasible.
The :class:`ProvenanceJournal` records exactly these events as structured,
JSON-safe entries, so ``repro explain`` can render the decision path —
which constraint was injected per dimension, which scenarios were
considered with their simulated costs, which were pruned, where the
fallback ladder fired, and how often the warm-start/dedup reuse paths hit.

The journal mirrors :mod:`repro.obs.runtime`: an ambient handle installed
with :func:`use_journal` and fetched with :func:`get_journal`.  The default
handle is disabled — instrumented sites pay one module-global read plus an
``enabled`` check, keeping the scheduling hot path inside the <5% recording
overhead budget of ``bench_scheduler_perf``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

# Event kinds, in the order they typically appear for one kernel.
EVENT_KINDS = ("scenario", "tree-branch", "schedule-start", "dimension",
               "backtrack", "schedule-done")


class ProvenanceJournal:
    """An append-only list of structured decision events."""

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[dict] = []

    def note(self, kind: str, **fields) -> None:
        if not self.enabled:
            return
        self.events.append({"kind": kind, **fields})

    # Typed shims (keep instrumented call sites one-liners).

    def scenario(self, statement: str, dims: list, score: float,
                 vector_width: int, rank: int, kept: bool) -> None:
        """One Algorithm 2 scenario, scored; ``kept=False`` marks pruning
        by the ``max_alternatives`` cap."""
        self.note("scenario", statement=statement, dims=list(dims),
                  score=score, vector_width=vector_width, rank=rank,
                  kept=kept)

    def tree_branch(self, label: str, rank: int, kept: bool) -> None:
        """One tree branch (scenario x fused/solo variant); ``kept=False``
        marks pruning by the ``max_branches`` cap."""
        self.note("tree-branch", label=label, rank=rank, kept=kept)

    def dimension(self, dim: int, **fields) -> None:
        """One per-dimension ILP attempt: injected constraints, node label,
        feasibility, coincidence, reuse hits."""
        self.note("dimension", dim=dim, **fields)

    def backtrack(self, kind: str, dim: int, **fields) -> None:
        """One fallback-ladder activation."""
        self.note("backtrack", fallback=kind, dim=dim, **fields)

    def as_dict(self) -> dict:
        return {"events": [dict(e) for e in self.events]}

    def __len__(self) -> int:
        return len(self.events)


NULL_JOURNAL = ProvenanceJournal(enabled=False)
_current: ProvenanceJournal = NULL_JOURNAL


def get_journal() -> ProvenanceJournal:
    """The ambient journal (disabled outside any ``use_journal`` scope)."""
    return _current


@contextmanager
def use_journal(journal: Optional[ProvenanceJournal] = None
                ) -> Iterator[ProvenanceJournal]:
    """Install ``journal`` (default: a fresh enabled one) as the ambient
    handle for the ``with`` body."""
    global _current
    previous = _current
    _current = journal if journal is not None else ProvenanceJournal()
    try:
        yield _current
    finally:
        _current = previous


# -- rendering ---------------------------------------------------------------


def format_decision_path(events: list[dict], indent: str = "") -> str:
    """Render journal events as the influence-tree decision path.

    Scenario enumeration first (kept vs pruned, with simulated costs), then
    the per-dimension walk: injected constraints, feasibility, reuse hits,
    interleaved with the fallback-ladder activations that happened between
    dimensions.
    """
    lines: list[str] = []

    scenarios = [e for e in events if e["kind"] == "scenario"]
    if scenarios:
        lines.append(f"{indent}scenarios considered (Algorithm 2; "
                     f"cost = simulated profile score):")
        for e in scenarios:
            status = "kept " if e.get("kept") else "PRUNED"
            vec = (f" vector_width={e['vector_width']}"
                   if e.get("vector_width") else "")
            lines.append(f"{indent}  [{status}] {e['statement']}: "
                         f"dims={e['dims']} cost={e['score']:.2f}{vec}")
    branches = [e for e in events if e["kind"] == "tree-branch"]
    if branches:
        kept = sum(1 for e in branches if e.get("kept"))
        lines.append(f"{indent}influence-tree branches: {kept} kept, "
                     f"{len(branches) - kept} pruned "
                     f"({', '.join(e['label'] for e in branches if e.get('kept'))})")

    for e in events:
        kind = e["kind"]
        if kind == "schedule-start":
            lines.append(f"{indent}schedule construction "
                         f"({'influenced' if e.get('influenced') else 'plain'}"
                         f", kernel {e.get('kernel', '?')}):")
        elif kind == "dimension":
            verdict = "built" if e.get("feasible") else "infeasible"
            flags = []
            if e.get("coincidence"):
                flags.append("coincident")
            if e.get("supplementary"):
                flags.append("supplementary")
            if not e.get("progression", True):
                flags.append("no-progression")
            reuse = []
            if e.get("warmstart_hits"):
                reuse.append(f"warm-start x{e['warmstart_hits']}")
            if e.get("dedup_hits"):
                reuse.append(f"dedup x{e['dedup_hits']}")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            suffix += f" ({', '.join(reuse)})" if reuse else ""
            node = f" node={e['node']}" if e.get("node") else ""
            lines.append(f"{indent}  dim {e['dim']}: {verdict}{suffix}{node}")
            for text in e.get("injected", ()):
                lines.append(f"{indent}    inject {text}")
        elif kind == "backtrack":
            lines.append(f"{indent}  dim {e['dim']}: FALLBACK "
                         f"{e['fallback']}")
        elif kind == "schedule-done":
            lines.append(f"{indent}  -> {e.get('dimensions', '?')} "
                         f"dimension(s), {e.get('ilp_solves', '?')} ILP "
                         f"solve(s)")
    return "\n".join(lines)
