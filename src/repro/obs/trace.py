"""Hierarchical span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* — named intervals with monotonic
start/end timestamps, a process/worker identity, arbitrary attributes and
nested children — plus *instant events* attached to the innermost open
span.  Traces serialize to a JSON-safe payload (what parallel workers ship
back to the coordinator) and export in two formats:

* the legacy *flat* event list (one dict per event, stamped with ``ts``
  and ``worker`` so merged multi-worker logs stay ordered), and
* Chrome trace-event JSON (``{"traceEvents": [...]}``), openable directly
  in ``chrome://tracing`` or https://ui.perfetto.dev.

Clock normalization: ``time.perf_counter()`` has an arbitrary per-process
epoch, so every tracer captures the wall-clock offset of its process at
construction and serializes *wall-anchored* timestamps.  Folding worker
payloads into one tracer therefore yields a single coherent timeline.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class Span:
    """One named interval; children and events nest strictly inside it."""

    __slots__ = ("name", "start", "end", "pid", "tid", "attrs",
                 "children", "events")

    def __init__(self, name: str, start: float, pid: int, tid: int,
                 attrs: Optional[dict] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.pid = pid
        self.tid = tid
        self.attrs: dict = attrs or {}
        self.children: list[Span] = []
        self.events: list[dict] = []  # instant events: {name, ts, attrs}

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def as_dict(self) -> dict:
        """JSON-safe snapshot (recursive)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "events": [dict(e) for e in self.events],
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(payload["name"], payload["start"],
                   payload.get("pid", 0), payload.get("tid", 0),
                   dict(payload.get("attrs", {})))
        span.end = payload.get("end", payload["start"])
        span.events = [dict(e) for e in payload.get("events", ())]
        span.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return span


class _NullSpan:
    """Shared no-op span yielded by a disabled tracer."""

    __slots__ = ()
    attrs: dict = {}

    def set(self, **attrs) -> None:  # pragma: no cover - trivial
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Handle given to ``with tracer.span(...) as sp`` bodies."""

    __slots__ = ("_span",)

    def __init__(self, span: Span):
        self._span = span

    @property
    def attrs(self) -> dict:
        return self._span.attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the underlying span."""
        self._span.attrs.update(attrs)


class Tracer:
    """Records hierarchical spans on one worker.

    ``worker`` defaults to the OS pid; parallel evaluation workers keep the
    default so merged traces distinguish processes.  A disabled tracer
    costs one boolean check per call.
    """

    def __init__(self, enabled: bool = True, worker: Optional[int] = None):
        self.enabled = enabled
        self.worker = os.getpid() if worker is None else worker
        # Wall-anchor for perf_counter so cross-process timelines align.
        self._offset = time.time() - time.perf_counter()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------------

    def now(self) -> float:
        """Monotonic timestamp anchored to the wall clock (seconds)."""
        return time.perf_counter() + self._offset

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[object]:
        """Open a span; nests under the innermost open span."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = Span(name, self.now(), self.worker,
                    threading.get_ident() & 0xFFFF, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield _LiveSpan(span)
        finally:
            span.end = self.now()
            self._stack.pop()

    def event(self, name: str, **attrs) -> None:
        """Record an instant event inside the innermost open span (or as a
        degenerate root span when none is open)."""
        if not self.enabled:
            return
        record = {"name": name, "ts": self.now(), "attrs": attrs}
        if self._stack:
            self._stack[-1].events.append(record)
        else:
            span = Span(name, record["ts"], self.worker,
                        threading.get_ident() & 0xFFFF, attrs)
            span.end = record["ts"]
            self.roots.append(span)

    # -- (de)serialization and merging ---------------------------------------

    def as_dict(self) -> dict:
        """JSON-safe payload: ``{"worker": ..., "spans": [...]}``."""
        return {"worker": self.worker,
                "spans": [s.as_dict() for s in self.roots]}

    def merge_dict(self, payload: dict) -> None:
        """Fold another tracer's payload into this timeline.

        Spans arrive wall-anchored, so no per-worker offset arithmetic is
        needed beyond keeping the roots sorted by start time.
        """
        for entry in payload.get("spans", ()):
            self.roots.append(Span.from_dict(entry))
        self.roots.sort(key=lambda s: s.start)

    def merge(self, other: "Tracer") -> None:
        self.merge_dict(other.as_dict())

    # -- export ---------------------------------------------------------------

    def _origin(self) -> float:
        return min((s.start for s in self.roots), default=0.0)

    def chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Spans become complete (``"ph": "X"``) events with microsecond
        ``ts``/``dur`` relative to the earliest span; instant events become
        thread-scoped ``"ph": "i"`` events.
        """
        origin = self._origin()
        events: list[dict] = []

        def emit(span: Span) -> None:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": max(0.0, span.duration) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "cat": span.name.split(".", 1)[0],
                "args": dict(span.attrs),
            })
            for record in span.events:
                events.append({
                    "name": record["name"],
                    "ph": "i",
                    "s": "t",
                    "ts": (record["ts"] - origin) * 1e6,
                    "pid": span.pid,
                    "tid": span.tid,
                    "cat": record["name"].split(".", 1)[0],
                    "args": dict(record.get("attrs", {})),
                })
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def flat_events(self) -> list[dict]:
        """The trace flattened to the legacy event-dict format, time-ordered
        and stamped with ``ts`` (wall-anchored seconds) and ``worker``."""
        out: list[dict] = []

        def emit(span: Span) -> None:
            out.append({"event": "span", "name": span.name,
                        "ts": span.start, "seconds": span.duration,
                        "worker": span.pid, **span.attrs})
            for record in span.events:
                out.append({"event": record["name"], "ts": record["ts"],
                            "worker": span.pid, **record.get("attrs", {})})
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        out.sort(key=lambda e: e["ts"])
        return out

    def export(self, path: str, format: str = "chrome") -> None:
        """Write the trace to ``path`` atomically (write-then-rename, the
        same path ``--metrics`` uses), so a crash mid-export never leaves a
        truncated trace file.  ``format``: ``"chrome"`` or ``"flat"``."""
        from repro.obs.export import atomic_write_json
        if format == "chrome":
            atomic_write_json(path, self.chrome_trace())
        elif format == "flat":
            atomic_write_json(path, self.flat_events())
        else:
            raise ValueError(f"unknown trace format {format!r}; "
                             f"pick from ('flat', 'chrome')")
