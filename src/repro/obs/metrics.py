"""Counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates three metric kinds under dotted names
(``scheduler.ilp_solves``, ``solver.solve_seconds``, ``gpu.dram_transactions``):

* counters — monotonically increasing floats,
* gauges — last-written values,
* histograms — fixed-bucket distributions with exact count/sum/min/max and
  interpolated percentile summaries (p50/p95).

Everything is JSON-serializable via :meth:`MetricsRegistry.as_dict` and
mergeable via :meth:`MetricsRegistry.merge_dict`, so per-worker registries
from a parallel evaluation fold into one report.  A registry constructed
with ``enabled=False`` turns every recording call into a cheap no-op; the
ambient default used outside compilation sessions is disabled so
un-instrumented callers pay (almost) nothing.
"""

from __future__ import annotations

from typing import Iterable, Optional

# Geometric latency buckets: 1us .. ~17s, factor 2 per bucket.  Upper bound
# of bucket i is LATENCY_BUCKETS[i]; values above the last bound land in the
# overflow bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-6 * 2 ** i for i in range(25))

# Ratio buckets for efficiency-style metrics in [0, 1].
RATIO_BUCKETS: tuple[float, ...] = tuple(i / 20 for i in range(1, 21))


class Histogram:
    """Fixed-bucket histogram with exact extrema and estimated percentiles."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Iterable[float] = LATENCY_BUCKETS):
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        # One count per bound plus a final overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) by linear interpolation
        inside the bucket holding the target rank; exact at the extremes."""
        if not self.count:
            return 0.0
        if q <= 0:
            return self.vmin if self.vmin is not None else 0.0
        if q >= 1:
            return self.vmax if self.vmax is not None else 0.0
        target = q * self.count
        seen = 0.0
        for index, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if seen + n >= target:
                lower = self.bounds[index - 1] if index > 0 else \
                    min(self.vmin or 0.0, self.bounds[0])
                upper = self.bounds[index] if index < len(self.bounds) else \
                    (self.vmax if self.vmax is not None else self.bounds[-1])
                lower = max(lower, self.vmin if self.vmin is not None else lower)
                upper = min(upper, self.vmax if self.vmax is not None else upper)
                if upper < lower:
                    upper = lower
                fraction = (target - seen) / n
                return lower + (upper - lower) * fraction
            seen += n
        return self.vmax if self.vmax is not None else 0.0

    def summary(self) -> dict:
        """Headline numbers: count, mean, p50, p95, min, max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "min": self.vmin if self.vmin is not None else 0.0,
            "max": self.vmax if self.vmax is not None else 0.0,
        }

    # -- (de)serialization and merging ---------------------------------------

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }

    def merge_dict(self, payload: dict) -> None:
        if tuple(payload.get("bounds", ())) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(payload.get("bucket_counts", ())):
            self.bucket_counts[i] += n
        self.count += payload.get("count", 0)
        self.total += payload.get("total", 0.0)
        other_min = payload.get("min")
        other_max = payload.get("max")
        if other_min is not None and (self.vmin is None or other_min < self.vmin):
            self.vmin = other_min
        if other_max is not None and (self.vmax is None or other_max > self.vmax):
            self.vmax = other_max

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        histogram = cls(payload["bounds"])
        histogram.merge_dict(payload)
        return histogram


class MetricsRegistry:
    """Named counters, gauges and histograms for one worker or session."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: Iterable[float] = LATENCY_BUCKETS) -> None:
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    # -- (de)serialization and merging ---------------------------------------

    def as_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: h.as_dict()
                           for name, h in self.histograms.items()},
        }

    def merge_dict(self, payload: dict) -> None:
        for name, amount in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + amount
        self.gauges.update(payload.get("gauges", {}))
        for name, entry in payload.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                self.histograms[name] = Histogram.from_dict(entry)
            else:
                histogram.merge_dict(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.as_dict())


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def format_histogram_line(name: str, histogram: Histogram) -> str:
    """One fixed-width summary line for a histogram."""
    s = histogram.summary()
    if name.endswith("_seconds") or name.endswith(".seconds"):
        p50, p95, vmax = (_format_seconds(s[k]) for k in ("p50", "p95", "max"))
    else:
        p50, p95, vmax = (f"{s[k]:.3g}" for k in ("p50", "p95", "max"))
    return (f"  {name:<28}{s['count']:>8}  "
            f"p50={p50:<10} p95={p95:<10} max={vmax}")


def format_metrics_report(registry_or_payload) -> str:
    """Human-readable report of a registry (or its ``as_dict`` payload)."""
    if isinstance(registry_or_payload, MetricsRegistry):
        payload = registry_or_payload.as_dict()
    else:
        payload = registry_or_payload
    lines: list[str] = []
    counters = payload.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{int(value)}" if float(value).is_integer() \
                else f"{value:.4g}"
            lines.append(f"  {name:<28}{rendered:>12}")
    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<28}{gauges[name]:>12.4g}")
    histograms = payload.get("histograms", {})
    if histograms:
        lines.append("histograms:" + " " * 22 + "count")
        for name in sorted(histograms):
            lines.append(format_histogram_line(
                name, Histogram.from_dict(histograms[name])))
    return "\n".join(lines) if lines else "(no metrics recorded)"
