"""``repro.obs`` — the unified tracing + metrics subsystem.

* :mod:`repro.obs.trace` — hierarchical spans, Chrome trace-event export;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.runtime` — the ambient :class:`Obs` handle instrumented
  code records into;
* :mod:`repro.obs.logutil` — the package-level ``repro`` logger.

* :mod:`repro.obs.store` — the persistent, content-addressed run store
  every CLI invocation records into;
* :mod:`repro.obs.provenance` — the scheduler decision journal behind
  ``repro explain``;
* :mod:`repro.obs.analyze` — cross-run diff and trend analytics;
* :mod:`repro.obs.export` — atomic JSON export shared by all writers.

Metric naming scheme (dotted, lowercase): ``scheduler.*`` for Algorithm 1
activity, ``solver.*`` for simplex/ILP internals, ``cache.*`` for the
schedule cache, ``gpu.*`` for the simulator, ``pass.*`` for pipeline
stages.
"""

from repro.obs.export import atomic_write_json
from repro.obs.logutil import configure_logging, logger
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_metrics_report,
)
from repro.obs.provenance import (
    NULL_JOURNAL,
    ProvenanceJournal,
    get_journal,
    use_journal,
)
from repro.obs.runtime import NULL_OBS, Obs, get_obs, use_obs
from repro.obs.store import RUN_SCHEMA_VERSION, RunStore, RunStoreError
from repro.obs.trace import Span, Tracer

__all__ = [
    "LATENCY_BUCKETS",
    "NULL_JOURNAL",
    "RATIO_BUCKETS",
    "RUN_SCHEMA_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Obs",
    "ProvenanceJournal",
    "RunStore",
    "RunStoreError",
    "Span",
    "Tracer",
    "atomic_write_json",
    "configure_logging",
    "format_metrics_report",
    "get_journal",
    "get_obs",
    "logger",
    "use_journal",
    "use_obs",
]
