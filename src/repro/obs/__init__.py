"""``repro.obs`` — the unified tracing + metrics subsystem.

* :mod:`repro.obs.trace` — hierarchical spans, Chrome trace-event export;
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.runtime` — the ambient :class:`Obs` handle instrumented
  code records into;
* :mod:`repro.obs.logutil` — the package-level ``repro`` logger.

Metric naming scheme (dotted, lowercase): ``scheduler.*`` for Algorithm 1
activity, ``solver.*`` for simplex/ILP internals, ``cache.*`` for the
schedule cache, ``gpu.*`` for the simulator, ``pass.*`` for pipeline
stages.
"""

from repro.obs.logutil import configure_logging, logger
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_metrics_report,
)
from repro.obs.runtime import NULL_OBS, Obs, get_obs, use_obs
from repro.obs.trace import Span, Tracer

__all__ = [
    "LATENCY_BUCKETS",
    "RATIO_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Obs",
    "Span",
    "Tracer",
    "configure_logging",
    "format_metrics_report",
    "get_obs",
    "logger",
    "use_obs",
]
