"""The ambient observability handle.

Deeply nested code (the simplex kernel, the warp simulator) cannot be
handed a tracer through every call signature without polluting the whole
API.  Instead an :class:`Obs` bundle — one tracer plus one metrics
registry — is installed as the *ambient* handle for the duration of a
compilation session or measurement, and instrumented code fetches it with
:func:`get_obs`.

The default ambient handle is :data:`NULL_OBS`: a disabled tracer and a
disabled registry, so instrumentation outside a session costs one module
-global read plus an ``enabled`` check per recording call (the <5%%
overhead budget of ``bench_scheduler_perf``).

The handle is process-global, not thread-local: parallelism in this
code base is process-based (``ProcessPoolExecutor``), and each worker
process installs its own handle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class Obs:
    """One tracer plus one metrics registry."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def disabled(cls) -> "Obs":
        return cls(Tracer(enabled=False), MetricsRegistry(enabled=False))

    # Convenience shims so call sites stay one-liners.

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    def count(self, name: str, amount: float = 1) -> None:
        self.metrics.count(name, amount)

    def observe(self, name: str, value: float, **kwargs) -> None:
        self.metrics.observe(name, value, **kwargs)


NULL_OBS = Obs.disabled()
_current: Obs = NULL_OBS


def get_obs() -> Obs:
    """The ambient handle (``NULL_OBS`` outside any session)."""
    return _current


@contextmanager
def use_obs(obs: Obs) -> Iterator[Obs]:
    """Install ``obs`` as the ambient handle for the ``with`` body."""
    global _current
    previous = _current
    _current = obs
    try:
        yield obs
    finally:
        _current = previous
