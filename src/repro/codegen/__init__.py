"""Code generation: schedules to loop ASTs, GPU mapping, vectorization.

* :mod:`repro.codegen.ast` — the loop AST (loops, guards, statement
  instances) with a C-like pretty printer.
* :mod:`repro.codegen.generate` — polyhedral code generation: per-statement
  change of basis into schedule time, Fourier–Motzkin loop bounds, scalar
  dimension splitting, per-statement guards.
* :mod:`repro.codegen.cuda` — the mapping pass: assigns outer parallel loops
  to CUDA blocks/threads (skipping dimensions marked for vectorization, as
  the paper's modified AKG mapping does) and emits pseudo-CUDA.
* :mod:`repro.codegen.vectorize` — the backend vectorization pass that
  rewrites the marked innermost loop with explicit vector types.
"""

from repro.codegen.ast import Guard, Loop, Seq, StatementCall
from repro.codegen.generate import CodegenError, generate_ast
from repro.codegen.cuda import MappedKernel, map_to_gpu
from repro.codegen.vectorize import vectorize

__all__ = [
    "Guard", "Loop", "Seq", "StatementCall", "CodegenError",
    "generate_ast", "MappedKernel", "map_to_gpu", "vectorize",
]
