"""Band tiling (the AKG flow's post-scheduling tiling stage, Fig. 1(b)).

Tiling rewrites the outermost permutable band

    for (t0 ...) for (t1 ...) body        [band, sizes s0, s1]

into

    for (t0T) for (t1T)            # tile loops
      for (t0P < s0) for (t1P < s1)   # point loops
        body[t0 := s0*t0T + t0P, ...]

which is legal for any member order because the band is permutable (the
scheduler's validity constraints hold for every permutation of its
dimensions).  Ragged extents are handled with guards.

The paper relies on "tile sizes selected by respective tool auto-tuners";
:func:`repro.pipeline.autotune.autotune_tile_sizes` provides that search on
top of the GPU model.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Sequence

from repro.codegen.ast import Guard, Loop, Seq, substitute_var, walk
from repro.schedule.functions import Schedule
from repro.solver.problem import Constraint, LinExpr, var


class TilingError(Exception):
    """The requested band cannot be tiled."""


def _constant_extent(loop: Loop, params: dict[str, int]) -> Optional[int]:
    env = {p: Fraction(v) for p, v in params.items()}
    try:
        lowers = [e.evaluate(env) for e in loop.lowers]
        uppers = [e.evaluate(env) for e in loop.uppers]
    except KeyError:
        return None
    lo = max(lowers) if not loop.lower_is_min else min(lowers)
    hi = min(uppers) if not loop.upper_is_max else max(uppers)
    return int(hi - lo) + 1


def outermost_band_chain(ast: Seq, schedule: Schedule,
                         params: dict[str, int]) -> list[Loop]:
    """The outermost perfectly-nested chain of same-band loops with
    constant, zero-based extents (the tilable prefix)."""
    chain: list[Loop] = []
    node = ast
    band: Optional[int] = None
    env = {p: Fraction(v) for p, v in params.items()}
    while True:
        if isinstance(node, Seq):
            if len(node.children) != 1:
                break
            node = node.children[0]
            continue
        if not isinstance(node, Loop) or node.vector or node.mapping:
            break
        if node.schedule_dim < 0:
            break
        info = schedule.dims[node.schedule_dim]
        if band is None:
            band = info.band
        elif info.band != band:
            break
        extent = _constant_extent(node, params)
        try:
            zero_based = all(e.evaluate(env) == 0 for e in node.lowers)
        except KeyError:
            break
        if extent is None or not zero_based:
            break
        chain.append(node)
        node = node.body
    return chain


def tile_band(ast: Seq, schedule: Schedule, params: dict[str, int],
              tile_sizes: Sequence[int]) -> int:
    """Tile a prefix of the outermost permutable band in place.

    ``tile_sizes`` gives one size per band member, outermost first; the
    tiled prefix ends at the first size <= 1 (or at the band's end).
    Returns the number of loops tiled.
    """
    chain = outermost_band_chain(ast, schedule, params)
    effective: list[tuple[Loop, int]] = []
    for loop, size in zip(chain, tile_sizes):
        if size <= 1:
            break
        effective.append((loop, size))
    if not effective:
        return 0

    # Everything below the innermost tiled loop: all uses of the tiled
    # variables (calls, guards, deeper bounds) live there.
    inner_body = effective[-1][0].body

    point_loops: list[Loop] = []
    guards: list[Constraint] = []
    for loop, size in effective:
        extent = _constant_extent(loop, params)
        point_var = f"{loop.var}p"
        tile_var = f"{loop.var}T"
        replacement = (size * var(tile_var)) + var(point_var)
        substitute_var(inner_body, loop.var, replacement)
        point_loops.append(Loop(
            var=point_var,
            lowers=[LinExpr(const=0)],
            uppers=[LinExpr(const=size - 1)],
            body=Seq([]),  # linked below
            schedule_dim=loop.schedule_dim,
            parallel=loop.parallel,
        ))
        if extent % size != 0:
            original_upper = LinExpr(const=extent - 1)
            guards.append(Constraint(replacement - original_upper, "<="))
        # The original loop object becomes the tile loop (parent links and
        # chain nesting stay valid because the prefix is contiguous).
        loop.var = tile_var
        loop.lowers = [LinExpr(const=0)]
        loop.uppers = [LinExpr(const=math.ceil(extent / size) - 1)]
        loop.lower_is_min = False
        loop.upper_is_max = False

    body: Seq = inner_body
    if guards:
        body = Seq([Guard(conditions=guards, body=body)])
    for point in reversed(point_loops):
        point.body = body
        body = Seq([point])
    effective[-1][0].body = body
    return len(effective)
