"""The GPU mapping pass: assign loops to CUDA blocks and threads.

AKG-style strategy (Fig. 1(b), with the paper's modification that mapping
skips dimensions marked for vectorization):

* the mappable loops are the outermost chain of parallel, non-vector loops
  with parameter-only bounds;
* the innermost mappable loop maps to ``threadIdx.x`` (it is the one the
  non-linear optimizer arranged for coalescing); an oversized thread loop is
  strip-mined so the block size stays within the limit;
* remaining mappable loops map to ``blockIdx.x/y/z`` outermost-first; any
  extra loops stay sequential inside the thread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.codegen.ast import Guard, Loop, Seq, StatementCall, substitute_var, walk
from repro.ir.kernel import Kernel
from repro.schedule.functions import Schedule
from repro.solver.problem import LinExpr, var


@dataclass
class MappedDim:
    """One loop mapped onto a CUDA launch dimension."""

    loop_var: str
    extent: int
    mapping: str  # "blockIdx.x", "threadIdx.x", ...


@dataclass
class MappedKernel:
    """A kernel after mapping: launch geometry + per-thread body."""

    kernel: Kernel
    schedule: Schedule
    ast: Seq
    grid: list[MappedDim] = field(default_factory=list)
    block: list[MappedDim] = field(default_factory=list)

    @property
    def n_blocks(self) -> int:
        n = 1
        for d in self.grid:
            n *= d.extent
        return n

    @property
    def n_threads_per_block(self) -> int:
        n = 1
        for d in self.block:
            n *= d.extent
        return n

    def emit_cuda(self) -> str:
        """Pseudo-CUDA rendering of the mapped kernel."""
        grid = " * ".join(f"{d.extent}" for d in self.grid) or "1"
        block = " * ".join(f"{d.extent}" for d in self.block) or "1"
        lines = [
            f"// {self.kernel.name}<<<dim3({grid}), dim3({block})>>>",
        ]
        for d in self.grid + self.block:
            lines.append(f"//   {d.loop_var} <- {d.mapping} (extent {d.extent})")
        lines.extend(self.ast.render())
        return "\n".join(lines)


def _constant_extent(loop: Loop, params: dict[str, int]) -> Optional[int]:
    env = {p: Fraction(v) for p, v in params.items()}
    try:
        lowers = [e.evaluate(env) for e in loop.lowers]
        uppers = [e.evaluate(env) for e in loop.uppers]
    except KeyError:
        return None
    lo = min(lowers) if loop.lower_is_min else max(lowers)
    hi = max(uppers) if loop.upper_is_max else min(uppers)
    return int(hi - lo) + 1


def _effective_lower(loop: Loop, params: dict[str, int]) -> int:
    """The loop's concrete first iteration value (mappable loops have
    parameter-only bounds, so this is a plain integer)."""
    env = {p: Fraction(v) for p, v in params.items()}
    lowers = [e.evaluate(env) for e in loop.lowers]
    return math.ceil(min(lowers) if loop.lower_is_min else max(lowers))


def _mappable_chain(ast: Seq, params: dict[str, int]) -> list[Loop]:
    """The outermost chain of parallel non-vector loops with constant
    extents, stopping at the first node that breaks the chain."""
    chain: list[Loop] = []
    node = ast
    while True:
        if isinstance(node, Seq):
            if len(node.children) != 1:
                break
            node = node.children[0]
            continue
        if isinstance(node, Loop) and node.parallel and not node.vector \
                and _constant_extent(node, params) is not None:
            chain.append(node)
            node = node.body
            continue
        break
    return chain


def _strip_mine_thread_loop(loop: Loop, extent: int, max_threads: int,
                            lower: int) -> tuple[Loop, Loop]:
    """Split an oversized thread loop into a block part and a thread part.

    Returns ``(outer, inner)``; the original loop object becomes the outer
    one so parent links stay valid.  Both parts are rebased at zero, so the
    original variable is rewritten to ``lower + threads*outer + inner`` —
    a schedule row can give the mapped loop a nonzero start, and dropping
    ``lower`` would shift every executed instance.
    """
    thread_extent = max_threads
    outer_extent = (extent + thread_extent - 1) // thread_extent
    outer_var = f"{loop.var}b"
    inner_var = f"{loop.var}t"
    replacement = (thread_extent * var(outer_var)) + var(inner_var) + lower

    inner = Loop(
        var=inner_var,
        lowers=[LinExpr(const=0)],
        uppers=[LinExpr(const=thread_extent - 1)],
        body=loop.body,
        schedule_dim=loop.schedule_dim,
        parallel=True,
    )
    substitute_var(inner.body, loop.var, replacement)
    if outer_extent * thread_extent != extent:
        # Guard the ragged tail.
        from repro.solver.problem import Constraint
        original_upper = LinExpr(const=lower + extent - 1)
        inner.body = Seq([Guard(
            conditions=[Constraint(replacement - original_upper, "<=")],
            body=inner.body)])
    loop.var = outer_var
    loop.lowers = [LinExpr(const=0)]
    loop.uppers = [LinExpr(const=outer_extent - 1)]
    loop.lower_is_min = False
    loop.upper_is_max = False
    loop.body = Seq([inner])
    return loop, inner


def _swap_loops(outer: Loop, inner: Loop) -> None:
    """Interchange two directly nested loops by swapping their metadata.

    Legal only within a permutable band when neither loop's bounds mention
    the other's variable (checked by the caller)."""
    for attr in ("var", "lowers", "uppers", "lower_is_min", "upper_is_max",
                 "schedule_dim", "parallel", "vector", "vector_width",
                 "mapping"):
        a = getattr(outer, attr)
        b = getattr(inner, attr)
        setattr(outer, attr, b)
        setattr(inner, attr, a)


def hoist_coincident_loops(ast: Seq, schedule: Schedule) -> None:
    """Move coincident loops outward past sequential ones in the same
    permutable band (PPCG-style band-member reordering before mapping).

    A coincident dimension has zero reuse distance on every dependence
    active in its band, so its position within the band does not affect
    validity, and hoisting it exposes it to block/thread mapping.
    """
    def bounds_mention(loop: Loop, name: str) -> bool:
        return any(name in e.coeffs for e in loop.lowers + loop.uppers)

    changed = True
    while changed:
        changed = False
        for node in walk(ast):
            if not isinstance(node, Loop):
                continue
            body = node.body
            if len(body.children) != 1 or not isinstance(body.children[0], Loop):
                continue
            outer, inner = node, body.children[0]
            if outer.schedule_dim < 0 or inner.schedule_dim < 0:
                continue
            outer_info = schedule.dims[outer.schedule_dim]
            inner_info = schedule.dims[inner.schedule_dim]
            if outer_info.band != inner_info.band:
                continue
            if inner_info.coincident and not outer_info.coincident \
                    and not inner.vector \
                    and not bounds_mention(inner, outer.var) \
                    and not bounds_mention(outer, inner.var):
                _swap_loops(outer, inner)
                changed = True


def map_to_gpu(kernel: Kernel, ast: Seq, schedule: Schedule,
               max_threads: int = 256, max_grid_dims: int = 3) -> MappedKernel:
    """Run the mapping pass; annotates loops and returns the launch shape."""
    mapped = MappedKernel(kernel=kernel, schedule=schedule, ast=ast)
    hoist_coincident_loops(ast, schedule)
    chain = _mappable_chain(ast, kernel.params)
    if not chain:
        return mapped  # degenerate: single-thread kernel

    thread_loop = chain[-1]
    block_loops = chain[:-1]
    extent = _constant_extent(thread_loop, kernel.params)
    if extent > max_threads:
        outer, inner = _strip_mine_thread_loop(
            thread_loop, extent, max_threads,
            _effective_lower(thread_loop, kernel.params))
        outer.mapping = "blockIdx.x"
        mapped.grid.append(MappedDim(outer.var,
                                     _constant_extent(outer, kernel.params),
                                     "blockIdx.x"))
        inner.mapping = "threadIdx.x"
        mapped.block.append(MappedDim(inner.var, max_threads, "threadIdx.x"))
    else:
        thread_loop.mapping = "threadIdx.x"
        mapped.block.append(MappedDim(thread_loop.var, extent, "threadIdx.x"))

    axes = ["blockIdx.y", "blockIdx.z"] if mapped.grid else \
        ["blockIdx.x", "blockIdx.y", "blockIdx.z"]
    # Innermost block loops get the fastest-scheduled axes (blockIdx.x
    # varies first on real GPUs), so neighbouring blocks stay close in
    # memory; `mapped.grid` is kept fastest-axis-first for the simulator's
    # block-id decomposition.
    for loop in reversed(block_loops):
        if not axes:
            break  # extra parallel loops stay sequential per thread
        axis = axes.pop(0)
        loop.mapping = axis
        mapped.grid.append(MappedDim(loop.var,
                                     _constant_extent(loop, kernel.params),
                                     axis))
    return mapped
