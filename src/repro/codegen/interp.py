"""Sequential AST interpreter.

Executes a generated loop AST in plain sequential order (mapping
annotations are ignored: mapped loops run like ordinary loops, vector loops
run lane by lane) and yields every statement instance with its reconstructed
iterator values.  Used to validate that a schedule + codegen round trip
preserves the kernel's semantics: the executed instances must be exactly the
iteration domains, and every dependence pair must run in order.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterator

from repro.codegen.ast import Guard, Loop, Seq, StatementCall
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement


def execute(ast: Seq, params: dict[str, int]) -> Iterator[tuple[Statement, dict[str, Fraction]]]:
    """Yield ``(statement, iterator values)`` in sequential execution order."""
    env: dict[str, Fraction] = {p: Fraction(v) for p, v in params.items()}
    yield from _run(ast, env)


def _run(node, env: dict[str, Fraction]):
    if isinstance(node, Seq):
        for child in node.children:
            yield from _run(child, env)
    elif isinstance(node, Loop):
        lowers = [e.evaluate(env) for e in node.lowers]
        uppers = [e.evaluate(env) for e in node.uppers]
        lo = math.ceil(min(lowers) if node.lower_is_min else max(lowers))
        hi = math.floor(max(uppers) if node.upper_is_max else min(uppers))
        for value in range(lo, hi + 1):
            env[node.var] = Fraction(value)
            yield from _run(node.body, env)
        env.pop(node.var, None)
    elif isinstance(node, Guard):
        if all(c.satisfied_by(env) for c in node.conditions):
            yield from _run(node.body, env)
    elif isinstance(node, StatementCall):
        yield node.statement, node.iterator_values(env)
    else:
        raise TypeError(f"unknown AST node {node!r}")


def check_semantics(kernel: Kernel, ast: Seq) -> list[str]:
    """Exhaustively validate an AST against the kernel's semantics.

    Checks (under the kernel's concrete parameters):

    1. every statement executes exactly its iteration domain (no duplicates,
       no misses);
    2. conflicting accesses to the same memory cell (at least one write)
       happen in the same relative order as in the original program.

    Returns a list of human-readable problems (empty == equivalent).
    """
    problems: list[str] = []
    executed: dict[str, list[dict[str, Fraction]]] = {
        s.name: [] for s in kernel.statements}
    order: list[tuple[Statement, dict[str, Fraction]]] = []
    for statement, point in execute(ast, kernel.params):
        executed[statement.name].append(point)
        order.append((statement, point))

    # 1. Coverage: executed points == domain points, exactly once.
    for s in kernel.statements:
        expected = {tuple(sorted(p.items()))
                    for p in s.iteration_points(kernel.params)}
        got_list = [tuple(sorted(p.items())) for p in executed[s.name]]
        got = set(got_list)
        if len(got_list) != len(got):
            problems.append(f"{s.name}: duplicated instances")
        missing = expected - got
        extra = got - expected
        if missing:
            problems.append(f"{s.name}: {len(missing)} missing instances "
                            f"(e.g. {sorted(missing)[0]})")
        if extra:
            problems.append(f"{s.name}: {len(extra)} extra instances "
                            f"(e.g. {sorted(extra)[0]})")
    if problems:
        return problems

    # 2. Conflict order: replay memory accesses; for every cell, the
    # sequence of (original date, is_write) must keep writes ordered
    # against every conflicting access exactly as originally.
    position: dict[tuple[str, tuple], int] = {}
    for index, (statement, point) in enumerate(order):
        position[(statement.name, tuple(sorted(point.items())))] = index

    cells: dict[tuple[str, int], list[tuple[tuple, bool, tuple]]] = {}
    for s in kernel.statements:
        for point in s.iteration_points(kernel.params):
            for access in s.accesses:
                env = dict(point)
                env.update({p: Fraction(v) for p, v in kernel.params.items()})
                cell = (access.tensor.name, access.linearized(env))
                key = (s.name, tuple(sorted(point.items())))
                cells.setdefault(cell, []).append(
                    (s.original_date(point), access.is_write, key))
    for cell, touches in cells.items():
        if not any(t[1] for t in touches):
            continue
        for a in touches:
            for b in touches:
                if a is b or not (a[1] or b[1]):
                    continue
                if a[0] < b[0] and position[a[2]] > position[b[2]]:
                    problems.append(
                        f"conflict on {cell[0]}[{cell[1]}]: "
                        f"{a[2]} must precede {b[2]}")
                    if len(problems) > 5:
                        return problems
    return problems
