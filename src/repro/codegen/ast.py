"""Loop AST produced by code generation.

Nodes:

* :class:`Loop` — an integer loop over a schedule-time variable, with affine
  lower/upper bound *lists* (max of lowers, min of uppers, inclusive) and
  scheduling metadata (parallel, vector, GPU mapping).
* :class:`Guard` — affine conditions protecting a sub-tree.
* :class:`StatementCall` — one statement instance; carries the expressions
  reconstructing the original iterators from schedule-time variables.
* :class:`Seq` — ordered composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Optional, Union

from repro.ir.statement import Statement
from repro.solver.problem import Constraint, LinExpr

Node = Union["Loop", "Guard", "StatementCall", "Seq"]


def _expr_str(expr: LinExpr) -> str:
    parts = []
    for name, coeff in sorted(expr.coeffs.items()):
        if coeff == 1:
            parts.append(name)
        elif coeff == -1:
            parts.append(f"-{name}")
        else:
            parts.append(f"{coeff}*{name}")
    if expr.const != 0 or not parts:
        parts.append(str(expr.const))
    text = " + ".join(parts)
    return text.replace("+ -", "- ")


def _bound_str(exprs: list[LinExpr], which: str) -> str:
    if len(exprs) == 1:
        return _expr_str(exprs[0])
    inner = ", ".join(_expr_str(e) for e in exprs)
    return f"{which}({inner})"


@dataclass
class Seq:
    """Ordered composition of AST nodes."""

    children: list[Node] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        lines: list[str] = []
        for child in self.children:
            lines.extend(child.render(indent))
        return lines


@dataclass
class Loop:
    """``for (var = max(lowers); var <= min(uppers); var++)``.

    For *union* loops covering statements with different bounds the modes
    flip (``lower_is_min`` / ``upper_is_max``) and per-statement guards
    inside the body restore exactness.
    """

    var: str
    lowers: list[LinExpr]
    uppers: list[LinExpr]
    body: Seq
    schedule_dim: int = -1
    parallel: bool = False
    vector: bool = False
    vector_width: int = 0
    mapping: Optional[str] = None  # e.g. "blockIdx.x", "threadIdx.x"
    lower_is_min: bool = False
    upper_is_max: bool = False

    def keyword(self) -> str:
        if self.vector:
            return "forvec"
        if self.parallel:
            return "forall"
        return "for"

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        lower = _bound_str(self.lowers, "min" if self.lower_is_min else "max")
        upper = _bound_str(self.uppers, "max" if self.upper_is_max else "min")
        annotations = []
        if self.mapping:
            annotations.append(self.mapping)
        if self.vector and self.vector_width:
            annotations.append(f"width={self.vector_width}")
        suffix = f"  // {', '.join(annotations)}" if annotations else ""
        lines = [f"{pad}{self.keyword()} ({self.var} = {lower}; "
                 f"{self.var} <= {upper}; {self.var}++) {{{suffix}"]
        lines.extend(self.body.render(indent + 1))
        lines.append(f"{pad}}}")
        return lines


@dataclass
class Guard:
    """``if (conditions) { body }`` with affine conditions (expr >= 0 etc.)."""

    conditions: list[Constraint]
    body: Seq

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        conds = []
        for c in self.conditions:
            op = {"<=": "<= 0", ">=": ">= 0", "==": "== 0"}[c.sense]
            conds.append(f"{_expr_str(c.expr)} {op}")
        lines = [f"{pad}if ({' && '.join(conds)}) {{"]
        lines.extend(self.body.render(indent + 1))
        lines.append(f"{pad}}}")
        return lines


@dataclass
class StatementCall:
    """One statement instance at a schedule-time point.

    ``iterator_exprs`` maps each original iterator to its reconstruction as
    an affine expression of schedule-time variables and parameters.
    ``vector_width`` > 1 marks the call as executing a whole vector of the
    surrounding vector loop's iterations at once.
    """

    statement: Statement
    iterator_exprs: dict[str, LinExpr]
    vector_width: int = 1

    def iterator_values(self, env: dict[str, Fraction]) -> dict[str, Fraction]:
        """Concrete iterator values at a schedule-time point."""
        out = {}
        for it, expr in self.iterator_exprs.items():
            value = expr.evaluate(env)
            if value.denominator != 1:
                raise ValueError(
                    f"non-integral iterator {it} = {value} in {self.statement.name}")
            out[it] = value
        return out

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        args = ", ".join(f"{it}={_expr_str(e)}"
                         for it, e in self.iterator_exprs.items())
        vec = f" /*x{self.vector_width}*/" if self.vector_width > 1 else ""
        return [f"{pad}{self.statement.name}({args});{vec}"]


def render_ast(root: Seq) -> str:
    """Pretty-print a whole AST."""
    return "\n".join(root.render())


def walk(node: Node):
    """Yield every node of the subtree in preorder."""
    yield node
    if isinstance(node, Seq):
        for child in node.children:
            yield from walk(child)
    elif isinstance(node, (Loop, Guard)):
        yield from walk(node.body)


def statements_in(node: Node) -> list[StatementCall]:
    """All statement calls in the subtree, in textual order."""
    return [n for n in walk(node) if isinstance(n, StatementCall)]


def substitute_var(node: Node, name: str, replacement: LinExpr) -> None:
    """Replace variable ``name`` with ``replacement`` in every expression of
    the subtree (loop bounds, guard conditions, iterator reconstructions)."""

    def sub_expr(expr: LinExpr) -> LinExpr:
        coeff = expr.coeffs.get(name)
        if not coeff:
            return expr
        rest = LinExpr({n: c for n, c in expr.coeffs.items() if n != name},
                       expr.const)
        return rest + coeff * replacement

    for n in walk(node):
        if isinstance(n, Loop):
            n.lowers = [sub_expr(e) for e in n.lowers]
            n.uppers = [sub_expr(e) for e in n.uppers]
        elif isinstance(n, Guard):
            n.conditions = [Constraint(sub_expr(c.expr), c.sense)
                            for c in n.conditions]
        elif isinstance(n, StatementCall):
            n.iterator_exprs = {it: sub_expr(e)
                                for it, e in n.iterator_exprs.items()}
