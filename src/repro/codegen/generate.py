"""Polyhedral code generation: schedule -> loop AST.

For each statement we change basis into schedule time: the time-domain
polyhedron over ``t0..t{n-1}`` plus parameters is obtained by adding the
equalities ``t_d == row_d(i, p)`` to the iteration domain and eliminating
the original iterators (the schedule's full iterator rank guarantees this is
possible), and the iterator reconstruction ``i = M (t - G p - f)`` comes
from the rational pseudo-inverse of the iterator coefficient matrix.

The AST is then built dimension by dimension:

* dimensions where every statement has a scalar (iteration-independent) row
  split the statements into an ordered sequence;
* other dimensions become loops whose bounds are read off the per-statement
  time domains by Fourier–Motzkin projection; statements whose row is scalar
  at a loop dimension are guarded (``t_d == c``), which is how a producer
  statement sits at the start of a consumer's loop after fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from repro.codegen.ast import Guard, Loop, Seq, StatementCall
from repro.errors import CodegenError
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.linalg.matrix import Matrix
from repro.schedule.functions import Schedule, ScheduleRow
from repro.sets.polyhedron import Polyhedron
from repro.solver.problem import Constraint, LinExpr, var

__all__ = ["CodegenError", "generate_ast", "time_var"]


def time_var(dim: int) -> str:
    """Name of the schedule-time variable for dimension ``dim``."""
    return f"t{dim}"


@dataclass
class _TimeDomainItem:
    """One statement lifted into schedule time."""

    statement: Statement
    rows: list[ScheduleRow]
    polyhedron: Polyhedron              # over t-dims + params
    iterator_exprs: dict[str, LinExpr]  # iterators over t-dims + params


def _row_rhs_expr(row: ScheduleRow, dim: int) -> LinExpr:
    """``t_dim - (G_d p + f_d)`` as a LinExpr (the pure-iterator part)."""
    expr = var(time_var(dim))
    for p, c in zip(row.param_names, row.param_coeffs):
        if c:
            expr = expr - c * var(p)
    expr = expr - row.const
    return expr


def _iterator_reconstruction(statement: Statement,
                             rows: list[ScheduleRow]) -> dict[str, LinExpr]:
    """Solve ``H i = t - G p - f`` for the iterators.

    ``H`` (n_dims x depth) has full column rank for a complete schedule; the
    rational pseudo-inverse ``M = (H^T H)^{-1} H^T`` gives ``i = M rhs``.
    Raises :class:`CodegenError` when the reconstruction is non-integral
    (non-unimodular schedules are outside the supported class).
    """
    if not statement.iterators:
        return {}
    depth = len(statement.iterators)
    # Greedily pick a linearly independent subset of rows: the square
    # subsystem inverts cleanly even when extra (dependent) rows exist.
    chosen: list[int] = []
    for d, row in enumerate(rows):
        candidate = [list(rows[c].iter_coeffs) for c in chosen]
        candidate.append(list(row.iter_coeffs))
        if Matrix(candidate).rank() == len(candidate):
            chosen.append(d)
        if len(chosen) == depth:
            break
    if len(chosen) != depth:
        raise CodegenError(
            f"{statement.name}: schedule iterator part is rank-deficient")
    h_sel = Matrix([list(rows[d].iter_coeffs) for d in chosen])
    try:
        inverse = h_sel.inverse()  # depth x depth
    except ValueError as exc:
        raise CodegenError(
            f"{statement.name}: schedule iterator part is singular") from exc
    out: dict[str, LinExpr] = {}
    for k, iterator in enumerate(statement.iterators):
        expr = LinExpr()
        for position, d in enumerate(chosen):
            coeff = inverse[k, position]
            if coeff:
                expr = expr + coeff * _row_rhs_expr(rows[d], d)
        out[iterator] = expr
    return out


def _time_domain(statement: Statement, rows: list[ScheduleRow],
                 params: Sequence[str]) -> Polyhedron:
    """The statement's domain expressed over schedule-time variables."""
    n = len(rows)
    t_dims = [time_var(d) for d in range(n)]
    extra_params = [p for p in params if p not in statement.domain.dims]
    poly = Polyhedron(t_dims + list(statement.domain.dims) + extra_params,
                      statement.domain.constraints)
    equalities = []
    for d, row in enumerate(rows):
        equalities.append((var(time_var(d)) - row.as_expr()).eq(0))
    poly = poly.with_constraints(equalities)
    poly = poly.with_constraints([var(p) >= 1 for p in params])
    return poly.eliminate_all(list(statement.iterators))


def _canonical_bounds(exprs: list[LinExpr]) -> frozenset:
    return frozenset(
        (tuple(sorted(e.coeffs.items())), e.const) for e in exprs)


def generate_ast(kernel: Kernel, schedule: Schedule) -> Seq:
    """Generate the loop AST implementing ``schedule`` for ``kernel``."""
    if not schedule.is_complete():
        raise CodegenError("schedule is not complete (iterator rank deficit)")
    params = kernel.parameter_names
    items = []
    for statement in kernel.statements:
        rows = schedule.rows[statement.name]
        exprs = _iterator_reconstruction(statement, rows)
        for it, expr in exprs.items():
            if any(c.denominator != 1 for c in expr.coeffs.values()) or \
                    expr.const.denominator != 1:
                raise CodegenError(
                    f"{statement.name}: non-unimodular reconstruction of {it}")
        items.append(_TimeDomainItem(
            statement=statement, rows=rows,
            polyhedron=_time_domain(statement, rows, params),
            iterator_exprs=exprs))
    n_dims = schedule.n_dims
    return _generate(items, 0, n_dims, schedule, params)


def _scalar_value(row: ScheduleRow) -> Optional[LinExpr]:
    """The row as a pure parameter/constant expression, or None."""
    if not row.is_scalar:
        return None
    return row.as_expr()


def _generate(items: list[_TimeDomainItem], dim: int, n_dims: int,
              schedule: Schedule, params: Sequence[str]) -> Seq:
    if dim == n_dims:
        seq = Seq()
        for item in items:
            seq.children.append(StatementCall(
                statement=item.statement,
                iterator_exprs=dict(item.iterator_exprs)))
        return seq

    scalar_values = [_scalar_value(item.rows[dim]) for item in items]
    if all(v is not None for v in scalar_values):
        # Pure scalar dimension: order the statements into a sequence.
        groups: dict[tuple, list[_TimeDomainItem]] = {}
        keys: dict[tuple, LinExpr] = {}
        for item, value in zip(items, scalar_values):
            key = (tuple(sorted(value.coeffs.items())), value.const)
            groups.setdefault(key, []).append(item)
            keys[key] = value
        # Order groups by their expression value; parameters are positive,
        # and in practice scalar rows are plain constants.
        def sort_key(key):
            expr = keys[key]
            return (sorted(expr.coeffs.items()), expr.const)
        seq = Seq()
        for key in sorted(groups, key=sort_key):
            sub = _generate(groups[key], dim + 1, n_dims, schedule, params)
            seq.children.extend(sub.children)
        return seq

    # Loop dimension: bounds come from the non-scalar statements.
    t = time_var(dim)
    loop_items = [item for item, v in zip(items, scalar_values) if v is None]
    guarded_items = [(item, v) for item, v in zip(items, scalar_values)
                     if v is not None]

    bound_sets = set()
    per_item_bounds: dict[int, tuple[list[LinExpr], list[LinExpr]]] = {}
    for item in loop_items:
        inner = [time_var(d) for d in range(dim + 1, n_dims)]
        shadow = item.polyhedron.eliminate_all(inner)
        lowers, uppers = shadow.bounds_of(t)
        lowers = _dedupe(lowers)
        uppers = _dedupe(uppers)
        bound_sets.add((_canonical_bounds(lowers), _canonical_bounds(uppers)))
        per_item_bounds[id(item)] = (lowers, uppers)
    union = len(bound_sets) > 1
    guard_of: dict[int, list[Constraint]] = {}

    if union:
        # Union loop: bounds are min-of-lowers .. max-of-uppers, and every
        # loop statement is guarded with its own exact range.
        lowers = _dedupe([e for lo, _ in per_item_bounds.values() for e in lo])
        uppers = _dedupe([e for _, up in per_item_bounds.values() for e in up])
        for item in loop_items:
            own_lowers, own_uppers = per_item_bounds[id(item)]
            conditions = [(var(t) - low >= 0) for low in own_lowers]
            conditions += [(var(t) - up <= 0) for up in own_uppers]
            guard_of[id(item.statement)] = conditions
    else:
        lowers, uppers = next(iter(per_item_bounds.values()))

    # Scalar statements execute at one time point.  Classify each against
    # the loop range: provably-before and provably-after statements are
    # sequenced around the loop; in-range statements are guarded inside.
    before_items: list[_TimeDomainItem] = []
    after_items: list[_TimeDomainItem] = []
    inside_items: list[_TimeDomainItem] = []
    # A plain loop runs max(lowers)..min(uppers), so being outside any one
    # bound puts the scalar point outside the loop; a union loop runs
    # min(lowers)..max(uppers), so it must be outside *every* bound.
    bound_quantifier = all if union else any
    for item, value in guarded_items:
        strictly_before = bound_quantifier(
            item.polyhedron.with_constraints([value - low >= 0]).is_empty()
            for low in lowers)
        strictly_after = bound_quantifier(
            item.polyhedron.with_constraints([value - up <= 0]).is_empty()
            for up in uppers)
        if strictly_before:
            before_items.append(item)
            continue
        if strictly_after:
            after_items.append(item)
            continue
        below = [item.polyhedron.with_constraints([value - low <= -1])
                 for low in lowers]
        above = [item.polyhedron.with_constraints([value - up >= 1])
                 for up in uppers]
        low_ok = any(poly.is_empty() for poly in below) if union else \
            all(poly.is_empty() for poly in below)
        up_ok = any(poly.is_empty() for poly in above) if union else \
            all(poly.is_empty() for poly in above)
        if not (low_ok and up_ok):
            # Straddling: inside the loop range for some outer iterations,
            # outside for others (triangular bounds).  Promote to a union
            # loop that also covers the scalar time point.
            if not union:
                union = True
                for loop_item in loop_items:
                    own_lowers, own_uppers = per_item_bounds[id(loop_item)]
                    conditions = [(var(t) - low >= 0) for low in own_lowers]
                    conditions += [(var(t) - up <= 0) for up in own_uppers]
                    guard_of[id(loop_item.statement)] = conditions
            lowers = _dedupe(lowers + [value])
            uppers = _dedupe(uppers + [value])
        inside_items.append(item)
        guard_of[id(item.statement)] = [(var(t) - value).eq(0)]

    body_items = loop_items + inside_items
    inner_seq = _generate(body_items, dim + 1, n_dims, schedule, params)
    if guard_of:
        inner_seq = _wrap_guards(inner_seq, guard_of)

    info = schedule.dims[dim]
    loop = Loop(
        var=t,
        lowers=lowers,
        uppers=uppers,
        body=inner_seq,
        schedule_dim=dim,
        parallel=info.parallel,
        vector=info.vector,
        vector_width=info.vector_width,
        lower_is_min=union,
        upper_is_max=union,
    )
    out = Seq()
    if before_items:
        # All scalar at this dim: recursion partitions and orders them.
        out.children.extend(
            _generate(before_items, dim, n_dims, schedule, params).children)
    out.children.append(loop)
    if after_items:
        out.children.extend(
            _generate(after_items, dim, n_dims, schedule, params).children)
    return out


def _dedupe(exprs: list[LinExpr]) -> list[LinExpr]:
    seen = set()
    out = []
    for e in exprs:
        key = (tuple(sorted(e.coeffs.items())), e.const)
        if key not in seen:
            seen.add(key)
            out.append(e)
    return out


def _wrap_guards(seq: Seq, guard_of: dict[int, list[Constraint]]) -> Seq:
    """Wrap statement calls (wherever they sit) whose statement needs
    guarding with the given conditions."""
    out = Seq()
    for child in seq.children:
        if isinstance(child, StatementCall) and id(child.statement) in guard_of:
            out.children.append(Guard(
                conditions=list(guard_of[id(child.statement)]),
                body=Seq([child])))
        elif isinstance(child, (Loop, Guard)):
            child.body = _wrap_guards(child.body, guard_of)
            out.children.append(child)
        else:
            out.children.append(child)
    return out
