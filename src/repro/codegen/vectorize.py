"""Backend load/store vectorization pass (the second AKG modification).

The scheduler marks one dimension for vectorization (via the influence
tree); this pass validates the marked loop and finalizes it by strip-mining:

    for (t = 0; t < E; t++)            forall (to = 0; to < E/w; to++)
      body(t)                    ==>      forvec (ti = 0; ti < w; ti++)
                                            body(w*to + ti)

The outer strip inherits the original dimension's parallelism, so the
mapping pass can put it on ``threadIdx.x`` — adjacent threads then issue
adjacent vector-type accesses, combining memory coalescing with vector
types (the paper's central point).  The inner ``forvec`` loop is what the
backend rewrites with explicit vector types.

Validation:

* width must be 2 or 4 and divide the trip count (Section V condition (b));
* no dependence may be carried at the vector dimension *between iterations
  that are grouped together*: relations whose endpoints both iterate the
  dimension must not be carried there; a producer whose time at the
  dimension is pinned to the loop's start (the fused-producer pattern,
  e.g. statement X of the running example) is safe because it executes
  before the first group.

Loops that fail validation are demoted to plain loops, which is exactly the
``novec`` configuration's behaviour for every loop.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Optional

from repro.codegen.ast import (
    Guard,
    Loop,
    Seq,
    StatementCall,
    statements_in,
    substitute_var,
    walk,
)
from repro.deps.relation import DependenceRelation
from repro.ir.kernel import Kernel
from repro.schedule.functions import Schedule
from repro.solver.problem import LinExpr, var


def _constant_extent(loop: Loop, params: dict[str, int]) -> Optional[int]:
    """Trip count when the bounds are parameter-only expressions."""
    env = {p: Fraction(v) for p, v in params.items()}
    try:
        lowers = [e.evaluate(env) for e in loop.lowers]
        uppers = [e.evaluate(env) for e in loop.uppers]
    except KeyError:
        return None  # bounds reference outer loop variables
    lo = min(lowers) if loop.lower_is_min else max(lowers)
    hi = max(uppers) if loop.upper_is_max else min(uppers)
    return int(hi - lo) + 1


def _row_is_scalar_at(schedule: Schedule, name: str, dim: int) -> bool:
    return schedule.rows[name][dim].is_scalar


def _pinned_to_loop_start(schedule: Schedule, name: str, dim: int,
                          loop: Loop) -> bool:
    """True iff the statement's (scalar) time at ``dim`` equals the loop's
    lower bound, i.e. it runs before the first vector group."""
    row_expr = schedule.rows[name][dim].as_expr()
    return any(row_expr == low for low in loop.lowers)


def _unsafe_carried(relations: Iterable[DependenceRelation], schedule: Schedule,
                    dim: int, loop: Loop, names: set[str]) -> bool:
    """True iff grouping iterations of ``dim`` can break a dependence."""
    for rel in relations:
        if rel.kind == "input":
            continue
        if rel.source.name not in names or rel.target.name not in names:
            continue
        src_scalar = _row_is_scalar_at(schedule, rel.source.name, dim)
        tgt_scalar = _row_is_scalar_at(schedule, rel.target.name, dim)
        if src_scalar and tgt_scalar:
            continue  # neither endpoint is grouped
        if src_scalar and _pinned_to_loop_start(schedule, rel.source.name,
                                                dim, loop):
            continue  # producer runs before the first group
        # Restrict to pairs tied on the outer dimensions, then test whether
        # the dependence is carried at `dim`.
        poly = rel.polyhedron
        for d in range(dim):
            phi_s = schedule.rows[rel.source.name][d].as_expr()
            phi_t = schedule.rows[rel.target.name][d].as_expr()
            poly = poly.with_constraints([rel.delta_expr(phi_s, phi_t).eq(0)])
        phi_s = schedule.rows[rel.source.name][dim].as_expr()
        phi_t = schedule.rows[rel.target.name][dim].as_expr()
        carried = poly.with_constraints([rel.delta_expr(phi_s, phi_t) >= 1])
        if not carried.is_empty():
            return True
    return False


def _unguarded_calls(node) -> list[StatementCall]:
    """Statement calls not protected by a guard (guarded calls execute for
    single lanes and stay scalar)."""
    out: list[StatementCall] = []
    if isinstance(node, StatementCall):
        out.append(node)
    elif isinstance(node, Seq):
        for child in node.children:
            out.extend(_unguarded_calls(child))
    elif isinstance(node, Loop):
        out.extend(_unguarded_calls(node.body))
    # Guard subtrees are skipped on purpose.
    return out


def _effective_lower(loop: Loop, params: dict[str, int]) -> int:
    """The loop's concrete first iteration value (bounds are parameter-only
    for validated vector loops, so this is a plain integer)."""
    env = {p: Fraction(v) for p, v in params.items()}
    lowers = [e.evaluate(env) for e in loop.lowers]
    return math.ceil(min(lowers) if loop.lower_is_min else max(lowers))


def _strip_mine_vector_loop(loop: Loop, extent: int, lower: int) -> None:
    """Split the validated vector loop into a mappable outer strip and the
    ``forvec`` inner loop (in place: ``loop`` becomes the outer strip).

    The strip is rebased at zero, so the original variable is rewritten to
    ``lower + width*outer + inner`` — influence-shaped schedule rows can
    give the vector loop a nonzero start (e.g. ``theta(i) = i + 2``), and
    dropping ``lower`` would shift every grouped instance."""
    width = loop.vector_width
    outer_var = f"{loop.var}o"
    inner_var = f"{loop.var}v"
    replacement = (width * var(outer_var)) + var(inner_var) + lower

    inner = Loop(
        var=inner_var,
        lowers=[LinExpr(const=0)],
        uppers=[LinExpr(const=width - 1)],
        body=loop.body,
        schedule_dim=loop.schedule_dim,
        parallel=False,
        vector=True,
        vector_width=width,
    )
    substitute_var(inner.body, loop.var, replacement)
    for call in _unguarded_calls(inner.body):
        call.vector_width = width
    loop.var = outer_var
    loop.lowers = [LinExpr(const=0)]
    loop.uppers = [LinExpr(const=extent // width - 1)]
    loop.lower_is_min = False
    loop.upper_is_max = False
    loop.vector = False
    loop.vector_width = 0
    loop.body = Seq([inner])


def vectorize(ast: Seq, kernel: Kernel, schedule: Schedule,
              relations: Iterable[DependenceRelation],
              enable: bool = True) -> Seq:
    """Finalize (or demote) the vector-marked loops of ``ast`` in place.

    With ``enable=False`` every vector mark is stripped — this is the
    paper's ``novec`` configuration (influenced scheduling, no explicit
    vector types).
    """
    relations = list(relations)
    for node in list(walk(ast)):
        if not isinstance(node, Loop) or not node.vector:
            continue
        if not enable:
            _demote(node)
            continue
        width = node.vector_width
        extent = _constant_extent(node, kernel.params)
        if width not in (2, 4) or extent is None or extent % width != 0 \
                or extent < width:
            _demote(node)
            continue
        names = {call.statement.name for call in statements_in(node.body)}
        if _unsafe_carried(relations, schedule, node.schedule_dim, node, names):
            _demote(node)
            continue
        _strip_mine_vector_loop(node, extent,
                                _effective_lower(node, kernel.params))
    return ast


def _demote(loop: Loop) -> None:
    loop.vector = False
    loop.vector_width = 0
    for call in statements_in(loop.body):
        call.vector_width = 1
