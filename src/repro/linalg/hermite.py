"""Hermite normal form and orthogonal-complement computations.

The progression constraint builder (Section IV-A-3 of the paper) needs a basis
of the subspace orthogonal to already-computed schedule rows.  Pluto computes
``H^perp = I - H^T (H H^T)^{-1} H``; isl relies on a Hermite-normal-form
decomposition.  We provide both: :func:`orthogonal_complement` implements the
rational projector approach, :func:`hermite_normal_form` the integer form.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Sequence

from repro.linalg.matrix import Matrix
from repro.linalg.rational import primitive


def rank(rows: Sequence[Sequence]) -> int:
    """Rank of the row set (0 for the empty set)."""
    rows = [list(r) for r in rows if any(x != 0 for x in r)]
    if not rows:
        return 0
    return Matrix(rows).rank()


def hermite_normal_form(mat: Matrix) -> tuple[Matrix, Matrix]:
    """Row-style Hermite normal form.

    Returns ``(H, U)`` with ``H = U @ mat``, ``U`` unimodular over the
    integers, and ``H`` in (lower-triangular-per-pivot) row HNF: pivot of each
    nonzero row is positive, entries below a pivot are zero, entries above a
    pivot are reduced modulo the pivot into ``[0, pivot)``.

    The input must have integer entries.
    """
    work = [[int(x) for x in row] for row in mat.rows]
    for row, orig in zip(work, mat.rows):
        for cell, frac_cell in zip(row, orig):
            if cell != frac_cell:
                raise ValueError("hermite_normal_form requires integer entries")
    n_rows, n_cols = mat.n_rows, mat.n_cols
    unimod = [[1 if i == j else 0 for j in range(n_rows)] for i in range(n_rows)]

    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        # Euclidean elimination below the pivot.
        while True:
            nonzero = [i for i in range(pivot_row, n_rows) if work[i][col] != 0]
            if not nonzero:
                break
            best = min(nonzero, key=lambda i: abs(work[i][col]))
            if best != pivot_row:
                work[pivot_row], work[best] = work[best], work[pivot_row]
                unimod[pivot_row], unimod[best] = unimod[best], unimod[pivot_row]
            done = True
            for i in range(pivot_row + 1, n_rows):
                if work[i][col] != 0:
                    q = work[i][col] // work[pivot_row][col]
                    work[i] = [a - q * b for a, b in zip(work[i], work[pivot_row])]
                    unimod[i] = [a - q * b for a, b in zip(unimod[i], unimod[pivot_row])]
                    if work[i][col] != 0:
                        done = False
            if done:
                break
        if work[pivot_row][col] == 0:
            continue
        if work[pivot_row][col] < 0:
            work[pivot_row] = [-x for x in work[pivot_row]]
            unimod[pivot_row] = [-x for x in unimod[pivot_row]]
        # Reduce the entries above the pivot.
        p = work[pivot_row][col]
        for i in range(pivot_row):
            q = work[i][col] // p
            if q:
                work[i] = [a - q * b for a, b in zip(work[i], work[pivot_row])]
                unimod[i] = [a - q * b for a, b in zip(unimod[i], unimod[pivot_row])]
        pivot_row += 1
    return Matrix(work), Matrix(unimod)


def integer_nullspace(mat: Matrix) -> list[list[int]]:
    """A basis of integer vectors spanning the rational nullspace of ``mat``."""
    return [primitive(v) for v in mat.nullspace()]


def orthogonal_complement(rows: Sequence[Sequence]) -> list[list[int]]:
    """Integer basis of the orthogonal complement of the span of ``rows``.

    This is the ``H^perp`` of the Pluto progression constraints: every
    returned vector is orthogonal to all input rows, and together with the
    input rows they span the full space.  For an empty input the identity
    basis is returned.
    """
    rows = [list(r) for r in rows if any(Fraction(x) != 0 for x in r)]
    if not rows:
        dim = 0
        raise ValueError("cannot infer dimension from an empty row set; "
                         "pass at least one (possibly zero-padded) row or use identity")
    mat = Matrix(rows)
    return integer_nullspace(mat)


def orthogonal_complement_or_identity(rows: Sequence[Sequence], dim: int) -> list[list[int]]:
    """Like :func:`orthogonal_complement` but returns the identity basis when
    ``rows`` spans nothing, and [] when ``rows`` spans everything."""
    nonzero = [list(r) for r in rows if any(Fraction(x) != 0 for x in r)]
    if not nonzero:
        eye = []
        for i in range(dim):
            v = [0] * dim
            v[i] = 1
            eye.append(v)
        return eye
    for r in nonzero:
        if len(r) != dim:
            raise ValueError(f"row length {len(r)} != dim {dim}")
    return orthogonal_complement(nonzero)


def lattice_gcd(values: Sequence[int]) -> int:
    """gcd of a sequence of integers (0 for the empty sequence)."""
    g = 0
    for v in values:
        g = gcd(g, abs(int(v)))
    return g
