"""A small dense matrix over exact rationals.

The polyhedral stack only ever manipulates matrices with a few dozen rows and
columns, so this favours clarity over asymptotic cleverness.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.linalg.rational import frac, vec_dot

Vector = list  # alias used in signatures for readability


class Matrix:
    """A dense matrix of :class:`fractions.Fraction` entries."""

    __slots__ = ("rows", "n_rows", "n_cols")

    def __init__(self, rows: Iterable[Sequence]):
        self.rows: list[list[Fraction]] = [[frac(x) for x in row] for row in rows]
        self.n_rows = len(self.rows)
        self.n_cols = len(self.rows[0]) if self.rows else 0
        for row in self.rows:
            if len(row) != self.n_cols:
                raise ValueError("ragged rows in matrix")

    # -- constructors -----------------------------------------------------

    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "Matrix":
        """An ``n_rows x n_cols`` zero matrix."""
        return cls([[0] * n_cols for _ in range(n_rows)])

    @classmethod
    def identity(cls, n: int) -> "Matrix":
        """The ``n x n`` identity."""
        rows = [[0] * n for _ in range(n)]
        for i in range(n):
            rows[i][i] = 1
        return cls(rows)

    # -- basic protocol ----------------------------------------------------

    def __getitem__(self, idx):
        if isinstance(idx, tuple):
            i, j = idx
            return self.rows[i][j]
        return self.rows[idx]

    def __setitem__(self, idx, value):
        if isinstance(idx, tuple):
            i, j = idx
            self.rows[i][j] = frac(value)
        else:
            self.rows[idx] = [frac(x) for x in value]

    def __eq__(self, other):
        return isinstance(other, Matrix) and self.rows == other.rows

    def __hash__(self):
        return hash(tuple(tuple(row) for row in self.rows))

    def __repr__(self):
        body = "; ".join(" ".join(str(x) for x in row) for row in self.rows)
        return f"Matrix[{self.n_rows}x{self.n_cols}]({body})"

    def copy(self) -> "Matrix":
        """A deep copy."""
        return Matrix([list(row) for row in self.rows])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    # -- algebra -----------------------------------------------------------

    def transpose(self) -> "Matrix":
        """The transpose."""
        return Matrix([[self.rows[i][j] for i in range(self.n_rows)]
                       for j in range(self.n_cols)])

    def __add__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch {self.shape} vs {other.shape}")
        return Matrix([[a + b for a, b in zip(ra, rb)]
                       for ra, rb in zip(self.rows, other.rows)])

    def __sub__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch {self.shape} vs {other.shape}")
        return Matrix([[a - b for a, b in zip(ra, rb)]
                       for ra, rb in zip(self.rows, other.rows)])

    def __mul__(self, k) -> "Matrix":
        k = frac(k)
        return Matrix([[k * x for x in row] for row in self.rows])

    __rmul__ = __mul__

    def __matmul__(self, other):
        """Matrix @ Matrix or Matrix @ vector."""
        if isinstance(other, Matrix):
            if self.n_cols != other.n_rows:
                raise ValueError(f"shape mismatch {self.shape} @ {other.shape}")
            cols = other.transpose().rows
            return Matrix([[vec_dot(row, col) for col in cols] for row in self.rows])
        vec = [frac(x) for x in other]
        if self.n_cols != len(vec):
            raise ValueError(f"shape mismatch {self.shape} @ vec[{len(vec)}]")
        return [vec_dot(row, vec) for row in self.rows]

    def hstack(self, other: "Matrix") -> "Matrix":
        """Horizontal concatenation ``[self | other]``."""
        if self.n_rows != other.n_rows:
            raise ValueError("row count mismatch in hstack")
        return Matrix([ra + rb for ra, rb in zip(self.rows, other.rows)])

    def vstack(self, other: "Matrix") -> "Matrix":
        """Vertical concatenation."""
        if self.n_rows and other.n_rows and self.n_cols != other.n_cols:
            raise ValueError("column count mismatch in vstack")
        return Matrix([list(r) for r in self.rows] + [list(r) for r in other.rows])

    # -- elimination -------------------------------------------------------

    def rref(self) -> tuple["Matrix", list[int]]:
        """Reduced row echelon form and the list of pivot columns."""
        mat = [list(row) for row in self.rows]
        pivots: list[int] = []
        r = 0
        for c in range(self.n_cols):
            if r >= self.n_rows:
                break
            pivot_row = next((i for i in range(r, self.n_rows) if mat[i][c] != 0), None)
            if pivot_row is None:
                continue
            mat[r], mat[pivot_row] = mat[pivot_row], mat[r]
            inv = 1 / mat[r][c]
            mat[r] = [x * inv for x in mat[r]]
            for i in range(self.n_rows):
                if i != r and mat[i][c] != 0:
                    factor = mat[i][c]
                    mat[i] = [x - factor * y for x, y in zip(mat[i], mat[r])]
            pivots.append(c)
            r += 1
        return Matrix(mat), pivots

    def rank(self) -> int:
        """The rank of the matrix."""
        _, pivots = self.rref()
        return len(pivots)

    def nullspace(self) -> list[list[Fraction]]:
        """A basis of the (right) nullspace as a list of vectors."""
        red, pivots = self.rref()
        free = [c for c in range(self.n_cols) if c not in pivots]
        basis = []
        for f in free:
            v = [Fraction(0)] * self.n_cols
            v[f] = Fraction(1)
            for r, p in enumerate(pivots):
                v[p] = -red[r][f]
            basis.append(v)
        return basis

    def solve(self, b: Sequence) -> list[Fraction] | None:
        """One solution of ``self @ x = b`` or None if inconsistent."""
        rhs = [frac(x) for x in b]
        if len(rhs) != self.n_rows:
            raise ValueError("rhs length mismatch")
        aug = Matrix([row + [rhs[i]] for i, row in enumerate(self.rows)])
        red, pivots = aug.rref()
        if self.n_cols in pivots:  # pivot in the rhs column => inconsistent
            return None
        x = [Fraction(0)] * self.n_cols
        for r, p in enumerate(pivots):
            x[p] = red[r][self.n_cols]
        return x

    def inverse(self) -> "Matrix":
        """The inverse; raises ValueError if singular or non-square."""
        if self.n_rows != self.n_cols:
            raise ValueError("only square matrices are invertible")
        aug = self.hstack(Matrix.identity(self.n_rows))
        red, pivots = aug.rref()
        if pivots != list(range(self.n_rows)):
            raise ValueError("matrix is singular")
        return Matrix([row[self.n_rows:] for row in red.rows])

    def determinant(self) -> Fraction:
        """The determinant (fraction-free not required at these sizes)."""
        if self.n_rows != self.n_cols:
            raise ValueError("determinant of a non-square matrix")
        mat = [list(row) for row in self.rows]
        n = self.n_rows
        det = Fraction(1)
        for c in range(n):
            pivot_row = next((i for i in range(c, n) if mat[i][c] != 0), None)
            if pivot_row is None:
                return Fraction(0)
            if pivot_row != c:
                mat[c], mat[pivot_row] = mat[pivot_row], mat[c]
                det = -det
            det *= mat[c][c]
            inv = 1 / mat[c][c]
            for i in range(c + 1, n):
                if mat[i][c] != 0:
                    factor = mat[i][c] * inv
                    mat[i] = [x - factor * y for x, y in zip(mat[i], mat[c])]
        return det
