"""Exact rational linear algebra used throughout the polyhedral stack.

Everything in this package works over :class:`fractions.Fraction` so that
scheduling decisions are never corrupted by floating-point rounding.  The
main entry points are:

* :class:`repro.linalg.matrix.Matrix` — a small dense matrix class.
* :func:`repro.linalg.hermite.hermite_normal_form` — row-style HNF, used by
  the progression constraint builder (as in isl scheduling).
* :func:`repro.linalg.hermite.integer_nullspace` — integer kernel basis.
* :func:`repro.linalg.hermite.orthogonal_complement` — basis of the subspace
  orthogonal to a set of row vectors (Pluto's ``H^\\perp``).
"""

from repro.linalg.matrix import Matrix, Vector
from repro.linalg.rational import (
    frac,
    vec_add,
    vec_dot,
    vec_scale,
    vec_sub,
    clear_denominators,
    primitive,
)
from repro.linalg.hermite import (
    hermite_normal_form,
    integer_nullspace,
    orthogonal_complement,
    rank,
)

__all__ = [
    "Matrix",
    "Vector",
    "frac",
    "vec_add",
    "vec_dot",
    "vec_scale",
    "vec_sub",
    "clear_denominators",
    "primitive",
    "hermite_normal_form",
    "integer_nullspace",
    "orthogonal_complement",
    "rank",
]
