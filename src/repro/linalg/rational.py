"""Small helpers for exact rational vectors.

Vectors are plain Python lists (or tuples) of :class:`fractions.Fraction`.
Keeping them as built-in sequences keeps the solver code simple and makes the
structures trivially hashable/serializable when converted to tuples.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Sequence

Rat = Fraction


def frac(value) -> Fraction:
    """Coerce ``value`` (int, str, float-free) to an exact :class:`Fraction`.

    Floats are rejected on purpose: silently converting binary floats would
    smuggle rounding error into the exact pipeline.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not rational scalars")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot build an exact rational from {value!r}")


def vec_add(a: Sequence[Fraction], b: Sequence[Fraction]) -> list[Fraction]:
    """Return ``a + b`` element-wise."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return [x + y for x, y in zip(a, b)]


def vec_sub(a: Sequence[Fraction], b: Sequence[Fraction]) -> list[Fraction]:
    """Return ``a - b`` element-wise."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return [x - y for x, y in zip(a, b)]


def vec_scale(a: Sequence[Fraction], k) -> list[Fraction]:
    """Return ``k * a``."""
    k = frac(k)
    return [k * x for x in a]


def vec_dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    """Return the dot product of ``a`` and ``b``."""
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    return sum((x * y for x, y in zip(a, b)), Fraction(0))


def is_zero_vector(a: Iterable[Fraction]) -> bool:
    """True iff every component of ``a`` is zero."""
    return all(x == 0 for x in a)


def clear_denominators(a: Sequence[Fraction]) -> list[int]:
    """Scale ``a`` by the lcm of its denominators and return integer entries."""
    lcm = 1
    for x in a:
        d = frac(x).denominator
        lcm = lcm * d // gcd(lcm, d)
    return [int(frac(x) * lcm) for x in a]


def primitive(a: Sequence[Fraction]) -> list[int]:
    """Return the primitive integer vector proportional to ``a``.

    The result has integer entries with gcd 1 and the same direction as
    ``a`` (an all-zero vector is returned unchanged).
    """
    ints = clear_denominators(a)
    g = 0
    for x in ints:
        g = gcd(g, abs(x))
    if g <= 1:
        return ints
    return [x // g for x in ints]
