"""Warp-level memory transaction model: L1 + L2 write-back sector caches.

Transactions are counted per warp instruction at 32-byte sector granularity
(the V100's L2 sector size), with a two-level write-back hierarchy:

* **L1** (per thread block in this model): read-allocate on loads,
  write-allocate-without-fetch on stores; dirty sectors spill to L2 on
  eviction and when the block finishes.
* **L2** (shared, persists across blocks of one launch): same policy;
  dirty evictions and the final flush are DRAM write transactions, read
  misses are DRAM read transactions.

This reproduces the behaviours the paper's optimization targets:

* coalesced warp accesses touch few sectors (cheap),
* per-thread-sequential accesses get L1 reuse,
* neighbouring blocks combine scattered stores in L2 *only while the
  working set between revisits fits* — large tensors with bad layouts pay
  real read/write amplification, exactly the cases influenced scheduling
  fixes,
* repeated accumulator stores (fused reductions) combine in L1.

The issue-cost side (transaction replays for uncoalesced instructions) is
captured by ``sectors_touched`` independently of cache hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional


class SectorCache:
    """An LRU write-back cache of memory sectors."""

    def __init__(self, capacity_bytes: int, sector_bytes: int):
        if capacity_bytes <= 0 or sector_bytes <= 0:
            raise ValueError("capacity and sector size must be positive")
        self.capacity_sectors = max(1, capacity_bytes // sector_bytes)
        self.sector_bytes = sector_bytes
        self._sectors: OrderedDict[int, bool] = OrderedDict()  # sector -> dirty
        self.hits = 0
        self.misses = 0

    def load(self, sector: int) -> tuple[bool, Optional[int]]:
        """Read one sector.

        Returns ``(hit, evicted_dirty_sector)``; on a miss the sector is
        allocated and the eviction (if any, and dirty) is reported so the
        caller can spill it to the next level.
        """
        if sector in self._sectors:
            self._sectors.move_to_end(sector)
            self.hits += 1
            return True, None
        self.misses += 1
        return False, self._insert(sector, dirty=False)

    def store(self, sector: int) -> Optional[int]:
        """Write one sector (write-allocate without fetch); returns an
        evicted dirty sector to spill, if any."""
        if sector in self._sectors:
            self._sectors[sector] = True
            self._sectors.move_to_end(sector)
            return None
        return self._insert(sector, dirty=True)

    def _insert(self, sector: int, dirty: bool) -> Optional[int]:
        self._sectors[sector] = dirty
        if len(self._sectors) > self.capacity_sectors:
            victim, was_dirty = self._sectors.popitem(last=False)
            if was_dirty:
                return victim
        return None

    def flush(self) -> list[int]:
        """Return (and clean) every dirty sector."""
        dirty = [s for s, d in self._sectors.items() if d]
        for sector in dirty:
            self._sectors[sector] = False
        return dirty

    def reset(self) -> None:
        self._sectors.clear()

    def clear_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class MemoryHierarchy:
    """L1 (per block) + L2 (per launch) with DRAM transaction counting."""

    def __init__(self, l1_bytes: int, l2_bytes: int, sector_bytes: int):
        self.l1 = SectorCache(l1_bytes, sector_bytes)
        self.l2 = SectorCache(l2_bytes, sector_bytes)
        self.sector_bytes = sector_bytes
        self.dram_reads = 0
        self.dram_writes = 0

    # -- sector operations ---------------------------------------------------

    def load_sector(self, sector: int) -> None:
        hit, spilled = self.l1.load(sector)
        if spilled is not None:
            self._l2_store(spilled)
        if hit:
            return
        l2_hit, l2_evicted = self.l2.load(sector)
        if l2_evicted is not None:
            self.dram_writes += 1
        if not l2_hit:
            self.dram_reads += 1

    def store_sector(self, sector: int) -> None:
        spilled = self.l1.store(sector)
        if spilled is not None:
            self._l2_store(spilled)

    def _l2_store(self, sector: int) -> None:
        evicted = self.l2.store(sector)
        if evicted is not None:
            self.dram_writes += 1

    # -- lifecycle -------------------------------------------------------------

    def end_block(self) -> None:
        """A thread block finished: spill its L1 to L2 and recycle L1."""
        for sector in self.l1.flush():
            self._l2_store(sector)
        self.l1.reset()

    def end_kernel(self) -> None:
        """The launch finished: write back everything still dirty in L2."""
        self.end_block()
        self.dram_writes += len(self.l2.flush())

    @property
    def dram_transactions(self) -> int:
        return self.dram_reads + self.dram_writes


@dataclass
class WarpAccessResult:
    """Outcome of one warp memory instruction."""

    sectors_touched: int      # unique sectors across the warp
    bytes_requested: int      # useful bytes moved by the instruction


def warp_access(memory: MemoryHierarchy,
                lane_ranges: Iterable[tuple[int, int]],
                is_write: bool) -> WarpAccessResult:
    """Simulate one warp memory instruction.

    ``lane_ranges`` lists ``(byte_address, n_bytes)`` per active lane (a
    vector access is one lane range of 8/16 bytes).
    """
    sector_size = memory.sector_bytes
    sectors: set[int] = set()
    requested = 0
    for address, n_bytes in lane_ranges:
        if n_bytes <= 0:
            raise ValueError("lane access must move at least one byte")
        requested += n_bytes
        first = address // sector_size
        last = (address + n_bytes - 1) // sector_size
        sectors.update(range(first, last + 1))
    if not sectors:
        return WarpAccessResult(0, 0)

    if is_write:
        for sector in sectors:
            memory.store_sector(sector)
    else:
        for sector in sorted(sectors):
            memory.load_sector(sector)
    return WarpAccessResult(len(sectors), requested)


def replay_warp_pattern(memory: MemoryHierarchy, base_sector: int,
                        write_sequence: Iterable[int],
                        sorted_sectors: Iterable[int],
                        is_write: bool) -> None:
    """Drive the hierarchy with a memoized warp sector pattern, exactly as
    :func:`warp_access` would for the equivalent lane ranges.

    The fast interpreter (:mod:`repro.gpu.fastpath`) memoizes per-warp
    sector patterns *relative to the base sector* and replays them here.
    The replay must reproduce :func:`warp_access`'s sector-operation
    sequence byte for byte, because the LRU caches are order-sensitive:

    * **writes** iterate the raw Python ``set`` above, whose iteration
      order depends on the inserted values *and* the insertion sequence —
      so the replay rebuilds an equivalent set by inserting the identical
      value sequence (``write_sequence`` holds the relative sectors in the
      order the per-lane ``update(range(first, last + 1))`` calls insert
      them: lane order, ascending within a lane, duplicates preserved —
      duplicate inserts are no-ops in both constructions);
    * **reads** iterate ``sorted(sectors)``, which is value-deterministic,
      so the replay streams the memoized ``sorted_sectors`` (relative,
      deduplicated, ascending) directly without building a set at all.
    """
    l1 = memory.l1
    l2 = memory.l2
    l1_sectors = l1._sectors
    l2_sectors = l2._sectors
    l1_cap = l1.capacity_sectors
    l2_cap = l2.capacity_sectors
    if is_write:
        sectors = set([base_sector + rel for rel in write_sequence])
        # Inlined store_sector -> l1.store -> _l2_store chain: the same
        # OrderedDict mutations and counter updates in the same order,
        # without per-sector call frames (`store` keeps no hit counters).
        for sector in sectors:
            if sector in l1_sectors:
                l1_sectors[sector] = True
                l1_sectors.move_to_end(sector)
                continue
            l1_sectors[sector] = True
            if len(l1_sectors) > l1_cap:
                victim, was_dirty = l1_sectors.popitem(last=False)
                if was_dirty:
                    if victim in l2_sectors:
                        l2_sectors[victim] = True
                        l2_sectors.move_to_end(victim)
                    else:
                        l2_sectors[victim] = True
                        if len(l2_sectors) > l2_cap:
                            l2_victim, l2_dirty = l2_sectors.popitem(last=False)
                            if l2_dirty:
                                memory.dram_writes += 1
    else:
        # Inlined load_sector: L1 probe/insert/evict, dirty spill to L2,
        # then the L2 probe — the exact sequence of the method chain.
        for rel in sorted_sectors:
            sector = base_sector + rel
            if sector in l1_sectors:
                l1_sectors.move_to_end(sector)
                l1.hits += 1
                continue
            l1.misses += 1
            l1_sectors[sector] = False
            if len(l1_sectors) > l1_cap:
                victim, was_dirty = l1_sectors.popitem(last=False)
                if was_dirty:
                    if victim in l2_sectors:
                        l2_sectors[victim] = True
                        l2_sectors.move_to_end(victim)
                    else:
                        l2_sectors[victim] = True
                        if len(l2_sectors) > l2_cap:
                            l2_victim, l2_dirty = l2_sectors.popitem(last=False)
                            if l2_dirty:
                                memory.dram_writes += 1
            if sector in l2_sectors:
                l2_sectors.move_to_end(sector)
                l2.hits += 1
            else:
                l2.misses += 1
                l2_sectors[sector] = False
                if len(l2_sectors) > l2_cap:
                    l2_victim, l2_dirty = l2_sectors.popitem(last=False)
                    if l2_dirty:
                        memory.dram_writes += 1
                memory.dram_reads += 1
