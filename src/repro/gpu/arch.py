"""GPU architecture parameters.

``V100`` approximates the paper's testbed (Tesla V100 PCIe, CUDA 10.1).
Only ratios matter for the reproduction; the constants are nevertheless
chosen close to the real part so the time scale is plausible.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuArch:
    """Parameters of the execution model."""

    name: str
    sm_count: int
    clock_hz: float
    warp_size: int
    dram_bandwidth: float        # bytes / second
    sector_bytes: int            # memory transaction granularity
    l1_bytes: int                # per-SM sector cache capacity
    l2_bytes: int                # shared sector cache capacity
    max_threads_per_block: int
    launch_overhead_s: float     # per kernel launch
    min_kernel_s: float          # latency floor for any launch
    mem_instr_cycles: int        # base cycles per warp load/store instruction
    arith_instr_cycles: int      # cycles per warp arithmetic instruction
    sectors_per_cycle: int = 4   # L1 wavefronts: sectors processed per cycle

    @property
    def issue_rate(self) -> float:
        """Warp instructions per second across the whole device."""
        return self.sm_count * self.clock_hz


V100 = GpuArch(
    name="V100-PCIe-16GB",
    sm_count=80,
    clock_hz=1.245e9,            # paper: clocked @ 1245 MHz
    warp_size=32,
    dram_bandwidth=900e9,
    sector_bytes=32,
    l1_bytes=128 * 1024,
    l2_bytes=6 * 1024 * 1024,
    max_threads_per_block=1024,
    launch_overhead_s=4e-6,
    min_kernel_s=2e-6,
    mem_instr_cycles=4,
    arith_instr_cycles=1,
)

# A newer data-center part: more SMs, much more bandwidth and L2.  Useful
# for sensitivity studies — bandwidth-rich devices shrink the coalescing
# gaps but keep the instruction-count wins of vector types.
A100 = GpuArch(
    name="A100-SXM4-40GB",
    sm_count=108,
    clock_hz=1.41e9,
    warp_size=32,
    dram_bandwidth=1555e9,
    sector_bytes=32,
    l1_bytes=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    max_threads_per_block=1024,
    launch_overhead_s=4e-6,
    min_kernel_s=2e-6,
    mem_instr_cycles=4,
    arith_instr_cycles=1,
)

# An edge-class part (MindSpore's "from edge to cloud" motivation): few
# SMs, narrow memory bus, small caches — layout quality matters even more.
EDGE = GpuArch(
    name="edge-soc-gpu",
    sm_count=8,
    clock_hz=1.0e9,
    warp_size=32,
    dram_bandwidth=60e9,
    sector_bytes=32,
    l1_bytes=64 * 1024,
    l2_bytes=1 * 1024 * 1024,
    max_threads_per_block=512,
    launch_overhead_s=8e-6,
    min_kernel_s=4e-6,
    mem_instr_cycles=4,
    arith_instr_cycles=1,
)

ARCHITECTURES: dict[str, GpuArch] = {
    arch.name: arch for arch in (V100, A100, EDGE)
}
