"""Pluggable simulator backends.

``simulate_kernel`` no longer hard-wires the lane-enumerating interpreter;
it resolves a :class:`SimulatorBackend` from a registry, mirroring
:mod:`repro.solver.backend`.  Two backends ship:

* ``fast`` (default) — the closed-form warp execution of
  :mod:`repro.gpu.fastpath`: shared-environment traversal, analytic
  per-warp sector patterns, and warp-signature memoization.  Counters are
  bitwise-identical to the reference by construction; any unsupported
  construct restarts the whole launch on the reference interpreter
  (counted as ``sim.fastpath.fallback``).
* ``reference`` — the original per-lane interpreter, retained as the
  ground truth the CI parity matrix diffs ``fast`` against.

Selection order for :func:`resolve_simulator`:

1. an explicit ``name`` argument (``--sim`` / ``AkgPipeline(sim=...)``),
2. the ``REPRO_SIM`` environment variable,
3. the default ``"fast"``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

from repro.obs.runtime import get_obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.codegen.cuda import MappedKernel
    from repro.gpu.arch import GpuArch
    from repro.gpu.simulator import KernelProfile

ENV_VAR = "REPRO_SIM"
DEFAULT_SIMULATOR = "fast"


@runtime_checkable
class SimulatorBackend(Protocol):
    """One way of producing a :class:`KernelProfile` for a mapped kernel."""

    name: str

    def run(self, mapped: "MappedKernel", arch: "GpuArch",
            sample_blocks: int) -> "KernelProfile":
        ...


class ReferenceSimulatorBackend:
    """The original lane-enumerating interpreter (ground truth)."""

    name = "reference"

    def run(self, mapped: "MappedKernel", arch: "GpuArch",
            sample_blocks: int) -> "KernelProfile":
        from repro.gpu.simulator import _Simulator, _execute_kernel
        profile, _ = _execute_kernel(mapped, arch, sample_blocks, _Simulator)
        return profile


class FastSimulatorBackend:
    """Closed-form warp simulation with whole-launch reference fallback.

    Counter parity with ``reference`` is bitwise (enforced by tests and the
    CI parity matrix); a launch using a construct the fast interpreter does
    not model (e.g. a lane-variant mapped-loop lower bound) is re-run from
    scratch on the reference interpreter so mid-launch cache state never
    mixes the two.
    """

    name = "fast"

    def run(self, mapped: "MappedKernel", arch: "GpuArch",
            sample_blocks: int) -> "KernelProfile":
        from repro.gpu.fastpath import FallbackNeeded, _FastSimulator
        from repro.gpu.simulator import _Simulator, _execute_kernel
        metrics = get_obs().metrics
        try:
            profile, sim = _execute_kernel(mapped, arch, sample_blocks,
                                           _FastSimulator)
        except FallbackNeeded:
            if metrics.enabled:
                metrics.count("sim.fastpath.fallback")
            profile, _ = _execute_kernel(mapped, arch, sample_blocks,
                                         _Simulator)
            return profile
        if metrics.enabled:
            if sim.analytic_builds:
                metrics.count("sim.fastpath.analytic", sim.analytic_builds)
            if sim.memo_hits:
                metrics.count("sim.fastpath.memo_hits", sim.memo_hits)
        return profile


_REGISTRY: dict[str, Callable[[], SimulatorBackend]] = {}
_INSTANCES: dict[str, SimulatorBackend] = {}


def register_simulator(name: str,
                       factory: Callable[[], SimulatorBackend]) -> None:
    """Register (or replace) a simulator backend factory under ``name``."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_simulators() -> list[str]:
    """Registered simulator names, registration order."""
    return list(_REGISTRY)


def resolve_simulator(name: Optional[str] = None) -> SimulatorBackend:
    """Resolve a backend by name / ``REPRO_SIM`` / default.

    Instances are cached per name — backends are expected to be stateless
    (all per-launch state lives in the simulator instances they create).
    """
    chosen = name or os.environ.get(ENV_VAR, "") or DEFAULT_SIMULATOR
    factory = _REGISTRY.get(chosen)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown simulator backend {chosen!r} (registered: {known})")
    instance = _INSTANCES.get(chosen)
    if instance is None:
        instance = _INSTANCES[chosen] = factory()
    return instance


register_simulator(FastSimulatorBackend.name, FastSimulatorBackend)
register_simulator(ReferenceSimulatorBackend.name, ReferenceSimulatorBackend)
