"""Content-keyed deduplication of simulated kernel profiles.

Structurally identical mapped kernels are simulated again and again: the
``novec`` and ``infl`` variants coincide whenever vectorization does not
fire, the ``tvm`` variant's single-statement clusters reproduce the whole
kernel for unfused operators, degradation rungs re-lower to the baseline
mapping, and the differential oracle re-measures every launch the variant
loop already measured.  This cache is the same content-hash trick as
:mod:`repro.solver.dedup`, applied to :func:`repro.gpu.simulate_kernel`:
the key is the mapped kernel's *content* — the kernel IR signature (names
erased), the rendered loop AST, the launch geometry — plus the
architecture and the sampling width, so renamed-but-identical launches
hit.

The cache is ambient, mirroring ``solver/dedup.py``: the evaluation
runner installs one per *operator evaluation* (all four variants of one
operator share it), and ``simulate_kernel`` consults it via
:func:`get_profile_cache`.  The scope is never wider than one operator:
each operator is evaluated wholly inside one process in both serial and
parallel evaluation, so the ``sim.profile_cache.*`` metric streams stay
identical between the two — the same discipline as the warm-start pool.

A replayed profile is bitwise-identical to simulating by construction —
the simulator is a deterministic pure function of the key's content.
Only the profile's ``name`` is rewritten to the requesting kernel's name
(kernel names are erased from the key, exactly as in
:func:`repro.ir.signature.kernel_signature`).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.ir.signature import kernel_signature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.codegen.cuda import MappedKernel
    from repro.gpu.arch import GpuArch

#: Entries kept per cache (LRU).  A single operator evaluation stays well
#: under this; the bound only guards against pathological workloads.
MAX_ENTRIES = 1024

_MISS = object()


def profile_cache_key(mapped: "MappedKernel", arch: "GpuArch",
                      sample_blocks: int) -> tuple:
    """The content key of one simulation request.

    Everything the simulator's counters depend on enters the key: the
    kernel IR signature (parameters, statement structure, accesses with
    tensor shapes/dtypes — kernel names excluded), the rendered loop AST
    (bounds, guards, mapping annotations, per-call iterator
    reconstructions), the grid/block geometry, the architecture model and
    the block-sampling width.  The mapped-kernel part is memoized on the
    (immutable-after-mapping) ``MappedKernel`` so the AST renders once.
    """
    sig = getattr(mapped, "_profile_sig", None)
    if sig is None:
        sig = (kernel_signature(mapped.kernel),
               "\n".join(mapped.ast.render()),
               tuple((d.loop_var, d.extent, d.mapping) for d in mapped.grid),
               tuple((d.loop_var, d.extent, d.mapping) for d in mapped.block))
        mapped._profile_sig = sig
    return (sig, arch, sample_blocks)


class ProfileCache:
    """LRU of simulated :class:`KernelProfile`\\ s, keyed on content."""

    __slots__ = ("max_entries", "_entries", "hits", "misses")

    def __init__(self, max_entries: int = MAX_ENTRIES):
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, key):
        """Return the cached profile for ``key`` or the module-private miss
        sentinel (use :func:`is_miss`)."""
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
        else:
            self._entries.move_to_end(key)
            self.hits += 1
        return value

    def store(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {"entries": len(self._entries),
                "hits": self.hits, "misses": self.misses}


def is_miss(value) -> bool:
    return value is _MISS


_current: Optional[ProfileCache] = None


def get_profile_cache() -> Optional[ProfileCache]:
    """The ambient profile cache, or ``None`` when dedup is off."""
    return _current


@contextmanager
def use_profile_cache(cache: Optional[ProfileCache]) -> Iterator[
        Optional[ProfileCache]]:
    """Install ``cache`` as the ambient profile cache for the dynamic
    extent."""
    global _current
    previous = _current
    _current = cache
    try:
        yield cache
    finally:
        _current = previous
