"""Analytic GPU execution model (the testbed substitute).

The paper evaluates on an Nvidia V100 with nvprof; we replace it with a
warp-level simulator that models exactly the quantities the paper's
optimization targets:

* per-warp-instruction memory transactions on 32-byte sectors (memory
  coalescing),
* an L1-like sector cache giving reuse to per-thread-sequential accesses
  (but no cross-instruction store combining),
* vector-type loads/stores moving 64/128 bits per lane in one instruction,
* instruction issue cost with transaction replays for uncoalesced accesses,
* DRAM bandwidth and kernel launch overhead.

Absolute times are not meaningful; *ratios* between compilation variants
are — the model ranks layouts the way the V100 ranks them (see DESIGN.md).
"""

from repro.gpu.arch import GpuArch, V100
from repro.gpu.backend import (
    available_simulators,
    register_simulator,
    resolve_simulator,
)
from repro.gpu.memory import SectorCache, WarpAccessResult
from repro.gpu.profile_cache import (
    ProfileCache,
    get_profile_cache,
    use_profile_cache,
)
from repro.gpu.simulator import KernelProfile, simulate_kernel

__all__ = [
    "GpuArch",
    "V100",
    "SectorCache",
    "WarpAccessResult",
    "KernelProfile",
    "simulate_kernel",
    "available_simulators",
    "register_simulator",
    "resolve_simulator",
    "ProfileCache",
    "get_profile_cache",
    "use_profile_cache",
]
