"""Closed-form warp execution: the ``fast`` simulator backend.

The reference interpreter (:class:`repro.gpu.simulator._Simulator`) carries
one environment dict *per lane* and evaluates every affine address, guard
and loop bound 32 times per warp.  But lanes of a warp only ever differ in
the thread-index variables, and those differences are fixed per warp slot:
lane ``l`` of the warp starting at thread ``warp_start`` sees thread
variable ``v`` at ``shift(v) + digit(v, warp_start + l)``, where the
mixed-radix digit is a constant of the block shape and ``shift`` is the
(lane-invariant) mapped-loop lower bound accumulated during traversal.

Every affine expression therefore splits into a *shared* part — evaluated
once per warp against a single environment — plus a per-lane *offset
vector* ``Σ coeff(v) · digit(v, lane)`` that depends only on the
expression's thread coefficients and the warp slot, and is memoized across
blocks and loop iterations.  Three consequences drive the speedup:

* guards and loop bounds with zero thread coefficients (the common case)
  are evaluated once instead of 32 times;
* a warp memory instruction's *sector pattern relative to its base
  sector* is a pure function of ``(offset vector, base % sector_bytes,
  access width, active mask)`` — the warp signature — because
  ``(base + off) // S  ==  base // S + (base % S + off) // S`` exactly.
  Signatures are counted once and memoized (``sim.fastpath.memo_hits``);
  for full warps with a constant positive stride the pattern is derived
  in closed form from the stride arithmetic, with no set building or
  sorting (``sim.fastpath.analytic``), and lane enumeration remains only
  for masked/partial warps and irregular offset patterns;
* replaying a memoized pattern against the (stateful, order-sensitive)
  cache hierarchy reuses :func:`repro.gpu.memory.replay_warp_pattern`,
  which reproduces the reference's sector-operation sequence byte for
  byte — counters stay bitwise-identical by construction.

Constructs outside this model (currently: a mapped loop whose lower bound
has nonzero thread coefficients, or an unknown AST node) raise
:class:`FallbackNeeded`; the backend then re-runs the *whole launch* on
the reference interpreter, because cache state touched by a half-finished
fast run cannot be resumed exactly.
"""

from __future__ import annotations

import math

from repro.codegen.ast import Guard, Loop, Seq, StatementCall
from repro.gpu.memory import replay_warp_pattern
from repro.gpu.simulator import _Simulator


class FallbackNeeded(Exception):
    """The launch uses a construct the fast interpreter does not model."""


class _WarpPattern:
    """A memoized per-warp sector pattern, relative to the base sector.

    ``write_seq`` holds the relative sectors in the exact insertion order
    the reference's per-lane ``set.update(range(first, last + 1))`` calls
    produce (lane order, ascending within a lane, duplicates preserved) —
    inserting the same value sequence rebuilds a ``set`` with identical
    internal state, which is what reproduces raw-set iteration order on
    writes.  ``sorted_rels`` is the deduplicated ascending form reads
    stream directly.
    """

    __slots__ = ("write_seq", "sorted_rels", "n_sectors")

    def __init__(self, write_seq, sorted_rels, n_sectors):
        self.write_seq = write_seq
        self.sorted_rels = sorted_rels
        self.n_sectors = n_sectors


_UNSET = object()


class _FastState:
    """Memoized pure derivations of one mapped kernel, reusable across
    launches.

    Everything here is a function of the (immutable-after-mapping) kernel
    content, the launch geometry and the architecture's warp/sector
    shape — never of the order-sensitive cache hierarchy — so the state
    is attached to the ``MappedKernel`` and shared by every
    :class:`_FastSimulator` instance simulating it: re-measurement
    (oracle verification, degradation rungs, repeated `measure` calls)
    skips all warm-up.
    """

    __slots__ = (
        "digit_tables", "offset_cache", "offset_ids", "patterns",
        "guard_plans", "guard_cache", "loop_plans", "loop_cache",
        "mapped_plans", "mapped_cache", "call_plans",
        "access_cache", "bound_cache", "cond_cache",
    )

    def __init__(self):
        # warp_start -> {thread var -> per-lane mixed-radix digits}
        self.digit_tables: dict = {}
        # (id(compiled obj), warp_start) -> (offset vector | None, intern id)
        self.offset_cache: dict = {}
        self.offset_ids: dict = {}
        # (offset id, base residue, n_bytes, active mask) -> _WarpPattern
        self.patterns: dict = {}
        # Guard/loop results are pure functions of (node, warp slot, env
        # values of the node's non-parameter dependency variables) — deep
        # sequential loops re-testing the same thread-only guard or
        # re-deriving the same inner-loop bounds collapse to one dict
        # probe per iteration, with no expression evaluation at all.
        self.guard_plans: dict = {}   # id(guard) -> (conditions, deps)
        self.guard_cache: dict = {}   # (id, warp, dep values) -> pass mask
        self.loop_plans: dict = {}    # id(loop) -> (lowers, uppers, deps)
        self.loop_cache: dict = {}    # (id, warp, dep values) -> bounds
        self.mapped_plans: dict = {}  # id(loop) -> (lowers, deps)
        self.mapped_cache: dict = {}  # (id, dep values) -> lower shift
        # (id(call), warp_start) -> tuple of (access, offsets, offset id):
        # the per-access offset vectors a statement issue needs.
        self.call_plans: dict = {}
        # The reference's compile caches (`_CompiledAccess`/`_CompiledExpr`
        # are pure too, and tensor bases are deterministic per mapping).
        self.access_cache: dict = {}
        self.bound_cache: dict = {}
        self.cond_cache: dict = {}


def _fast_state(mapped, arch) -> _FastState:
    """The shared memo state of ``mapped`` for ``arch``'s warp/sector
    shape (different shapes key different states)."""
    states = getattr(mapped, "_fastpath_states", None)
    if states is None:
        states = mapped._fastpath_states = {}
    key = (arch.warp_size, arch.sector_bytes)
    state = states.get(key)
    if state is None:
        state = states[key] = _FastState()
    return state


class _FastSimulator(_Simulator):
    """Shared-environment warp interpreter with signature memoization.

    Reuses the reference's compilation caches, counters, memory hierarchy
    and compulsory-traffic floor; only the execution strategy differs.
    """

    def __init__(self, mapped, arch, sampled_blocks: int = 1):
        super().__init__(mapped, arch, sampled_blocks=sampled_blocks)
        self._thread_vars = frozenset(d.loop_var for d in mapped.block)
        self._sector = self.memory.sector_bytes
        state = _fast_state(mapped, arch)
        self._state = state
        self._digit_tables = state.digit_tables
        self._offset_cache = state.offset_cache
        self._offset_ids = state.offset_ids
        self._patterns = state.patterns
        self._guard_plans = state.guard_plans
        self._guard_cache = state.guard_cache
        self._loop_plans = state.loop_plans
        self._loop_cache = state.loop_cache
        self._mapped_plans = state.mapped_plans
        self._mapped_cache = state.mapped_cache
        self._call_plans = state.call_plans
        # Share the compile caches too (pure, id-keyed off live AST nodes).
        self.access_cache = state.access_cache
        self.bound_cache = state.bound_cache
        self.cond_cache = state.cond_cache
        # Per-warp state installed by run_block.
        self._env: dict = {}
        self._digits: dict = {}
        self._warp_start = 0
        self._n_lanes = 0
        # Fast-path statistics (harvested by the backend into obs metrics).
        self.analytic_builds = 0
        self.memo_hits = 0

    # -- per-warp setup ------------------------------------------------------

    def _digits_for(self, warp_start: int, n_lanes: int) -> dict:
        table = self._digit_tables.get(warp_start)
        if table is None:
            per_var: list[list[int]] = [[] for _ in self.mapped.block]
            for lane in range(warp_start, warp_start + n_lanes):
                remaining = lane
                # First block dim is threadIdx.x (fastest varying).
                for index, dim in enumerate(self.mapped.block):
                    per_var[index].append(remaining % dim.extent)
                    remaining //= dim.extent
            table = {dim.loop_var: tuple(per_var[index])
                     for index, dim in enumerate(self.mapped.block)}
            self._digit_tables[warp_start] = table
        return table

    def _offsets_of(self, obj):
        """``(offset vector | None, intern id)`` of one compiled access or
        expression for the current warp slot.  ``None`` marks a
        lane-invariant object (no thread coefficients)."""
        key = (id(obj), self._warp_start)
        got = self._offset_cache.get(key, _UNSET)
        if got is not _UNSET:
            return got
        digits = self._digits
        thread_vars = self._thread_vars
        terms = [(digits[name], coeff) for name, coeff in obj.terms
                 if name in thread_vars]
        if not terms:
            got = (None, -1)
        else:
            if len(terms) == 1:
                lane_digits, coeff = terms[0]
                off = tuple(coeff * d for d in lane_digits)
            else:
                acc = [0] * self._n_lanes
                for lane_digits, coeff in terms:
                    for lane, digit in enumerate(lane_digits):
                        acc[lane] += coeff * digit
                off = tuple(acc)
            got = (off, self._offset_ids.setdefault(off, len(self._offset_ids)))
        self._offset_cache[key] = got
        return got

    # -- execution -----------------------------------------------------------

    def run_block(self, block_env: dict) -> None:
        threads = self.mapped.n_threads_per_block
        warp = self.arch.warp_size
        for warp_start in range(0, threads, warp):
            n_lanes = min(warp_start + warp, threads) - warp_start
            self._warp_start = warp_start
            self._n_lanes = n_lanes
            self._digits = self._digits_for(warp_start, n_lanes)
            env = dict(self.params)
            env.update(block_env)
            for dim in self.mapped.block:
                # Thread variables carry only their lane-invariant shift
                # (mapped-loop lower bounds); the raw digit lives in the
                # per-warp offset vectors.
                env[dim.loop_var] = 0
            self._env = env
            self._frun(self.mapped.ast, (1 << n_lanes) - 1)

    def _frun(self, node, mask: int) -> None:
        if isinstance(node, Guard):
            mask = self._guard_mask(node, mask)
            if mask:
                self._frun(node.body, mask)
        elif isinstance(node, StatementCall):
            self._fissue_scalar(node, mask)
        elif isinstance(node, Loop):
            if node.mapping:
                self._frun_mapped(node, mask)
            elif node.vector:
                self._frun_vector(node, mask)
            else:
                self._frun_loop(node, mask)
        elif isinstance(node, Seq):
            for child in node.children:
                self._frun(child, mask)
        else:
            raise FallbackNeeded(f"unknown AST node {node!r}")

    def _expr_deps(self, exprs) -> tuple:
        """Names whose env values a set of expressions depends on, params
        excluded (they are launch constants).  Thread variables stay in:
        their env entries hold the lane-invariant mapped-loop shifts."""
        deps: list[str] = []
        params = self.params
        for expr in exprs:
            for name, _ in expr.terms:
                if name not in params and name not in deps:
                    deps.append(name)
        return tuple(deps)

    def _guard_mask(self, guard: Guard, mask: int) -> int:
        """Lanes of ``mask`` passing every condition of ``guard``.

        Conditions are pure, so the all-lanes pass mask is a function of
        the guard, the warp slot and the env values of the conditions'
        dependency variables only — memoized on exactly that key (a few
        dict lookups, no expression evaluation on a hit), then applied to
        the caller's mask with one AND.  This is equivalent to the
        reference's per-lane short-circuit evaluation because evaluation
        has no side effects.
        """
        env = self._env
        plan = self._guard_plans.get(id(guard))
        if plan is None:
            conditions = self._compiled_conditions(guard)
            plan = (conditions,
                    self._expr_deps([expr for _, expr in conditions]))
            self._guard_plans[id(guard)] = plan
        conditions, deps = plan
        key = (id(guard), self._warp_start,
               tuple(env[name] for name in deps))
        pass_mask = self._guard_cache.get(key)
        if pass_mask is None:
            pass_mask = (1 << self._n_lanes) - 1
            for sense, expr in conditions:
                value = expr.value(env)
                off, _ = self._offsets_of(expr)
                if off is None:
                    ok = (value <= 0 if sense == "<="
                          else value >= 0 if sense == ">=" else value == 0)
                    if not ok:
                        pass_mask = 0
                        break
                else:
                    new_mask = 0
                    if sense == "<=":
                        for lane in range(self._n_lanes):
                            if pass_mask >> lane & 1 and value + off[lane] <= 0:
                                new_mask |= 1 << lane
                    elif sense == ">=":
                        for lane in range(self._n_lanes):
                            if pass_mask >> lane & 1 and value + off[lane] >= 0:
                                new_mask |= 1 << lane
                    else:
                        for lane in range(self._n_lanes):
                            if pass_mask >> lane & 1 and value + off[lane] == 0:
                                new_mask |= 1 << lane
                    pass_mask = new_mask
                    if not pass_mask:
                        break
            self._guard_cache[key] = pass_mask
        return mask & pass_mask

    def _frun_mapped(self, loop: Loop, mask: int) -> None:
        env = self._env
        plan = self._mapped_plans.get(id(loop))
        if plan is None:
            lower_exprs, _ = self._compiled_bounds(loop)
            for expr in lower_exprs:
                # Lane-invariance is a property of the expression's thread
                # coefficients, not of the particular warp slot.
                if self._offsets_of(expr)[0] is not None:
                    raise FallbackNeeded(
                        f"lane-variant lower bound on mapped loop "
                        f"{loop.var!r}")
            plan = (lower_exprs, self._expr_deps(lower_exprs))
            self._mapped_plans[id(loop)] = plan
        lower_exprs, deps = plan
        # The shift is lane-invariant, hence identical across warp slots.
        key = (id(loop), tuple(env[name] for name in deps))
        lo = self._mapped_cache.get(key, _UNSET)
        if lo is _UNSET:
            if len(lower_exprs) == 1:
                lo = lower_exprs[0].value(env)
            else:
                pick = min if loop.lower_is_min else max
                lo = pick(e.value(env) for e in lower_exprs)
            if type(lo) is not int:
                lo = math.ceil(lo)
            self._mapped_cache[key] = lo
        if lo:
            env[loop.var] += lo
        self._frun(loop.body, mask)

    def _frun_loop(self, loop: Loop, mask: int) -> None:
        env = self._env
        plan = self._loop_plans.get(id(loop))
        if plan is None:
            lower_exprs, upper_exprs = self._compiled_bounds(loop)
            plan = (lower_exprs, upper_exprs,
                    self._expr_deps(lower_exprs + upper_exprs))
            self._loop_plans[id(loop)] = plan
        lower_exprs, upper_exprs, deps = plan
        key = (id(loop), self._warp_start,
               tuple(env[name] for name in deps))
        bounds = self._loop_cache.get(key)
        if bounds is None:
            bounds = self._loop_bounds(loop, lower_exprs, upper_exprs)
            self._loop_cache[key] = bounds
        lo, hi, lane_masks = bounds
        if lo > hi:
            # Empty range: the reference returns before touching the loop
            # variable, so leave the env untouched too.
            return
        var = loop.var
        body = loop.body
        if lane_masks is None:
            # Lane-invariant bounds: every value runs with the caller's
            # mask unchanged.
            for value in range(lo, hi + 1):
                env[var] = value
                self._frun(body, mask)
        else:
            # Lane-variant bounds: ``lane_masks[value - lo]`` holds the
            # all-lanes in-range mask for ``value``; the per-iteration
            # sub-mask is one AND.  Iterating the all-lanes range instead
            # of the reference's masked-lanes range executes exactly the
            # same non-empty iterations (extra values AND to zero).
            for value in range(lo, hi + 1):
                sub_mask = mask & lane_masks[value - lo]
                if sub_mask:
                    env[var] = value
                    self._frun(body, sub_mask)
        env.pop(var, None)

    def _loop_bounds(self, loop: Loop, lower_exprs, upper_exprs):
        """``(lo, hi, lane_masks)`` for the current warp slot and env:
        the overall trip range plus, for lane-variant bounds, the
        per-value all-lanes in-range masks (``None`` when invariant)."""
        env = self._env
        lo_pick = min if loop.lower_is_min else max
        hi_pick = max if loop.upper_is_max else min
        lo_shared = [e.value(env) for e in lower_exprs]
        hi_shared = [e.value(env) for e in upper_exprs]
        lo_offs = [self._offsets_of(e)[0] for e in lower_exprs]
        hi_offs = [self._offsets_of(e)[0] for e in upper_exprs]
        if all(o is None for o in lo_offs) and all(o is None for o in hi_offs):
            lo = lo_shared[0] if len(lo_shared) == 1 else lo_pick(lo_shared)
            hi = hi_shared[0] if len(hi_shared) == 1 else hi_pick(hi_shared)
            if type(lo) is not int:
                lo = math.ceil(lo)
            if type(hi) is not int:
                hi = math.floor(hi)
            return (lo, hi, None)
        n_lanes = self._n_lanes
        los, his = [], []
        for lane in range(n_lanes):
            lo = lo_pick(s if o is None else s + o[lane]
                         for s, o in zip(lo_shared, lo_offs))
            hi = hi_pick(s if o is None else s + o[lane]
                         for s, o in zip(hi_shared, hi_offs))
            los.append(lo if type(lo) is int else math.ceil(lo))
            his.append(hi if type(hi) is int else math.floor(hi))
        overall_lo = min(los)
        overall_hi = max(his)
        if overall_lo > overall_hi:
            return (overall_lo, overall_hi, None)
        lane_masks = []
        for value in range(overall_lo, overall_hi + 1):
            bits = 0
            for lane in range(n_lanes):
                if los[lane] <= value <= his[lane]:
                    bits |= 1 << lane
            lane_masks.append(bits)
        return (overall_lo, overall_hi, lane_masks)

    def _frun_vector(self, loop: Loop, mask: int) -> None:
        width = loop.vector_width
        var = loop.var
        env = self._env
        for child in loop.body.children:
            if isinstance(child, StatementCall) and child.vector_width == width:
                env[var] = 0
                self._fissue_vector(child, mask, var, width)
            else:
                for lane_value in range(width):
                    env[var] = lane_value
                    self._frun(child, mask)
        env.pop(var, None)

    # -- issue ---------------------------------------------------------------

    def _call_plan(self, call: StatementCall):
        key = (id(call), self._warp_start)
        plan = self._call_plans.get(key)
        if plan is None:
            plan = tuple((access,) + self._offsets_of(access)
                         for access in self._compiled_accesses(call))
            self._call_plans[key] = plan
        return plan

    def _fissue_scalar(self, call: StatementCall, mask: int) -> None:
        if not mask:
            return
        n_active = mask.bit_count()
        self.scalar_issues += 1
        env = self._env
        for access, off, off_id in self._call_plan(call):
            self._fast_count(access, off, off_id, access.address(env),
                             access.elem_bytes, mask, n_active)
        flops = call.statement.flops
        self.arith_instrs += flops
        self.issue_cycles += flops * self.arch.arith_instr_cycles
        self.flops += flops * n_active

    def _fissue_vector(self, call: StatementCall, mask: int,
                       var: str, width: int) -> None:
        if not mask:
            return
        n_active = mask.bit_count()
        self.vector_issues += 1
        env = self._env
        for access, off, off_id in self._call_plan(call):
            stride = access.strides.get(var, 0)
            base = access.address(env)
            elem = access.elem_bytes
            if stride == elem:
                # Contiguous along the vector dim: one vector access/lane.
                self._fast_count(access, off, off_id, base, elem * width,
                                 mask, n_active)
            elif stride == 0:
                # Invariant: a single scalar access serves all lanes' groups.
                self._fast_count(access, off, off_id, base, elem, mask,
                                 n_active)
            else:
                # Gather/scatter: one instruction per lane position.
                for offset in range(width):
                    self._fast_count(access, off, off_id,
                                     base + stride * offset, elem, mask,
                                     n_active)
        # Computation stays scalar: `width` iterations of flops.
        flops = call.statement.flops
        self.arith_instrs += flops * width
        self.issue_cycles += flops * width * self.arch.arith_instr_cycles
        self.flops += flops * width * n_active

    def _fast_count(self, access, off, off_id: int, base: int, n_bytes: int,
                    mask: int, n_active: int) -> None:
        if n_bytes <= 0:
            raise FallbackNeeded("non-positive access width")
        sector = self._sector
        key = (off_id, base % sector, n_bytes, mask)
        pattern = self._patterns.get(key)
        if pattern is None:
            pattern = self._build_pattern(off, base % sector, n_bytes, mask)
            self._patterns[key] = pattern
        else:
            self.memo_hits += 1
        replay_warp_pattern(self.memory, base // sector,
                            pattern.write_seq, pattern.sorted_rels,
                            access.is_write)
        self.mem_instrs += 1
        replay = -(-pattern.n_sectors // self.arch.sectors_per_cycle)
        cycles = self.arch.mem_instr_cycles
        self.issue_cycles += replay if replay > cycles else cycles
        self.sectors += pattern.n_sectors
        self.bytes_req += n_bytes * n_active

    def _build_pattern(self, off, res: int, n_bytes: int,
                       mask: int) -> _WarpPattern:
        sector = self._sector
        if off is None:
            # Lane-invariant address: every active lane touches the same
            # range; re-inserting identical sectors leaves the reference's
            # set untouched, so one ascending pass reproduces its state
            # exactly.
            last = (res + n_bytes - 1) // sector
            rels = tuple(range(last + 1))
            return _WarpPattern(rels, rels, last + 1)
        n_lanes = self._n_lanes
        if mask == (1 << n_lanes) - 1 and n_lanes > 1:
            step = off[1] - off[0]
            if step > 0 and all(off[lane + 1] - off[lane] == step
                                for lane in range(1, n_lanes - 1)):
                # Closed form: a full warp with a constant positive stride
                # touches monotonically non-decreasing sector ranges, so
                # the merged ascending pattern falls out of the stride
                # arithmetic in one pass — no set, no sort.
                self.analytic_builds += 1
                write_seq = []
                sorted_rels = []
                prev_last = None
                position = res + off[0]
                for _ in range(n_lanes):
                    first = position // sector
                    last = (position + n_bytes - 1) // sector
                    write_seq.extend(range(first, last + 1))
                    start = (first if prev_last is None
                             else max(first, prev_last + 1))
                    if start <= last:
                        sorted_rels.extend(range(start, last + 1))
                        prev_last = last
                    position += step
                return _WarpPattern(tuple(write_seq), tuple(sorted_rels),
                                    len(sorted_rels))
        # Lane enumeration: masked/partial warps and irregular offsets.
        write_seq = []
        rels: set[int] = set()
        for lane in range(n_lanes):
            if mask >> lane & 1:
                position = res + off[lane]
                first = position // sector
                last = (position + n_bytes - 1) // sector
                write_seq.extend(range(first, last + 1))
                rels.update(range(first, last + 1))
        return _WarpPattern(tuple(write_seq), tuple(sorted(rels)),
                            len(rels))
