"""Warp-level kernel execution model.

``simulate_kernel`` interprets a :class:`~repro.codegen.cuda.MappedKernel`
for a sample of its blocks, executing every warp in lockstep with per-lane
active masks, counting warp instructions and memory transactions through the
sector cache, then extrapolates to the full launch and converts the counters
into a time estimate:

    time = launch_overhead + max(issue_time, dram_time, latency_floor)

* ``issue_time``: warp-instruction cycles (with transaction replays for
  uncoalesced accesses) spread over the SMs the launch can occupy;
* ``dram_time``: DRAM sectors moved at the device bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional

from repro.codegen.ast import Guard, Loop, Seq, StatementCall, statements_in
from repro.codegen.cuda import MappedKernel
from repro.gpu.arch import GpuArch, V100
from repro.gpu.backend import resolve_simulator
from repro.gpu.memory import MemoryHierarchy, warp_access
from repro.gpu.profile_cache import (
    get_profile_cache,
    is_miss,
    profile_cache_key,
)
from repro.obs.metrics import RATIO_BUCKETS
from repro.obs.runtime import get_obs
from repro.solver.problem import Constraint, LinExpr


@dataclass
class KernelProfile:
    """Measured counters and derived time for one kernel launch."""

    name: str
    arch: GpuArch
    n_blocks: int
    n_threads_per_block: int
    warp_mem_instructions: float = 0.0
    warp_arith_instructions: float = 0.0
    issue_cycles: float = 0.0
    dram_transactions: float = 0.0
    sectors_touched: float = 0.0
    bytes_requested: float = 0.0
    flops: float = 0.0
    cache_hits: float = 0.0
    cache_misses: float = 0.0
    scalar_issues: float = 0.0   # statement issues from scalar code
    vector_issues: float = 0.0   # statement issues from vectorized loops

    @property
    def dram_bytes(self) -> float:
        return self.dram_transactions * self.arch.sector_bytes

    @property
    def active_sms(self) -> int:
        return max(1, min(self.n_blocks, self.arch.sm_count))

    @property
    def issue_time(self) -> float:
        return self.issue_cycles / (self.active_sms * self.arch.clock_hz)

    @property
    def dram_time(self) -> float:
        return self.dram_bytes / self.arch.dram_bandwidth

    @property
    def time(self) -> float:
        busy = max(self.issue_time, self.dram_time, self.arch.min_kernel_s)
        return self.arch.launch_overhead_s + busy

    @property
    def coalescing_efficiency(self) -> float:
        """Useful bytes per DRAM byte moved (1.0 == perfectly coalesced)."""
        if self.dram_bytes == 0:
            return 1.0
        return min(1.0, self.bytes_requested / self.dram_bytes)

    def counters(self) -> dict:
        """The full counter set as a JSON-safe dict (span attributes and
        the ``repro profile`` per-kernel table both render this)."""
        return {
            "n_blocks": self.n_blocks,
            "n_threads_per_block": self.n_threads_per_block,
            "warp_mem_instructions": self.warp_mem_instructions,
            "warp_arith_instructions": self.warp_arith_instructions,
            "issue_cycles": self.issue_cycles,
            "dram_transactions": self.dram_transactions,
            "dram_bytes": self.dram_bytes,
            "sectors_touched": self.sectors_touched,
            "bytes_requested": self.bytes_requested,
            "flops": self.flops,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "scalar_issues": self.scalar_issues,
            "vector_issues": self.vector_issues,
            "coalescing_efficiency": self.coalescing_efficiency,
            "time_seconds": self.time,
        }


class _CompiledAccess:
    """An access lowered to an integer-affine address function."""

    __slots__ = ("is_write", "elem_bytes", "terms", "const", "strides",
                 "flops")

    def __init__(self, is_write: bool, elem_bytes: int,
                 terms: list[tuple[str, int]], const: int):
        self.is_write = is_write
        self.elem_bytes = elem_bytes
        self.terms = terms
        self.const = const
        # Address coefficients by variable: `stride_of` is on the vector
        # issue path (three lookups per vectorized access), so it must be
        # a dict probe, not a scan of `terms`.
        self.strides = dict(terms)

    def address(self, env: dict[str, int]) -> int:
        total = self.const
        for name, coeff in self.terms:
            total += coeff * env[name]
        return total

    def stride_of(self, name: str) -> int:
        return self.strides.get(name, 0)


class _CompiledExpr:
    """A LinExpr lowered for fast integer evaluation (rational-safe).

    Coefficients with denominator 1 are narrowed to ``int`` and split from
    the (rare) genuinely rational ones, so the common all-integral bound
    and guard expressions evaluate with pure machine-int arithmetic — no
    ``Fraction`` dispatch on the hot path.  ``is_integral`` lets callers
    skip ``ceil``/``floor`` entirely for such expressions.  Evaluation
    order (integer terms first, then rational ones) cannot change any
    value: the arithmetic is exact, so the sum is order-independent.
    """

    __slots__ = ("terms", "int_terms", "frac_terms", "const", "is_integral")

    def __init__(self, expr: LinExpr):
        def narrow(value: Fraction):
            return int(value) if value.denominator == 1 else value
        self.terms = [(name, narrow(coeff))
                      for name, coeff in expr.coeffs.items()]
        self.int_terms = [(n, c) for n, c in self.terms if type(c) is int]
        self.frac_terms = [(n, c) for n, c in self.terms if type(c) is not int]
        self.const = narrow(expr.const)
        self.is_integral = not self.frac_terms and type(self.const) is int

    def value(self, env: dict[str, int]) -> Fraction:
        total = self.const
        for name, coeff in self.int_terms:
            total += coeff * env[name]
        for name, coeff in self.frac_terms:
            total += coeff * env[name]
        return total


class _Simulator:
    def __init__(self, mapped: MappedKernel, arch: GpuArch,
                 sampled_blocks: int = 1):
        self.mapped = mapped
        self.arch = arch
        self.kernel = mapped.kernel
        self.params = {p: int(v) for p, v in self.kernel.params.items()}
        # The real L2 is shared by every concurrently resident block; a
        # sampled consecutive run only owns its proportional share.
        concurrent = max(1, min(mapped.n_blocks, 2 * arch.sm_count))
        effective_l2 = max(arch.sector_bytes * 64,
                           int(arch.l2_bytes * sampled_blocks / concurrent))
        self.memory = MemoryHierarchy(arch.l1_bytes, effective_l2,
                                      arch.sector_bytes)
        self.bases = self._assign_bases()
        self.access_cache: dict[int, list[_CompiledAccess]] = {}
        self.bound_cache: dict[int, tuple[list, list]] = {}
        self.cond_cache: dict[int, list] = {}
        # Raw counters for the sampled blocks.
        self.mem_instrs = 0
        self.arith_instrs = 0
        self.issue_cycles = 0
        self.transactions = 0
        self.sectors = 0
        self.bytes_req = 0
        self.flops = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.scalar_issues = 0
        self.vector_issues = 0

    def compulsory_bytes(self) -> int:
        """A lower bound on DRAM traffic: every pure-input tensor is read
        at least once and every written tensor is written back at least
        once (intermediates count only on the write side — they may live in
        cache until the final write-back).  Guards the block-sampling
        extrapolation against undercounting when the sampled window happens
        to sit entirely inside one cache-resident tile.  Assumes accesses
        cover their tensors (true for the operator zoo).

        The result is a pure function of the (immutable-after-mapping) AST,
        so it is memoized on the mapped kernel: every launch of the same
        mapping — one per simulate call — used to re-walk the whole AST."""
        cached = getattr(self.mapped, "_compulsory_bytes", None)
        if cached is not None:
            return cached
        read_tensors: set[str] = set()
        written_tensors: set[str] = set()
        sizes: dict[str, int] = {}
        for call in statements_in(self.mapped.ast):
            for access in call.statement.accesses:
                sizes[access.tensor.name] = access.tensor.n_bytes
                if access.is_write:
                    written_tensors.add(access.tensor.name)
                else:
                    read_tensors.add(access.tensor.name)
        pure_inputs = read_tensors - written_tensors
        total = (sum(sizes[t] for t in pure_inputs)
                 + sum(sizes[t] for t in written_tensors))
        self.mapped._compulsory_bytes = total
        return total

    def reset_counters(self) -> None:
        """Zero the extrapolated counters (cache contents are kept): used
        after the warmup block so compulsory misses of the unsimulated
        predecessors are not extrapolated to the whole launch."""
        self.mem_instrs = 0
        self.arith_instrs = 0
        self.issue_cycles = 0
        self.sectors = 0
        self.bytes_req = 0
        self.flops = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.scalar_issues = 0
        self.vector_issues = 0
        self.memory.dram_reads = 0
        self.memory.dram_writes = 0

    # -- setup -------------------------------------------------------------

    def _assign_bases(self) -> dict[str, int]:
        bases = {}
        offset = 0
        for call in statements_in(self.mapped.ast):
            for access in call.statement.accesses:
                tensor = access.tensor
                if tensor.name not in bases:
                    bases[tensor.name] = offset
                    offset += ((tensor.n_bytes + 255) // 256) * 256 + 256
        return bases

    def _compiled_accesses(self, call: StatementCall) -> list[_CompiledAccess]:
        cached = self.access_cache.get(id(call))
        if cached is not None:
            return cached
        out = []
        for access in call.statement.accesses:
            esize = access.tensor.dtype.size_bytes
            strides = access.tensor.strides()
            addr = LinExpr(const=self.bases[access.tensor.name])
            for d, subscript in enumerate(access.subscripts):
                # Compose subscript(iterators) with iterator reconstructions.
                composed = LinExpr(const=subscript.const)
                for it, coeff in subscript.coeffs.items():
                    composed = composed + coeff * call.iterator_exprs[it]
                addr = addr + (strides[d] * esize) * composed
            terms = []
            const = addr.const
            for name, coeff in addr.coeffs.items():
                if coeff.denominator != 1:
                    raise ValueError(f"non-integer address coefficient in "
                                     f"{call.statement.name}")
                if name in self.params:
                    const += coeff * self.params[name]
                else:
                    terms.append((name, int(coeff)))
            if const.denominator != 1:
                raise ValueError("non-integer address constant")
            out.append(_CompiledAccess(access.is_write, esize, terms,
                                       int(const)))
        self.access_cache[id(call)] = out
        return out

    def _compiled_bounds(self, loop: Loop):
        cached = self.bound_cache.get(id(loop))
        if cached is None:
            cached = ([_CompiledExpr(e) for e in loop.lowers],
                      [_CompiledExpr(e) for e in loop.uppers])
            self.bound_cache[id(loop)] = cached
        return cached

    def _compiled_conditions(self, guard: Guard):
        cached = self.cond_cache.get(id(guard))
        if cached is None:
            cached = [(c.sense, _CompiledExpr(c.expr)) for c in guard.conditions]
            self.cond_cache[id(guard)] = cached
        return cached

    # -- execution ------------------------------------------------------------

    def run_block(self, block_env: dict[str, int]) -> None:
        threads = self.mapped.n_threads_per_block
        warp = self.arch.warp_size
        block_dims = self.mapped.block
        for warp_start in range(0, threads, warp):
            lanes = []
            for lane in range(warp_start, min(warp_start + warp, threads)):
                env = dict(self.params)
                env.update(block_env)
                remaining = lane
                # First block dim is threadIdx.x (fastest varying).
                for dim in block_dims:
                    env[dim.loop_var] = remaining % dim.extent
                    remaining //= dim.extent
                lanes.append(env)
            mask = [True] * len(lanes)
            self._run(self.mapped.ast, lanes, mask)

    def _run(self, node, lanes, mask) -> None:
        if isinstance(node, Seq):
            for child in node.children:
                self._run(child, lanes, mask)
        elif isinstance(node, Guard):
            conditions = self._compiled_conditions(node)
            new_mask = list(mask)
            for i, env in enumerate(lanes):
                if not new_mask[i]:
                    continue
                for sense, expr in conditions:
                    value = expr.value(env)
                    ok = (value <= 0 if sense == "<="
                          else value >= 0 if sense == ">=" else value == 0)
                    if not ok:
                        new_mask[i] = False
                        break
            if any(new_mask):
                self._run(node.body, lanes, new_mask)
        elif isinstance(node, Loop):
            if node.mapping:
                # `run_block` assigned the *raw* thread/block index; the
                # loop variable's first iteration is its lower bound, so a
                # nonzero lower shifts every lane (mappable bounds are
                # parameter-only, hence identical across lanes).
                lower_exprs, _ = self._compiled_bounds(node)
                pick = min if node.lower_is_min else max
                for env in lanes:
                    lo = math.ceil(pick(e.value(env) for e in lower_exprs))
                    if lo:
                        env[node.var] += lo
                self._run(node.body, lanes, mask)
            elif node.vector:
                self._run_vector(node, lanes, mask)
            else:
                self._run_loop(node, lanes, mask)
        elif isinstance(node, StatementCall):
            self._issue_scalar(node, lanes, mask)
        else:
            raise TypeError(f"unknown AST node {node!r}")

    def _run_loop(self, loop: Loop, lanes, mask) -> None:
        lower_exprs, upper_exprs = self._compiled_bounds(loop)
        los, his = [], []
        overall_lo, overall_hi = None, None
        lo_pick = min if loop.lower_is_min else max
        hi_pick = max if loop.upper_is_max else min
        for i, env in enumerate(lanes):
            lo = math.ceil(lo_pick(e.value(env) for e in lower_exprs))
            hi = math.floor(hi_pick(e.value(env) for e in upper_exprs))
            los.append(lo)
            his.append(hi)
            if mask[i]:
                overall_lo = lo if overall_lo is None else min(overall_lo, lo)
                overall_hi = hi if overall_hi is None else max(overall_hi, hi)
        if overall_lo is None or overall_lo > overall_hi:
            return
        var = loop.var
        for value in range(overall_lo, overall_hi + 1):
            sub_mask = [m and los[i] <= value <= his[i]
                        for i, m in enumerate(mask)]
            if not any(sub_mask):
                continue
            for env in lanes:
                env[var] = value
            self._run(loop.body, lanes, sub_mask)
        for env in lanes:
            env.pop(var, None)

    def _run_vector(self, loop: Loop, lanes, mask) -> None:
        width = loop.vector_width
        var = loop.var
        for child in loop.body.children:
            if isinstance(child, StatementCall) and child.vector_width == width:
                for env in lanes:
                    env[var] = 0
                self._issue_vector(child, lanes, mask, var, width)
            else:
                for lane_value in range(width):
                    for env in lanes:
                        env[var] = lane_value
                    self._run(child, lanes, mask)
        for env in lanes:
            env.pop(var, None)

    # -- issue ------------------------------------------------------------------

    def _issue_scalar(self, call: StatementCall, lanes, mask) -> None:
        active = [env for env, m in zip(lanes, mask) if m]
        if not active:
            return
        self.scalar_issues += 1
        for access in self._compiled_accesses(call):
            ranges = [(access.address(env), access.elem_bytes)
                      for env in active]
            self._count(ranges, access.is_write)
        self.arith_instrs += call.statement.flops
        self.issue_cycles += call.statement.flops * self.arch.arith_instr_cycles
        self.flops += call.statement.flops * len(active)

    def _issue_vector(self, call: StatementCall, lanes, mask,
                      var: str, width: int) -> None:
        active = [env for env, m in zip(lanes, mask) if m]
        if not active:
            return
        self.vector_issues += 1
        for access in self._compiled_accesses(call):
            stride = access.stride_of(var)
            if stride == access.elem_bytes:
                # Contiguous along the vector dim: one vector access/lane.
                ranges = [(access.address(env), access.elem_bytes * width)
                          for env in active]
                self._count(ranges, access.is_write)
            elif stride == 0:
                # Invariant: a single scalar access serves all lanes' groups.
                ranges = [(access.address(env), access.elem_bytes)
                          for env in active]
                self._count(ranges, access.is_write)
            else:
                # Gather/scatter: one instruction per lane position.
                for offset in range(width):
                    ranges = [(access.address(env) + stride * offset,
                               access.elem_bytes) for env in active]
                    self._count(ranges, access.is_write)
        # Computation stays scalar: `width` iterations of flops.
        self.arith_instrs += call.statement.flops * width
        self.issue_cycles += (call.statement.flops * width
                              * self.arch.arith_instr_cycles)
        self.flops += call.statement.flops * width * len(active)

    def _count(self, ranges, is_write: bool) -> None:
        result = warp_access(self.memory, ranges, is_write)
        self.mem_instrs += 1
        replay_cycles = -(-result.sectors_touched // self.arch.sectors_per_cycle)
        self.issue_cycles += max(self.arch.mem_instr_cycles, replay_cycles)
        self.sectors += result.sectors_touched
        self.bytes_req += result.bytes_requested


def _sample_block_ids(n_blocks: int, sample: int) -> tuple[list[int], int]:
    """A *consecutive* run of blocks starting mid-grid, plus warmup count.

    GPUs schedule blocks roughly in blockIdx order, so neighbouring blocks
    run close in time and share the L2; sampling a consecutive run keeps
    that cross-block locality observable.  The first sampled block only
    pays compulsory misses that its (unsimulated) predecessors would have
    absorbed, so it is treated as cache warmup: executed, but excluded from
    the extrapolated counters.  Starting away from block 0 avoids edge
    effects.
    """
    if n_blocks <= sample:
        return list(range(n_blocks)), 0
    take = min(n_blocks, sample + 1)
    start = min(n_blocks - take, n_blocks // 3)
    return list(range(start, start + take)), 1


def _execute_kernel(mapped: MappedKernel, arch: GpuArch, sample_blocks: int,
                    sim_cls: type) -> tuple[KernelProfile, _Simulator]:
    """Run the block-sampling driver with ``sim_cls`` as the interpreter.

    Both backends share this loop — sampling, warmup exclusion, cache
    lifecycle, extrapolation and the compulsory-traffic floor are
    backend-independent; only warp execution differs.  Returns the profile
    together with the simulator instance so backends can harvest their
    private counters (e.g. the fast path's memoization statistics).
    """
    n_blocks = mapped.n_blocks
    block_ids, warmup = _sample_block_ids(n_blocks, sample_blocks)
    sim = sim_cls(mapped, arch, sampled_blocks=max(1, len(block_ids)))
    for index, block_id in enumerate(block_ids):
        env: dict[str, int] = {}
        remaining = block_id
        for dim in mapped.grid:
            env[dim.loop_var] = remaining % dim.extent
            remaining //= dim.extent
        sim.run_block(env)
        sim.memory.end_block()
        sim.cache_hits += sim.memory.l1.hits + sim.memory.l2.hits
        sim.cache_misses += sim.memory.l1.misses + sim.memory.l2.misses
        sim.memory.l1.clear_stats()
        sim.memory.l2.clear_stats()
        if index + 1 == warmup:
            sim.reset_counters()
    sim.memory.end_kernel()
    sim.transactions = sim.memory.dram_transactions
    scale = n_blocks / max(1, len(block_ids) - warmup)
    floor_transactions = sim.compulsory_bytes() / arch.sector_bytes / scale
    profile = KernelProfile(
        name=mapped.kernel.name,
        arch=arch,
        n_blocks=n_blocks,
        n_threads_per_block=mapped.n_threads_per_block,
        warp_mem_instructions=sim.mem_instrs * scale,
        warp_arith_instructions=sim.arith_instrs * scale,
        issue_cycles=sim.issue_cycles * scale,
        dram_transactions=max(sim.transactions, floor_transactions) * scale,
        sectors_touched=sim.sectors * scale,
        bytes_requested=sim.bytes_req * scale,
        flops=sim.flops * scale,
        cache_hits=sim.cache_hits * scale,
        cache_misses=sim.cache_misses * scale,
        scalar_issues=sim.scalar_issues * scale,
        vector_issues=sim.vector_issues * scale,
    )
    return profile, sim


def simulate_kernel(mapped: MappedKernel, arch: GpuArch = V100,
                    sample_blocks: int = 4, sim: str = "") -> KernelProfile:
    """Simulate a mapped kernel and estimate its execution time.

    ``sim`` selects the simulator backend (explicit name, else the
    ``REPRO_SIM`` environment variable, else the ``fast`` default — see
    :mod:`repro.gpu.backend`); every backend produces bitwise-identical
    counters.  When an ambient :class:`~repro.gpu.profile_cache.ProfileCache`
    is installed, content-identical launches replay the cached profile
    instead of re-simulating (``sim.profile_cache.{hits,misses}``).

    Each run is wrapped in a ``gpu.kernel`` span carrying the full profile
    counter set, and the profile feeds the ambient ``gpu.*`` histograms
    (all derived from the deterministic model, so serial and parallel
    evaluations produce identical metric payloads).
    """
    backend = resolve_simulator(sim)
    obs = get_obs()
    cache = get_profile_cache()
    key = None
    profile: Optional[KernelProfile] = None
    if cache is not None:
        key = profile_cache_key(mapped, arch, sample_blocks)
        found = cache.lookup(key)
        if not is_miss(found):
            # Names are erased from the key; restore the caller's (the
            # `replace` also guarantees the cached entry is never aliased).
            profile = replace(found, name=mapped.kernel.name)
    cached = profile is not None
    with obs.span("gpu.kernel", kernel=mapped.kernel.name) as span:
        if profile is None:
            profile = backend.run(mapped, arch, sample_blocks)
            if cache is not None:
                cache.store(key, profile)
        span.set(**profile.counters())
    metrics = obs.metrics
    if metrics.enabled:
        metrics.count("gpu.kernels")
        metrics.count("gpu.dram_transactions", profile.dram_transactions)
        metrics.count("gpu.bytes_requested", profile.bytes_requested)
        metrics.count("gpu.scalar_issues", profile.scalar_issues)
        metrics.count("gpu.vector_issues", profile.vector_issues)
        metrics.observe("gpu.kernel_seconds", profile.time)
        metrics.observe("gpu.coalescing_efficiency",
                        profile.coalescing_efficiency, bounds=RATIO_BUCKETS)
        if cache is not None:
            metrics.count("sim.profile_cache.hits" if cached
                          else "sim.profile_cache.misses")
    return profile
