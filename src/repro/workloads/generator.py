"""Seeded generation of per-network fused-operator suites.

Given a :class:`~repro.workloads.networks.NetworkSpec`, produce exactly
``total_operators`` kernels drawn deterministically from the spec's class
mix, with shapes appropriate to the network's size class.  Two calls with
the same seed produce identical suites, so every benchmark run measures the
same population.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator

from repro.ir.kernel import Kernel
from repro.ir.types import FLOAT16, FLOAT32
from repro.workloads import operators
from repro.workloads.networks import NETWORKS, NetworkSpec

# Shape pools per size class: (rows, cols) for 2D classes.
_SHAPES_2D = {
    "small": [(1024, 32), (2048, 16), (512, 64)],
    "medium": [(8192, 32), (4096, 64), (8192, 64)],
    "large": [(16384, 64), (32768, 32), (8192, 64)],
}
# Odd column counts make an operator vectorization-ineligible (condition (b)).
_NEUTRAL_COLS = [31, 33, 63]
# (batch, channels, height, width) pools for layout conversions.
_SHAPES_4D = {
    "small": [(2, 64, 32, 32), (4, 64, 32, 16)],
    "medium": [(2, 64, 128, 128), (4, 64, 64, 64), (4, 128, 32, 32)],
    "large": [(2, 128, 128, 128), (4, 64, 128, 128), (2, 64, 128, 128)],
}
# Chain lengths per size class (LSTM-scale ops are single operators, the
# big NLP fused chains run longer).
_CHAIN_LENGTHS = {
    "small": [1, 2],
    "medium": [2, 3],
    "large": [3, 4],
}
# (channels, height, width, kernel_size) pools for depthwise convolutions.
_SHAPES_DW = {
    "small": [(8, 12, 12, 3), (8, 8, 8, 2)],
    "medium": [(16, 16, 16, 3), (16, 12, 12, 2)],
    "large": [(24, 16, 16, 3), (16, 16, 16, 3)],
}
# (seq, dmodel) pools for attention blocks.
_SHAPES_ATTN = {
    "small": [(16, 16), (16, 8)],
    "medium": [(32, 32), (32, 16)],
    "large": [(64, 32), (48, 32)],
}
# Square sizes for 2D stencil pipelines.
_STENCIL_SIZES = {
    "small": [32, 48],
    "medium": [64, 96],
    "large": [96, 128],
}


def _spread(mix: dict[str, int], total: int,
            rng: random.Random) -> list[str]:
    """Expand the weighted mix into exactly ``total`` class labels,
    deterministically shuffled."""
    weight_sum = sum(mix.values())
    labels: list[str] = []
    for cls, weight in mix.items():
        labels.extend([cls] * round(weight * total / weight_sum))
    while len(labels) < total:
        labels.append(max(mix, key=mix.get))
    labels = labels[:total]
    rng.shuffle(labels)
    return labels


def _build_elementwise_neutral(name, spec, rng):
    rows, _ = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.elementwise_chain_op(
        name, rows=rows, cols=rng.choice(_NEUTRAL_COLS),
        length=1, extra_inputs=rng.choice([0, 1]))


def _build_elementwise_vec(name, spec, rng):
    rows, cols = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.elementwise_chain_op(
        name, rows=rows, cols=cols,
        length=rng.choice(_CHAIN_LENGTHS[spec.size_class]),
        extra_inputs=rng.choice([0, 1]))


def _build_broadcast(name, spec, rng):
    rows, cols = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.broadcast_bias_op(name, rows=rows, cols=cols)


def _build_reduce_producer(name, spec, rng):
    rows, _ = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.reduce_producer_op(name, rows=rows,
                                        red=rng.choice([16, 32]))


def _build_layout_conversion(name, spec, rng):
    batch, channels, height, width = rng.choice(_SHAPES_4D[spec.size_class])
    return operators.layout_conversion_op(
        name, batch=batch, channels=channels, height=height, width=width,
        to_nhwc=rng.choice([True, True, True, False]),
        fused_elementwise=rng.choice([0, 1]))


def _build_layout_conversion_f16(name, spec, rng):
    batch, channels, height, width = rng.choice(_SHAPES_4D[spec.size_class])
    return operators.layout_conversion_op(
        name, batch=batch, channels=channels, height=height, width=width,
        dtype=FLOAT16, to_nhwc=True, fused_elementwise=0)


def _build_softmax_like(name, spec, rng):
    rows, cols = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.softmax_like_op(name, rows=rows, cols=cols)


def _build_strided_pool(name, spec, rng):
    side = rng.choice([128, 256])
    return operators.strided_pool_op(name, rows=side, cols=side)


def _build_transpose2d(name, spec, rng):
    rows, _ = rng.choice(_SHAPES_2D[spec.size_class])
    return operators.transpose2d_op(name, rows=max(rows // 16, 64), cols=64)


def _build_depthwise_conv(name, spec, rng):
    channels, height, width, k = rng.choice(_SHAPES_DW[spec.size_class])
    return operators.depthwise_conv_op(name, channels=channels, height=height,
                                       width=width, kernel_size=k)


def _build_attention_block(name, spec, rng):
    seq, dmodel = rng.choice(_SHAPES_ATTN[spec.size_class])
    return operators.attention_block_op(name, seq=seq, dmodel=dmodel)


def _build_stencil_2d(name, spec, rng):
    size = rng.choice(_STENCIL_SIZES[spec.size_class])
    return operators.stencil2d_op(name, size=size,
                                  kind=rng.choice(["jacobi", "heat"]))


# The canonical operator-class registry: class label -> production-scale
# builder ``(name, spec, rng) -> Kernel``.  Everything that enumerates
# classes (network mixes, verification stand-ins, template baselines)
# must stay in sync with this table — enforced by
# :func:`validate_class_registry`.
_BUILDERS = {
    "elementwise_neutral": _build_elementwise_neutral,
    "elementwise_vec": _build_elementwise_vec,
    "broadcast": _build_broadcast,
    "reduce_producer": _build_reduce_producer,
    "layout_conversion": _build_layout_conversion,
    "layout_conversion_f16": _build_layout_conversion_f16,
    "softmax_like": _build_softmax_like,
    "strided_pool": _build_strided_pool,
    "transpose2d": _build_transpose2d,
    "depthwise_conv": _build_depthwise_conv,
    "attention_block": _build_attention_block,
    "stencil_2d": _build_stencil_2d,
}

OPERATOR_CLASSES = tuple(_BUILDERS)


def _build(cls: str, name: str, spec: NetworkSpec,
           rng: random.Random) -> Kernel:
    try:
        builder = _BUILDERS[cls]
    except KeyError:
        raise ValueError(f"unknown operator class {cls!r}; "
                         f"pick from {OPERATOR_CLASSES}") from None
    return builder(name, spec, rng)


def validate_class_registry() -> None:
    """Assert the class registry, the network mixes, the tiny-shape verify
    builders and the template-baseline table all agree.

    A class added to :data:`_BUILDERS` but missing from every network mix
    would silently never be synthesized (this actually happened to
    ``transpose2d``); a mix naming an unknown class would explode at
    generation time; a class without a verify builder would skip the
    exhaustive oracle tier; one without a template entry would lose its
    baseline column.  Checked at every suite generation — cheap, and it
    turns all four drift modes into an immediate, named error.
    """
    from repro.workloads.templates import TEMPLATES
    builder_classes = set(_BUILDERS)
    problems = []
    mixed: set = set()
    for spec in NETWORKS.values():
        unknown = sorted(set(spec.mix) - builder_classes)
        if unknown:
            problems.append(f"network {spec.name} mixes unknown "
                            f"class(es) {unknown}")
        mixed |= set(spec.mix)
    orphans = sorted(builder_classes - mixed)
    if orphans:
        problems.append(f"operator class(es) {orphans} appear in no "
                        f"network mix (silently never synthesized)")
    missing_verify = sorted(builder_classes - set(_VERIFY_BUILDERS))
    extra_verify = sorted(set(_VERIFY_BUILDERS) - builder_classes)
    if missing_verify:
        problems.append(f"class(es) {missing_verify} have no tiny-shape "
                        f"verify builder")
    if extra_verify:
        problems.append(f"verify builder(s) {extra_verify} name unknown "
                        f"classes")
    missing_templates = sorted(builder_classes - set(TEMPLATES))
    if missing_templates:
        problems.append(f"class(es) {missing_templates} have no template "
                        f"baseline (workloads/templates.py)")
    if problems:
        raise ValueError("operator class registry drift: "
                         + "; ".join(problems))


def generate_network_suite(network: str, seed: int = 0,
                           limit: int | None = None
                           ) -> list[tuple[str, Kernel]]:
    """The fused-operator suite of one Table I network.

    Returns ``[(class_label, kernel), ...]`` with exactly the network's
    operator count (or ``limit`` operators, sampled deterministically, for
    quick runs).
    """
    validate_class_registry()
    spec = NETWORKS[network]
    # zlib.crc32 is stable across processes (str.__hash__ is salted).
    rng = random.Random(zlib.crc32(network.encode()) ^ seed)
    labels = _spread(spec.mix, spec.total_operators, rng)
    suite = []
    for index, cls in enumerate(labels):
        name = f"{network.lower()}_op{index:03d}_{cls}"
        suite.append((cls, _build(cls, name, spec, rng)))
    if limit is not None and limit < len(suite):
        # Stratified sampling: keep the class mix representative by taking
        # operators round-robin across classes (ordered by class frequency).
        by_class: dict[str, list] = {}
        for entry in suite:
            by_class.setdefault(entry[0], []).append(entry)
        ordered_classes = sorted(by_class, key=lambda c: -len(by_class[c]))
        picked = []
        round_index = 0
        while len(picked) < limit:
            progressed = False
            for cls in ordered_classes:
                bucket = by_class[cls]
                if round_index < len(bucket):
                    picked.append(bucket[round_index])
                    progressed = True
                    if len(picked) == limit:
                        break
            if not progressed:
                break
            round_index += 1
        suite = picked
    return suite


# Tiny shapes per operator class for the exhaustive differential oracle
# (repro.verify): small enough that every statement domain can be fully
# enumerated by the sequential interpreter, but structurally identical to
# the production-scale operators above.
_VERIFY_BUILDERS = {
    "elementwise_neutral": lambda name: operators.elementwise_chain_op(
        name, rows=8, cols=3, length=1, extra_inputs=1),
    "elementwise_vec": lambda name: operators.elementwise_chain_op(
        name, rows=16, cols=8, length=2, extra_inputs=1),
    "broadcast": lambda name: operators.broadcast_bias_op(
        name, rows=16, cols=8),
    "reduce_producer": lambda name: operators.reduce_producer_op(
        name, rows=16, red=4),
    "layout_conversion": lambda name: operators.layout_conversion_op(
        name, batch=2, channels=4, height=4, width=4, fused_elementwise=1),
    "layout_conversion_f16": lambda name: operators.layout_conversion_op(
        name, batch=2, channels=4, height=4, width=4, dtype=FLOAT16,
        to_nhwc=True, fused_elementwise=0),
    "softmax_like": lambda name: operators.softmax_like_op(
        name, rows=8, cols=8),
    "strided_pool": lambda name: operators.strided_pool_op(
        name, rows=8, cols=8),
    "transpose2d": lambda name: operators.transpose2d_op(
        name, rows=16, cols=8),
    "depthwise_conv": lambda name: operators.depthwise_conv_op(
        name, channels=2, height=4, width=4, kernel_size=2),
    "attention_block": lambda name: operators.attention_block_op(
        name, seq=4, dmodel=4),
    "stencil_2d": lambda name: operators.stencil2d_op(
        name, size=6, kind="heat"),
}


def verification_suite(network: str) -> list[tuple[str, Kernel]]:
    """Small-shape stand-ins for one network's operator classes.

    One kernel per class in the network's mix, shaped so the exhaustive
    tier of the differential oracle (instance-set equality, interpreter
    semantics, exact-simulation conservation) applies; the production-scale
    suite from :func:`generate_network_suite` only gets the analytic tier.
    Deterministic: shapes are fixed, no sampling.
    """
    validate_class_registry()
    spec = NETWORKS[network]
    suite = []
    for cls in spec.mix:
        name = f"{network.lower()}_verify_{cls}"
        suite.append((cls, _VERIFY_BUILDERS[cls](name)))
    return suite
