"""Seeded generation of per-network fused-operator suites.

Given a :class:`~repro.workloads.networks.NetworkSpec`, produce exactly
``total_operators`` kernels drawn deterministically from the spec's class
mix, with shapes appropriate to the network's size class.  Two calls with
the same seed produce identical suites, so every benchmark run measures the
same population.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator

from repro.ir.kernel import Kernel
from repro.ir.types import FLOAT16, FLOAT32
from repro.workloads import operators
from repro.workloads.networks import NETWORKS, NetworkSpec

# Shape pools per size class: (rows, cols) for 2D classes.
_SHAPES_2D = {
    "small": [(1024, 32), (2048, 16), (512, 64)],
    "medium": [(8192, 32), (4096, 64), (8192, 64)],
    "large": [(16384, 64), (32768, 32), (8192, 64)],
}
# Odd column counts make an operator vectorization-ineligible (condition (b)).
_NEUTRAL_COLS = [31, 33, 63]
# (batch, channels, height, width) pools for layout conversions.
_SHAPES_4D = {
    "small": [(2, 64, 32, 32), (4, 64, 32, 16)],
    "medium": [(2, 64, 128, 128), (4, 64, 64, 64), (4, 128, 32, 32)],
    "large": [(2, 128, 128, 128), (4, 64, 128, 128), (2, 64, 128, 128)],
}
# Chain lengths per size class (LSTM-scale ops are single operators, the
# big NLP fused chains run longer).
_CHAIN_LENGTHS = {
    "small": [1, 2],
    "medium": [2, 3],
    "large": [3, 4],
}


def _spread(mix: dict[str, int], total: int,
            rng: random.Random) -> list[str]:
    """Expand the weighted mix into exactly ``total`` class labels,
    deterministically shuffled."""
    weight_sum = sum(mix.values())
    labels: list[str] = []
    for cls, weight in mix.items():
        labels.extend([cls] * round(weight * total / weight_sum))
    while len(labels) < total:
        labels.append(max(mix, key=mix.get))
    labels = labels[:total]
    rng.shuffle(labels)
    return labels


def _build(cls: str, name: str, spec: NetworkSpec,
           rng: random.Random) -> Kernel:
    rows, cols = rng.choice(_SHAPES_2D[spec.size_class])
    if cls == "elementwise_neutral":
        return operators.elementwise_chain_op(
            name, rows=rows, cols=rng.choice(_NEUTRAL_COLS),
            length=1, extra_inputs=rng.choice([0, 1]))
    if cls == "elementwise_vec":
        return operators.elementwise_chain_op(
            name, rows=rows, cols=cols,
            length=rng.choice(_CHAIN_LENGTHS[spec.size_class]),
            extra_inputs=rng.choice([0, 1]))
    if cls == "broadcast":
        return operators.broadcast_bias_op(name, rows=rows, cols=cols)
    if cls == "reduce_producer":
        return operators.reduce_producer_op(name, rows=rows,
                                            red=rng.choice([16, 32]))
    if cls == "layout_conversion":
        batch, channels, height, width = rng.choice(_SHAPES_4D[spec.size_class])
        return operators.layout_conversion_op(
            name, batch=batch, channels=channels, height=height, width=width,
            to_nhwc=rng.choice([True, True, True, False]),
            fused_elementwise=rng.choice([0, 1]))
    if cls == "layout_conversion_f16":
        batch, channels, height, width = rng.choice(_SHAPES_4D[spec.size_class])
        return operators.layout_conversion_op(
            name, batch=batch, channels=channels, height=height, width=width,
            dtype=FLOAT16, to_nhwc=True, fused_elementwise=0)
    if cls == "softmax_like":
        return operators.softmax_like_op(name, rows=rows, cols=cols)
    if cls == "strided_pool":
        side = rng.choice([128, 256])
        return operators.strided_pool_op(name, rows=side, cols=side)
    if cls == "transpose2d":
        return operators.transpose2d_op(name, rows=max(rows // 16, 64),
                                        cols=64)
    raise ValueError(f"unknown operator class {cls!r}")


def generate_network_suite(network: str, seed: int = 0,
                           limit: int | None = None
                           ) -> list[tuple[str, Kernel]]:
    """The fused-operator suite of one Table I network.

    Returns ``[(class_label, kernel), ...]`` with exactly the network's
    operator count (or ``limit`` operators, sampled deterministically, for
    quick runs).
    """
    spec = NETWORKS[network]
    # zlib.crc32 is stable across processes (str.__hash__ is salted).
    rng = random.Random(zlib.crc32(network.encode()) ^ seed)
    labels = _spread(spec.mix, spec.total_operators, rng)
    suite = []
    for index, cls in enumerate(labels):
        name = f"{network.lower()}_op{index:03d}_{cls}"
        suite.append((cls, _build(cls, name, spec, rng)))
    if limit is not None and limit < len(suite):
        # Stratified sampling: keep the class mix representative by taking
        # operators round-robin across classes (ordered by class frequency).
        by_class: dict[str, list] = {}
        for entry in suite:
            by_class.setdefault(entry[0], []).append(entry)
        ordered_classes = sorted(by_class, key=lambda c: -len(by_class[c]))
        picked = []
        round_index = 0
        while len(picked) < limit:
            progressed = False
            for cls in ordered_classes:
                bucket = by_class[cls]
                if round_index < len(bucket):
                    picked.append(bucket[round_index])
                    progressed = True
                    if len(picked) == limit:
                        break
            if not progressed:
                break
            round_index += 1
        suite = picked
    return suite


# Tiny shapes per operator class for the exhaustive differential oracle
# (repro.verify): small enough that every statement domain can be fully
# enumerated by the sequential interpreter, but structurally identical to
# the production-scale operators above.
_VERIFY_BUILDERS = {
    "elementwise_neutral": lambda name: operators.elementwise_chain_op(
        name, rows=8, cols=3, length=1, extra_inputs=1),
    "elementwise_vec": lambda name: operators.elementwise_chain_op(
        name, rows=16, cols=8, length=2, extra_inputs=1),
    "broadcast": lambda name: operators.broadcast_bias_op(
        name, rows=16, cols=8),
    "reduce_producer": lambda name: operators.reduce_producer_op(
        name, rows=16, red=4),
    "layout_conversion": lambda name: operators.layout_conversion_op(
        name, batch=2, channels=4, height=4, width=4, fused_elementwise=1),
    "layout_conversion_f16": lambda name: operators.layout_conversion_op(
        name, batch=2, channels=4, height=4, width=4, dtype=FLOAT16,
        to_nhwc=True, fused_elementwise=0),
    "softmax_like": lambda name: operators.softmax_like_op(
        name, rows=8, cols=8),
    "strided_pool": lambda name: operators.strided_pool_op(
        name, rows=8, cols=8),
    "transpose2d": lambda name: operators.transpose2d_op(
        name, rows=16, cols=8),
}


def verification_suite(network: str) -> list[tuple[str, Kernel]]:
    """Small-shape stand-ins for one network's operator classes.

    One kernel per class in the network's mix, shaped so the exhaustive
    tier of the differential oracle (instance-set equality, interpreter
    semantics, exact-simulation conservation) applies; the production-scale
    suite from :func:`generate_network_suite` only gets the analytic tier.
    Deterministic: shapes are fixed, no sampling.
    """
    spec = NETWORKS[network]
    suite = []
    for cls in spec.mix:
        name = f"{network.lower()}_verify_{cls}"
        suite.append((cls, _VERIFY_BUILDERS[cls](name)))
    return suite
