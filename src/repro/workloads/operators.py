"""Fused-operator templates.

Each builder returns a :class:`~repro.ir.Kernel` modelling one class of
fused operator that MindSpore's graph-kernel fusion hands to AKG:

* :func:`elementwise_chain_op` — a chain of element-wise operators over one
  flattened/2D shape (the dominant class in BERT/LSTM);
* :func:`broadcast_bias_op` — element-wise with a broadcast operand
  (bias add, scale);
* :func:`reduce_producer_op` — the running-example class: an element-wise
  producer feeding a reduction consumer (different iteration spaces, so the
  baseline distributes it, Fig. 2(a/b));
* :func:`layout_conversion_op` — 4D NCHW<->NHWC conversion fused with
  element-wise post-processing (the "transpose" class behind the ResNet
  speedups);
* :func:`transpose2d_op` — 2D matrix transpose fused with an add;
* :func:`running_example_op` — the paper's Fig. 2(a) kernel with
  configurable shape.

Shapes are kept moderate so the analytic GPU model simulates quickly while
preserving each class's memory behaviour (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.kernel import Kernel
from repro.ir.types import DType, FLOAT16, FLOAT32


def elementwise_chain_op(name: str, rows: int = 4096, cols: int = 64,
                         length: int = 3, extra_inputs: int = 1,
                         dtype: DType = FLOAT32) -> Kernel:
    """A chain of fused element-wise operators over a (rows, cols) tensor."""
    kernel = Kernel(name, params={"M": rows, "N": cols})
    kernel.add_tensor("T0", (rows, cols), dtype)
    for idx in range(length):
        kernel.add_tensor(f"T{idx + 1}", (rows, cols), dtype)
        for extra in range(extra_inputs):
            kernel.add_tensor(f"U{idx}_{extra}", (rows, cols), dtype)
    for idx in range(length):
        reads = [(f"T{idx}", ["i", "j"])]
        reads += [(f"U{idx}_{e}", ["i", "j"]) for e in range(extra_inputs)]
        kernel.add_statement(
            f"S{idx}", [("i", 0, "M"), ("j", 0, "N")],
            writes=[(f"T{idx + 1}", ["i", "j"])], reads=reads,
            flops=1 + extra_inputs)
    kernel.validate()
    return kernel


def broadcast_bias_op(name: str, rows: int = 4096, cols: int = 64,
                      dtype: DType = FLOAT32) -> Kernel:
    """``C[i][j] = f(A[i][j], bias[j])`` followed by an element-wise op."""
    kernel = Kernel(name, params={"M": rows, "N": cols})
    kernel.add_tensor("A", (rows, cols), dtype)
    kernel.add_tensor("bias", (cols,), dtype)
    kernel.add_tensor("B", (rows, cols), dtype)
    kernel.add_tensor("C", (rows, cols), dtype)
    kernel.add_statement("Add", [("i", 0, "M"), ("j", 0, "N")],
                         writes=[("B", ["i", "j"])],
                         reads=[("A", ["i", "j"]), ("bias", ["j"])])
    kernel.add_statement("Act", [("i", 0, "M"), ("j", 0, "N")],
                         writes=[("C", ["i", "j"])],
                         reads=[("B", ["i", "j"])])
    kernel.validate()
    return kernel


def reduce_producer_op(name: str, rows: int = 8192, red: int = 32,
                       dtype: DType = FLOAT32) -> Kernel:
    """An element-wise producer feeding a reduction over a 3D operand.

    This is the running-example class (Fig. 2(a)): the producer's iteration
    space differs from the consumer's, so the isl baseline splits the two
    nests while influenced scheduling fuses them.
    """
    kernel = Kernel(name, params={"M": rows, "K": red})
    kernel.add_tensor("A", (rows,), dtype)
    kernel.add_tensor("B", (rows,), dtype)
    kernel.add_tensor("C", (rows,), dtype)
    kernel.add_tensor("D", (red, rows), dtype)
    kernel.add_statement("X", [("i", 0, "M")],
                         writes=[("B", ["i"])],
                         reads=[("A", ["i"])])
    kernel.add_statement("Y", [("i", 0, "M"), ("k", 0, "K")],
                         writes=[("C", ["i"])],
                         reads=[("C", ["i"]), ("B", ["i"]),
                                ("D", ["k", "i"])],
                         flops=2)
    kernel.validate()
    return kernel


def layout_conversion_op(name: str, batch: int = 8, channels: int = 64,
                         height: int = 32, width: int = 32,
                         dtype: DType = FLOAT32,
                         to_nhwc: bool = True,
                         fused_elementwise: int = 0) -> Kernel:
    """4D layout conversion (NCHW <-> NHWC) with optional fused tail.

    The statement iterates the *input* layout order, so its textual
    innermost loop is contiguous for the reads but strided for the writes —
    the case where the baseline pays heavy store amplification and the
    influenced schedule flips the innermost dimension to the store side
    (the paper's ResNet transpose scenario).
    """
    kernel = Kernel(name, params={"B": batch, "C": channels,
                                  "H": height, "W": width})
    in_shape = (batch, channels, height, width) if to_nhwc \
        else (batch, height, width, channels)
    out_shape = (batch, height, width, channels) if to_nhwc \
        else (batch, channels, height, width)
    kernel.add_tensor("In", in_shape, dtype)
    kernel.add_tensor("Out", out_shape, dtype)
    iters = [("b", 0, "B"), ("c", 0, "C"), ("h", 0, "H"), ("w", 0, "W")]
    in_subs = ["b", "c", "h", "w"] if to_nhwc else ["b", "h", "w", "c"]
    out_subs = ["b", "h", "w", "c"] if to_nhwc else ["b", "c", "h", "w"]
    if fused_elementwise:
        kernel.add_tensor("Mid", out_shape, dtype)
        kernel.add_statement("Conv", iters, writes=[("Mid", out_subs)],
                             reads=[("In", in_subs)])
        previous = "Mid"
        for idx in range(fused_elementwise):
            target = "Out" if idx == fused_elementwise - 1 else f"E{idx}"
            if target != "Out":
                kernel.add_tensor(target, out_shape, dtype)
            kernel.add_statement(f"Ew{idx}", iters,
                                 writes=[(target, out_subs)],
                                 reads=[(previous, out_subs)])
            previous = target
    else:
        kernel.add_statement("Conv", iters, writes=[("Out", out_subs)],
                             reads=[("In", in_subs)])
    kernel.validate()
    return kernel


def transpose2d_op(name: str, rows: int = 256, cols: int = 256,
                   dtype: DType = FLOAT32) -> Kernel:
    """2D transpose fused with an element-wise add."""
    kernel = Kernel(name, params={"M": rows, "N": cols})
    kernel.add_tensor("A", (rows, cols), dtype)
    kernel.add_tensor("B", (cols, rows), dtype)
    kernel.add_tensor("C", (cols, rows), dtype)
    kernel.add_statement("T", [("i", 0, "M"), ("j", 0, "N")],
                         writes=[("B", ["j", "i"])],
                         reads=[("A", ["i", "j"])])
    kernel.add_statement("E", [("i", 0, "N"), ("j", 0, "M")],
                         writes=[("C", ["i", "j"])],
                         reads=[("B", ["i", "j"]), ("C", ["i", "j"])])
    kernel.validate()
    return kernel


def softmax_like_op(name: str, rows: int = 4096, cols: int = 64,
                    dtype: DType = FLOAT32) -> Kernel:
    """Row reduction followed by a broadcast-consuming normalization.

    The softmax building block (row max / row sum, then an element-wise op
    reading the reduced value): the reduction and the normalization have
    different iteration spaces, so the baseline splits them into two
    kernels while influence fuses the pair.
    """
    kernel = Kernel(name, params={"M": rows, "N": cols})
    kernel.add_tensor("A", (rows, cols), dtype)
    kernel.add_tensor("R", (rows,), dtype)
    kernel.add_tensor("Out", (rows, cols), dtype)
    kernel.add_statement("Red", [("i", 0, "M"), ("k", 0, "N")],
                         writes=[("R", ["i"])],
                         reads=[("R", ["i"]), ("A", ["i", "k"])])
    kernel.add_statement("Norm", [("i", 0, "M"), ("j", 0, "N")],
                         writes=[("Out", ["i", "j"])],
                         reads=[("A", ["i", "j"]), ("R", ["i"])],
                         flops=2)
    kernel.validate()
    return kernel


def strided_pool_op(name: str, rows: int = 512, cols: int = 512,
                    window: int = 2, dtype: DType = FLOAT32) -> Kernel:
    """2x-strided window pooling: ``Out[i][j] = reduce(In[2i+r][2j+s])``.

    Exercises non-unit access coefficients (stride-2 subscripts) through
    the whole stack: the dependence analysis, the cost model (stride-2
    stores are not vectorizable), code generation and the address model.
    """
    if rows % 2 or cols % 2:
        raise ValueError("pooling shapes must be even")
    kernel = Kernel(name, params={"M": rows // 2, "N": cols // 2,
                                  "W": window})
    kernel.add_tensor("In", (rows, cols), dtype)
    kernel.add_tensor("Out", (rows // 2, cols // 2), dtype)
    kernel.add_statement(
        "Pool",
        [("i", 0, "M"), ("j", 0, "N"), ("r", 0, "W"), ("s", 0, "W")],
        writes=[("Out", ["i", "j"])],
        reads=[("Out", ["i", "j"]), ("In", ["2*i + r", "2*j + s"])],
    )
    kernel.validate()
    return kernel


def depthwise_conv_op(name: str, channels: int = 16, height: int = 16,
                      width: int = 16, kernel_size: int = 3,
                      dtype: DType = FLOAT32) -> Kernel:
    """Depthwise convolution: per-channel windowed accumulation.

    Models the depthwise lowering NPU/TVM backends emit: a pointwise
    pre-scale of the (padded) input, the per-channel window reduction
    ``Acc[c][h][w] += Mid[c][h+r][w+s] * Wt[c][r][s]``, and a broadcast
    bias tail.  Unlike :func:`strided_pool_op` (stride-2, no reuse) the
    unit-stride window means adjacent outputs *reuse* ``kernel_size - 1``
    columns of the producer — the dependence pattern of stencils, but
    feeding a reduction whose iteration space (5D) differs from both its
    producer's (3D, padded) and consumer's (3D), so every variant must
    decide where to distribute.
    """
    if kernel_size < 1:
        raise ValueError("kernel_size must be positive")
    padded_h = height + kernel_size - 1
    padded_w = width + kernel_size - 1
    kernel = Kernel(name, params={"C": channels, "H": height, "W": width,
                                  "K": kernel_size, "P": padded_h,
                                  "Q": padded_w})
    kernel.add_tensor("In", (channels, padded_h, padded_w), dtype)
    kernel.add_tensor("Mid", (channels, padded_h, padded_w), dtype)
    kernel.add_tensor("Wt", (channels, kernel_size, kernel_size), dtype)
    kernel.add_tensor("Acc", (channels, height, width), dtype)
    kernel.add_tensor("Bias", (channels,), dtype)
    kernel.add_tensor("Out", (channels, height, width), dtype)
    kernel.add_statement(
        "Scale", [("c", 0, "C"), ("x", 0, "P"), ("y", 0, "Q")],
        writes=[("Mid", ["c", "x", "y"])],
        reads=[("In", ["c", "x", "y"])])
    kernel.add_statement(
        "Dw",
        [("c", 0, "C"), ("h", 0, "H"), ("w", 0, "W"),
         ("r", 0, "K"), ("s", 0, "K")],
        writes=[("Acc", ["c", "h", "w"])],
        reads=[("Acc", ["c", "h", "w"]),
               ("Mid", ["c", "h + r", "w + s"]),
               ("Wt", ["c", "r", "s"])],
        flops=2)
    kernel.add_statement(
        "Tail", [("c", 0, "C"), ("h", 0, "H"), ("w", 0, "W")],
        writes=[("Out", ["c", "h", "w"])],
        reads=[("Acc", ["c", "h", "w"]), ("Bias", ["c"])])
    kernel.validate()
    return kernel


def attention_block_op(name: str, seq: int = 64, dmodel: int = 32,
                       dtype: DType = FLOAT32) -> Kernel:
    """A scaled-dot-product attention block: QK scores, a numerically
    stable softmax (row max, exponentiation, row sum, normalization) and
    the weighted sum against V.

    This is the reduction-then-broadcast-then-reduction chain BERT's
    Table II entry undersamples: six statements alternating between
    reductions (``Score``, ``RowMax``, ``RowSum``, ``WSum``) and
    broadcast consumers of the reduced values (``Exp``, ``Norm``) —
    :func:`softmax_like_op` is the two-statement core of the middle.
    The isl baseline distributes at every space change; influenced
    scheduling has to choose which of the five producer/consumer edges
    to fuse across.
    """
    kernel = Kernel(name, params={"S": seq, "D": dmodel})
    kernel.add_tensor("Q", (seq, dmodel), dtype)
    kernel.add_tensor("Kt", (seq, dmodel), dtype)
    kernel.add_tensor("V", (seq, dmodel), dtype)
    kernel.add_tensor("A", (seq, seq), dtype)
    kernel.add_tensor("Mx", (seq,), dtype)
    kernel.add_tensor("E", (seq, seq), dtype)
    kernel.add_tensor("R", (seq,), dtype)
    kernel.add_tensor("P", (seq, seq), dtype)
    kernel.add_tensor("O", (seq, dmodel), dtype)
    kernel.add_statement(
        "Score", [("i", 0, "S"), ("j", 0, "S"), ("k", 0, "D")],
        writes=[("A", ["i", "j"])],
        reads=[("A", ["i", "j"]), ("Q", ["i", "k"]), ("Kt", ["j", "k"])],
        flops=2)
    kernel.add_statement(
        "RowMax", [("i", 0, "S"), ("k", 0, "S")],
        writes=[("Mx", ["i"])],
        reads=[("Mx", ["i"]), ("A", ["i", "k"])])
    kernel.add_statement(
        "Exp", [("i", 0, "S"), ("j", 0, "S")],
        writes=[("E", ["i", "j"])],
        reads=[("A", ["i", "j"]), ("Mx", ["i"])],
        flops=2)
    kernel.add_statement(
        "RowSum", [("i", 0, "S"), ("k", 0, "S")],
        writes=[("R", ["i"])],
        reads=[("R", ["i"]), ("E", ["i", "k"])])
    kernel.add_statement(
        "Norm", [("i", 0, "S"), ("j", 0, "S")],
        writes=[("P", ["i", "j"])],
        reads=[("E", ["i", "j"]), ("R", ["i"])])
    kernel.add_statement(
        "WSum", [("i", 0, "S"), ("j", 0, "D"), ("k", 0, "S")],
        writes=[("O", ["i", "j"])],
        reads=[("O", ["i", "j"]), ("P", ["i", "k"]), ("V", ["k", "j"])],
        flops=2)
    kernel.validate()
    return kernel


def stencil2d_op(name: str, size: int = 64,
                 kind: str = "jacobi") -> Kernel:
    """A multi-statement 2D stencil pipeline (see :mod:`repro.ir.examples`).

    ``kind`` picks the structure: ``"jacobi"`` is the two-statement
    ping-pong 5-point star over the interior domain; ``"heat"`` threads a
    full-domain pointwise stage between two diffusion steps, mixing
    iteration spaces inside one pipeline.
    """
    from repro.ir import examples
    if kind == "jacobi":
        return examples.jacobi_2d(size, name=name)
    if kind == "heat":
        return examples.heat_2d(size, name=name)
    raise ValueError(f"unknown stencil kind {kind!r}; "
                     f"pick from ('jacobi', 'heat')")


def running_example_op(name: str = "fused_mul_sub_mul_tensoradd",
                       outer: int = 2048, inner: int = 32,
                       dtype: DType = FLOAT32) -> Kernel:
    """The paper's running example with a production-like fat outer dim."""
    kernel = Kernel(name, params={"M": outer, "N": inner})
    kernel.add_tensor("A", (outer, inner), dtype)
    kernel.add_tensor("B", (outer, inner), dtype)
    kernel.add_tensor("C", (outer, inner), dtype)
    kernel.add_tensor("D", (inner, outer, inner), dtype)
    kernel.add_statement("X", [("i", 0, "M"), ("k", 0, "N")],
                         writes=[("B", ["i", "k"])],
                         reads=[("A", ["i", "k"])])
    kernel.add_statement("Y", [("i", 0, "M"), ("j", 0, "N"), ("k", 0, "N")],
                         writes=[("C", ["i", "j"])],
                         reads=[("C", ["i", "j"]), ("B", ["i", "k"]),
                                ("D", ["k", "i", "j"])],
                         flops=3)
    kernel.validate()
    return kernel
