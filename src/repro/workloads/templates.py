"""TVM-style template-schedule baselines, one per operator class.

The scheduler variants (``isl``/``tvm``/``novec``/``infl``) all search for
a schedule; a *template* does not.  It encodes the fixed recipe a TVM-style
operator library would apply to the family: compile every statement as its
own launch, keep the statement's textual loop order, hoist the parallel
(non-reduction) loops outermost and bind them to blocks/threads, leave the
reduction loops sequential innermost.  This mirrors the ``schedule_injective``
/ reduce-schedule idiom (fuse → split → bind) without any dependence-driven
fusion or influence constraints, and gives evaluation a per-family baseline
column: how much does *scheduling* buy over the hand-template for this class?

Every class in :data:`~repro.workloads.generator.OPERATOR_CLASSES` must have
an entry in :data:`TEMPLATES` — enforced by
:func:`~repro.workloads.generator.validate_class_registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.cuda import MappedKernel, map_to_gpu
from repro.codegen.generate import generate_ast
from repro.codegen.vectorize import vectorize
from repro.deps.analysis import compute_dependences
from repro.gpu.arch import GpuArch, V100
from repro.gpu.simulator import KernelProfile, simulate_kernel
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.schedule.analysis import annotate_parallelism, verify_schedule
from repro.schedule.functions import DimensionInfo, Schedule, ScheduleRow

# Operator class -> template kind.  ``injective`` statements are fully
# parallel (elementwise / layout / stencil interiors); ``reduce_inner``
# families carry accumulator loops that the template keeps sequential
# innermost.  Both kinds share one mechanical recipe (parallel loops
# outermost, one launch per statement); the kind is the provenance label
# reported alongside the baseline measurement.
TEMPLATES: dict[str, str] = {
    "elementwise_neutral": "injective",
    "elementwise_vec": "injective",
    "broadcast": "injective",
    "reduce_producer": "reduce_inner",
    "layout_conversion": "injective",
    "layout_conversion_f16": "injective",
    "softmax_like": "reduce_inner",
    "strided_pool": "reduce_inner",
    "transpose2d": "injective",
    "depthwise_conv": "reduce_inner",
    "attention_block": "reduce_inner",
    "stencil_2d": "injective",
}


def template_kind(op_class: str) -> str:
    """The template label for ``op_class`` (``injective`` for unknowns)."""
    return TEMPLATES.get(op_class, "injective")


@dataclass
class TemplateResult:
    """One operator compiled and measured under its class template."""

    kernel: Kernel
    op_class: str
    kind: str
    launches: list[MappedKernel] = field(default_factory=list)
    profiles: list[KernelProfile] = field(default_factory=list)

    @property
    def time(self) -> float:
        return sum(p.time for p in self.profiles)

    @property
    def n_launches(self) -> int:
        return len(self.launches)


def _single_statement_kernel(kernel: Kernel, statement: Statement,
                             suffix: str) -> Kernel:
    """A kernel view over one statement (tensors and params shared)."""
    sub = Kernel(f"{kernel.name}{suffix}", params=dict(kernel.params))
    sub.tensors = dict(kernel.tensors)
    sub.statements = [statement]
    return sub


def _identity_schedule(statement: Statement, params: list[str],
                       order: list[str]) -> Schedule:
    """The schedule mapping iteration vectors to ``order``, one dim each."""
    schedule = Schedule([statement], params)
    for iterator in order:
        coeffs = [1 if name == iterator else 0
                  for name in statement.iterators]
        row = ScheduleRow.from_coeffs(statement, params, coeffs,
                                      [0] * len(params), 0)
        schedule.append_dimension({statement.name: row},
                                  DimensionInfo(band=0))
    return schedule


def _statement_schedule(sub: Kernel, statement: Statement):
    """The template schedule for one statement: textual order, then the
    parallel loops hoisted outermost (reduction loops stay innermost, the
    classic bind-outer/reduce-inner library shape).  The hoisted order is
    kept only when :func:`verify_schedule` proves it valid."""
    relations = compute_dependences(sub)
    natural = list(statement.iterators)
    schedule = _identity_schedule(statement, sub.parameter_names, natural)
    annotate_parallelism(schedule, relations)
    hoisted = ([it for it, d in zip(natural, schedule.dims) if d.parallel]
               + [it for it, d in zip(natural, schedule.dims)
                  if not d.parallel])
    if hoisted != natural:
        candidate = _identity_schedule(statement, sub.parameter_names,
                                       hoisted)
        annotate_parallelism(candidate, relations)
        if not verify_schedule(candidate, relations):
            schedule = candidate
    for info in schedule.dims:
        info.coincident = info.parallel
    return schedule, relations


def template_compile(kernel: Kernel, op_class: str = "",
                     max_threads: int = 256) -> list[MappedKernel]:
    """Compile ``kernel`` under its class template: one launch per
    statement, parallel-outer identity schedules, no vectorization."""
    launches = []
    for index, statement in enumerate(kernel.statements):
        sub = _single_statement_kernel(kernel, statement, f"_t{index}")
        schedule, relations = _statement_schedule(sub, statement)
        ast = generate_ast(sub, schedule)
        ast = vectorize(ast, sub, schedule, relations, enable=False)
        launches.append(map_to_gpu(sub, ast, schedule,
                                   max_threads=max_threads))
    return launches


def template_measure(kernel: Kernel, op_class: str = "",
                     arch: GpuArch = V100, sample_blocks: int = 8,
                     max_threads: int = 256,
                     sim: str = "") -> TemplateResult:
    """Compile and simulate ``kernel`` under its class template."""
    launches = template_compile(kernel, op_class, max_threads=max_threads)
    profiles = [simulate_kernel(launch, arch=arch,
                                sample_blocks=sample_blocks, sim=sim)
                for launch in launches]
    return TemplateResult(kernel=kernel, op_class=op_class,
                          kind=template_kind(op_class),
                          launches=launches, profiles=profiles)
