"""Network registry (Table I) and per-network operator mixes.

Operator counts per network come from Table II's ``total`` column.  The
class mixes are calibrated so the *measured* population statistics (how many
operators end up influenced / vectorizable, who dominates execution time)
match the paper's profile: BERT and LSTM are element-wise dominated with
about half the operators left untouched by influence, the ResNets carry the
layout-conversion (transpose) operators responsible for the large speedups,
ResNeXt/VGG sit in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkSpec:
    """One Table I row plus the generator's operator-class mix."""

    name: str
    kind: str                 # "nlp" | "cv"
    dataset: str
    total_operators: int
    # class name -> weight; classes are defined in generator.py
    mix: dict = field(default_factory=dict)
    # scale hints for shapes (rows of 2D ops, channels of 4D ops)
    size_class: str = "medium"  # "small" | "medium" | "large"


NETWORKS: dict[str, NetworkSpec] = {
    "BERT": NetworkSpec(
        name="BERT", kind="nlp", dataset="zhwiki", total_operators=109,
        mix={"elementwise_neutral": 46, "elementwise_vec": 30,
             "broadcast": 18, "reduce_producer": 8, "softmax_like": 7,
             "attention_block": 4},
        size_class="large"),
    "LSTM": NetworkSpec(
        name="LSTM", kind="nlp", dataset="ACLIMDB, GloVe", total_operators=4,
        mix={"elementwise_neutral": 1, "elementwise_vec": 2, "broadcast": 1},
        size_class="small"),
    "MobileNetv2": NetworkSpec(
        name="MobileNetv2", kind="cv", dataset="ImageNet", total_operators=18,
        mix={"elementwise_neutral": 2, "elementwise_vec": 8, "broadcast": 5,
             "layout_conversion": 2, "strided_pool": 1,
             "depthwise_conv": 3},
        size_class="small"),
    "ResNet50": NetworkSpec(
        name="ResNet50", kind="cv", dataset="CIFAR-10", total_operators=17,
        mix={"elementwise_neutral": 5, "elementwise_vec": 4, "broadcast": 2,
             "layout_conversion": 4, "layout_conversion_f16": 2},
        size_class="medium"),
    "ResNet101": NetworkSpec(
        name="ResNet101", kind="cv", dataset="ImageNet", total_operators=22,
        mix={"elementwise_neutral": 6, "elementwise_vec": 5, "broadcast": 2,
             "layout_conversion": 4, "layout_conversion_f16": 5},
        size_class="large"),
    "ResNeXt50": NetworkSpec(
        name="ResNeXt50", kind="cv", dataset="ImageNet", total_operators=33,
        mix={"elementwise_neutral": 11, "elementwise_vec": 12, "broadcast": 6,
             "layout_conversion": 4, "transpose2d": 2, "depthwise_conv": 2},
        size_class="medium"),
    "VGG16": NetworkSpec(
        name="VGG16", kind="cv", dataset="CIFAR-10", total_operators=14,
        mix={"elementwise_neutral": 4, "elementwise_vec": 4, "broadcast": 2,
             "layout_conversion": 3, "strided_pool": 1, "stencil_2d": 1},
        size_class="medium"),
}


def network_names() -> list[str]:
    return list(NETWORKS)


def table1_rows() -> list[tuple[str, str, str]]:
    """The rows of Table I: (network, type, dataset)."""
    return [(spec.name, spec.kind, spec.dataset)
            for spec in NETWORKS.values()]
