"""Workload zoo: fused-operator suites for the Table I networks.

The paper evaluates fused operators extracted by MindSpore's graph-kernel
fusion from seven networks (Table I).  We cannot run MindSpore, so
:mod:`repro.workloads.generator` reproduces the *population statistics* that
drive the evaluation: each network gets a seeded suite of fused operators
drawn from the operator classes of :mod:`repro.workloads.operators`
(element-wise chains, broadcast ops, reductions with producers, 2D/4D
layout conversions, running-example-shaped operators), with a per-network
class mix calibrated to the paper's operator counts and speedup profile
(transpose-heavy ResNets, element-wise-dominated BERT, tiny LSTM).
"""

from repro.workloads.networks import NETWORKS, NetworkSpec, network_names
from repro.workloads.generator import generate_network_suite
from repro.workloads import operators

__all__ = [
    "NETWORKS",
    "NetworkSpec",
    "network_names",
    "generate_network_suite",
    "operators",
]
