"""Content-keyed schedule cache.

The pipeline used to memoize schedules per :class:`~repro.ir.kernel.Kernel`
*object* (a ``weakref`` identity cache), so a regenerated-but-identical
kernel — the common case for repeated suite runs, the ``novec``/``infl``
pair, and the tile autotuner's candidates — recompiled from scratch.  This
module replaces that with a cache keyed on kernel *content*: a canonical
signature of the IR (parameters, statement structure, iteration domains,
accesses with tensor shapes and dtypes) combined with the variant-relevant
compilation inputs (influence on/off, scheduler options, cost weights).

The cached entry is the expensive schedule-producing prefix of the pass
list: dependence relations, the finished :class:`Schedule`, and the
scheduler's counters.  Schedules index their rows by statement *name*, and
statement names/structure are part of the key, so an entry built from one
kernel object is valid for every content-equal kernel.  Kernel names are
deliberately excluded from the key (generated operators carry unique
names; distributed baselines suffix ``_k0`` per cluster).

Constraint order inside iteration domains is kept (not sorted away): the
ILP's variable/constraint layout follows it, and two kernels must only
share an entry when the whole solve is bit-for-bit identical.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import astuple, dataclass
from typing import Optional

from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.ir.signature import kernel_signature
from repro.schedule.scheduler import SchedulerOptions, SchedulerStats

__all__ = ["ScheduleCache", "ScheduleCacheEntry", "kernel_signature"]


@dataclass
class ScheduleCacheEntry:
    """The cached schedule-producing prefix of a compilation."""

    relations: list
    schedule: object
    stats: Optional[SchedulerStats]


class ScheduleCache:
    """LRU cache of schedule-prefix results, keyed by kernel content."""

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, ScheduleCacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, kernel: Kernel, *, influence: bool,
                options: SchedulerOptions,
                weights: CostWeights) -> tuple:
        """The full cache key: content signature + compilation inputs.

        ``weights`` only shape the influence tree, but they stay in the key
        unconditionally — one key recipe, no influence-dependent holes."""
        return (kernel_signature(kernel), bool(influence),
                astuple(options), astuple(weights))

    def lookup(self, key: tuple) -> Optional[ScheduleCacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, *, relations, schedule,
              stats: Optional[SchedulerStats] = None) -> None:
        self._entries[key] = ScheduleCacheEntry(relations=relations,
                                                schedule=schedule,
                                                stats=stats)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries), "hit_rate": self.hit_rate}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
