"""Pass-manager architecture for the compilation pipeline.

The monolithic ``deps -> schedule -> codegen -> vectorize -> map`` call
chain is re-expressed as a list of small :class:`Pass` objects driven by a
:class:`CompilationSession`.  The session carries a :class:`PassContext`
that aggregates per-pass wall time, scheduler counters (ILP solves,
backtracking activations, ...) and — optionally — a structured trace log,
and consults a content-keyed :class:`~repro.pipeline.cache.ScheduleCache`
so structurally equal kernels reuse the expensive schedule-producing
prefix (dependence analysis, influence-tree build, influenced scheduling)
instead of recompiling from scratch.

Pass lists are data: :func:`variant_passes` builds the list for each of
the paper's four evaluation variants, and callers may splice in extra
stages (the tile autotuner inserts :class:`TilingPass` before mapping).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

from repro.codegen.cuda import MappedKernel, map_to_gpu
from repro.codegen.generate import generate_ast
from repro.codegen.tiling import tile_band
from repro.codegen.vectorize import vectorize
from repro.deps.analysis import compute_dependences
from repro.faultinject import fault_action, raise_fault
from repro.influence.builder import build_influence_tree
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.obs import MetricsRegistry, Obs, Tracer, use_obs
from repro.obs.metrics import format_histogram_line, Histogram
from repro.schedule.scheduler import (
    InfluencedScheduler,
    SchedulerOptions,
    SchedulerStats,
)

# Canonical pass execution order (used by summaries for stable display).
PASS_ORDER = ("deps", "influence-tree", "schedule", "codegen", "tile",
              "vectorize", "gpu-map")


# -- metrics ----------------------------------------------------------------


class PassContext:
    """Aggregated instrumentation of one or more compilation sessions.

    Re-based on :mod:`repro.obs`: the context owns an :class:`Obs` bundle —
    a metrics registry (always on: ``counters`` delegates to it) and a
    tracer (hierarchical spans, on only when ``trace=True``).
    ``pass_seconds``/``pass_calls`` hold per-pass wall time, and ``events``
    is the legacy flat trace log — every event now stamped with a
    wall-anchored monotonic ``ts`` and a ``worker`` id so merged
    multi-worker logs keep a coherent order.  Contexts merge: per-worker
    snapshots from a parallel evaluation fold into a single report (spans
    are clock-offset-normalized by the tracer, then time-sorted).
    """

    def __init__(self, trace: bool = False, obs: Optional[Obs] = None):
        if obs is None:
            obs = Obs(tracer=Tracer(enabled=trace),
                      metrics=MetricsRegistry())
        self.obs = obs
        self.pass_seconds: dict[str, float] = {}
        self.pass_calls: dict[str, int] = {}
        self.events: list[dict] = []

    @property
    def trace_enabled(self) -> bool:
        return self.obs.tracer.enabled

    @property
    def counters(self) -> dict[str, float]:
        return self.obs.metrics.counters

    # -- recording -----------------------------------------------------------

    @contextmanager
    def timed(self, name: str, **trace_fields):
        """Time one pass execution; records a span (and a stamped legacy
        event) when tracing."""
        start = time.perf_counter()
        with self.obs.span(f"pass.{name}", **trace_fields):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.pass_seconds[name] = \
                    self.pass_seconds.get(name, 0.0) + elapsed
                self.pass_calls[name] = self.pass_calls.get(name, 0) + 1
                self.obs.observe(f"pass.{name}.seconds", elapsed)
                if self.trace_enabled:
                    self.events.append({
                        "event": "pass", "pass": name, "seconds": elapsed,
                        "ts": self.obs.tracer.now() - elapsed,
                        "worker": self.obs.tracer.worker, **trace_fields})

    def count(self, name: str, amount: float = 1) -> None:
        self.obs.metrics.count(name, amount)

    def add_counters(self, mapping: dict, prefix: str = "") -> None:
        for name, amount in mapping.items():
            self.count(f"{prefix}{name}", amount)

    def record(self, event: str, **fields) -> None:
        """Append a structured trace event (no-op unless tracing)."""
        if self.trace_enabled:
            self.obs.event(event, **fields)
            self.events.append({"event": event,
                                "ts": self.obs.tracer.now(),
                                "worker": self.obs.tracer.worker, **fields})

    # -- (de)serialization and merging ---------------------------------------

    def as_dict(self) -> dict:
        """JSON-safe snapshot (what parallel workers ship back)."""
        metrics = self.obs.metrics.as_dict()
        payload = {
            "passes": {name: {"calls": self.pass_calls.get(name, 0),
                              "seconds": self.pass_seconds.get(name, 0.0)}
                       for name in self.pass_seconds},
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "histograms": metrics["histograms"],
        }
        if self.events:
            payload["events"] = list(self.events)
        spans = self.obs.tracer.as_dict()["spans"]
        if spans:
            payload["spans"] = spans
        return payload

    def merge_dict(self, payload: dict) -> None:
        """Fold one :meth:`as_dict` snapshot into this context."""
        for name, entry in payload.get("passes", {}).items():
            self.pass_seconds[name] = \
                self.pass_seconds.get(name, 0.0) + entry.get("seconds", 0.0)
            self.pass_calls[name] = \
                self.pass_calls.get(name, 0) + entry.get("calls", 0)
        self.obs.metrics.merge_dict({
            "counters": payload.get("counters", {}),
            "gauges": payload.get("gauges", {}),
            "histograms": payload.get("histograms", {})})
        self.events.extend(payload.get("events", ()))
        self.events.sort(key=lambda e: e.get("ts", 0.0))
        self.obs.tracer.merge_dict({"spans": payload.get("spans", ())})

    def merge(self, other: "PassContext") -> None:
        self.merge_dict(other.as_dict())

    def chrome_trace(self) -> dict:
        """The (merged) span log as Chrome trace-event JSON."""
        return self.obs.tracer.chrome_trace()

    def format_summary(self) -> str:
        """Human-readable per-pass timing table plus headline counters."""
        return format_pass_summary(self.as_dict())


def merge_metric_dicts(payloads: Iterable[dict]) -> dict:
    """Merge several :meth:`PassContext.as_dict` snapshots into one."""
    merged = merge_contexts(payloads)
    out = merged.as_dict()
    out.setdefault("passes", {})
    out.setdefault("counters", {})
    return out


def merge_contexts(payloads: Iterable[dict]) -> PassContext:
    """Merge snapshots into a fresh tracing context (spans preserved)."""
    merged = PassContext(trace=True)  # keep events/spans from any payload
    for payload in payloads:
        merged.merge_dict(payload)
    return merged


def format_pass_summary(metrics: dict) -> str:
    """Render merged pass metrics as a small fixed-width table."""
    passes = metrics.get("passes", {})
    counters = metrics.get("counters", {})
    lines = ["per-pass compile time:",
             f"  {'pass':<16}{'calls':>8}{'total ms':>12}{'mean us':>12}"]
    ordered = [n for n in PASS_ORDER if n in passes]
    ordered += sorted(n for n in passes if n not in PASS_ORDER)
    for name in ordered:
        entry = passes[name]
        calls = entry.get("calls", 0)
        seconds = entry.get("seconds", 0.0)
        mean_us = seconds / calls * 1e6 if calls else 0.0
        lines.append(f"  {name:<16}{calls:>8}{seconds * 1e3:>12.2f}"
                     f"{mean_us:>12.1f}")
    hits = int(counters.get("cache.hits", 0))
    misses = int(counters.get("cache.misses", 0))
    if hits or misses:
        rate = hits / (hits + misses) * 100.0
        lines.append(f"  schedule cache: {hits} hits / {misses} misses "
                     f"({rate:.1f}% hit rate)")
    for label, prefix in (("solver warm-start", "solver.warmstart"),
                          ("solver dedup", "solver.dedup"),
                          ("profile cache", "sim.profile_cache")):
        reuse_hits = int(counters.get(f"{prefix}.hits", 0))
        reuse_misses = int(counters.get(f"{prefix}.misses", 0))
        if reuse_hits or reuse_misses:
            reuse_rate = reuse_hits / (reuse_hits + reuse_misses) * 100.0
            lines.append(f"  {label}: {reuse_hits} hits / "
                         f"{reuse_misses} misses ({reuse_rate:.1f}% hit rate)")
    scheduler = {name[len("scheduler."):]: int(amount)
                 for name, amount in sorted(counters.items())
                 if name.startswith("scheduler.") and amount}
    if scheduler:
        rendered = ", ".join(f"{k}={v}" for k, v in scheduler.items())
        lines.append(f"  scheduler: {rendered}")
    fastpath = {name[len("sim.fastpath."):]: int(amount)
                for name, amount in sorted(counters.items())
                if name.startswith("sim.fastpath.") and amount}
    if fastpath:
        rendered = ", ".join(f"{k}={v}" for k, v in fastpath.items())
        lines.append(f"  simulator fast path: {rendered}")
    histograms = metrics.get("histograms", {})
    for hist_name in ("solver.solve_seconds", "solver.warmstart.reuse_seconds"):
        hist = histograms.get(hist_name)
        if hist:
            lines.append(format_histogram_line(hist_name,
                                               Histogram.from_dict(hist)))
    return "\n".join(lines)


# -- session state ----------------------------------------------------------


@dataclass
class PassState:
    """Mutable state threaded through one pass list over one kernel."""

    kernel: Kernel
    variant: str = "custom"
    relations: Optional[list] = None
    tree: Optional[object] = None
    schedule: Optional[object] = None
    scheduler_stats: Optional[SchedulerStats] = None
    ast: Optional[object] = None
    mapped: Optional[MappedKernel] = None
    tiled_loops: int = 0
    from_cache: bool = False


@runtime_checkable
class Pass(Protocol):
    """One compilation stage.

    ``cacheable`` marks the schedule-producing prefix: passes whose outputs
    are stored in (and restored from) the content-keyed schedule cache.
    """

    name: str
    cacheable: bool

    def run(self, state: PassState, session: "CompilationSession") -> None:
        ...


# -- concrete passes --------------------------------------------------------


class DependenceAnalysisPass:
    """Compute the kernel's dependence relations."""

    name = "deps"
    cacheable = True

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.relations = compute_dependences(state.kernel)
        session.context.count("deps.relations", len(state.relations))


class InfluenceTreePass:
    """Build the influence constraint tree (Algorithm 2 + Section IV)."""

    name = "influence-tree"
    cacheable = True

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.tree = build_influence_tree(state.kernel,
                                          weights=session.weights)


class SchedulingPass:
    """Run Algorithm 1 (influenced when a tree was built)."""

    name = "schedule"
    cacheable = True

    def run(self, state: PassState, session: "CompilationSession") -> None:
        scheduler = InfluencedScheduler(state.kernel,
                                        relations=state.relations,
                                        options=session.options)
        state.schedule = scheduler.schedule(state.tree)
        state.scheduler_stats = scheduler.stats
        session.context.add_counters(scheduler.stats.as_dict(),
                                     prefix="scheduler.")


class AstGenerationPass:
    """Polyhedral code generation: schedule -> loop AST."""

    name = "codegen"
    cacheable = False

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.ast = generate_ast(state.kernel, state.schedule)


class TilingPass:
    """Apply band tiling between code generation and mapping."""

    name = "tile"
    cacheable = False

    def __init__(self, tile_sizes: Sequence[int]):
        self.tile_sizes = tuple(tile_sizes)

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.tiled_loops = tile_band(state.ast, state.schedule,
                                      state.kernel.params, self.tile_sizes) \
            if self.tile_sizes else 0


class VectorizePass:
    """Finalize (or strip, for ``novec``/baselines) vector-marked loops."""

    name = "vectorize"
    cacheable = False

    def __init__(self, enable: bool):
        self.enable = enable

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.ast = vectorize(state.ast, state.kernel, state.schedule,
                              state.relations, enable=self.enable)


class GpuMappingPass:
    """Map the AST onto a CUDA launch geometry."""

    name = "gpu-map"
    cacheable = False

    def run(self, state: PassState, session: "CompilationSession") -> None:
        state.mapped = map_to_gpu(state.kernel, state.ast, state.schedule,
                                  max_threads=session.max_threads)


def variant_passes(influence: bool, enable_vec: bool) -> tuple:
    """The pass list shared by the four variants: influence-tree build is
    present for influenced configurations (``tvm``/``novec``/``infl``),
    vectorization is finalized only for ``infl``."""
    passes: list = [DependenceAnalysisPass()]
    if influence:
        passes.append(InfluenceTreePass())
    passes += [SchedulingPass(), AstGenerationPass(),
               VectorizePass(enable_vec), GpuMappingPass()]
    return tuple(passes)


# -- the session ------------------------------------------------------------


class CompilationSession:
    """Drives pass lists over kernels, with caching and instrumentation.

    One session is shared by all compilations of a pipeline: its
    :class:`PassContext` accumulates metrics across kernels and variants,
    and its :class:`~repro.pipeline.cache.ScheduleCache` (when present)
    short-circuits the cacheable prefix for content-equal kernels.
    """

    def __init__(self, options: Optional[SchedulerOptions] = None,
                 weights: Optional[CostWeights] = None,
                 max_threads: int = 256,
                 cache=None,
                 context: Optional[PassContext] = None,
                 trace: bool = False):
        self.options = options or SchedulerOptions()
        self.weights = weights if weights is not None else CostWeights()
        self.max_threads = max_threads
        self.cache = cache
        self.context = context or PassContext(trace=trace)

    def run(self, kernel: Kernel, passes: Sequence[Pass],
            variant: str = "custom") -> PassState:
        """Run ``passes`` over ``kernel``; returns the final state.

        The session's :class:`~repro.obs.Obs` bundle is installed as the
        ambient handle for the duration, so deep instrumentation (solver
        pivots, scheduler spans) lands in this context."""
        state = PassState(kernel=kernel, variant=variant)
        influence = any(isinstance(p, InfluenceTreePass) for p in passes)
        with use_obs(self.context.obs), \
                self.context.obs.span("compile", kernel=kernel.name,
                                      variant=variant):
            # Fault-injection site: sits BEFORE the cache lookup so an
            # injected failure fires even when the schedule-producing
            # prefix would be served from cache (the `infl` variant
            # usually hits the entry stored by `novec`).
            action = fault_action("compile", kernel=kernel.name,
                                  variant=variant, influence=influence)
            if action is not None:
                raise_fault(action, "compile", kernel=kernel.name,
                            variant=variant, influence=influence)
            key = None
            if self.cache is not None \
                    and any(getattr(p, "cacheable", False) for p in passes):
                key = self.cache.key_for(kernel, influence=influence,
                                         options=self.options,
                                         weights=self.weights)
                entry = self.cache.lookup(key)
                if entry is not None:
                    state.relations = entry.relations
                    state.schedule = entry.schedule
                    state.scheduler_stats = entry.stats
                    state.from_cache = True
                    self.context.count("cache.hits")
                    self.context.record("cache-hit", kernel=kernel.name,
                                        variant=variant)
                else:
                    self.context.count("cache.misses")
            for p in passes:
                if state.from_cache and p.cacheable:
                    continue
                with self.context.timed(p.name, kernel=kernel.name,
                                        variant=variant):
                    p.run(state, self)
            if key is not None and not state.from_cache:
                self.cache.store(key, relations=state.relations,
                                 schedule=state.schedule,
                                 stats=state.scheduler_stats)
        return state
