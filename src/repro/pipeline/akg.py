"""The AKG-like compilation pipeline and its four evaluation variants.

:class:`AkgPipeline` is a thin driver: each variant maps to a clustering
decision (how statements split into kernel launches) plus a pass list from
:func:`~repro.pipeline.passes.variant_passes`; the actual work happens in
a shared :class:`~repro.pipeline.passes.CompilationSession`, which carries
the per-pass instrumentation and the content-keyed schedule cache.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Optional

from repro.codegen.cuda import MappedKernel
from repro.codegen.ast import Loop, walk
from repro.errors import ReproError
from repro.gpu.arch import GpuArch, V100
from repro.gpu.profile_cache import (
    ProfileCache,
    get_profile_cache,
    use_profile_cache,
)
from repro.gpu.simulator import KernelProfile, simulate_kernel
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.obs import logger, use_obs
from repro.pipeline.cache import ScheduleCache
from repro.pipeline.passes import (
    CompilationSession,
    PassContext,
    variant_passes,
)
from repro.schedule.scheduler import SchedulerOptions, SchedulerStats
from repro.schedule.serialize import schedule_content_hash
from repro.solver.dedup import SolveCache, get_solve_cache, use_solve_cache
from repro.solver.warmstart import WarmStartPool, get_warm_pool, use_warm_pool

VARIANTS = ("isl", "tvm", "novec", "infl")

# Graceful-degradation rungs, best first: full-quality variant, the same
# clustering without influence constraints, then the plain isl-style
# baseline compile.  (The `isl` variant has nothing to degrade to.)
DEGRADATION_LEVELS = ("none", "no-influence", "isl-baseline")


@dataclass
class CompiledOperator:
    """One fused operator compiled under one variant."""

    kernel: Kernel
    variant: str
    launches: list[MappedKernel]
    scheduler_stats: list[SchedulerStats] = field(default_factory=list)
    degradation: str = "none"  # one of DEGRADATION_LEVELS
    # Content hash of each launch's schedule (parallel to ``launches``);
    # the run store diffs these across runs to detect schedule changes.
    schedule_hashes: list[str] = field(default_factory=list)

    @property
    def schedule_hash(self) -> str:
        """A single hash covering all launches of this operator."""
        if not self.schedule_hashes:
            return ""
        if len(self.schedule_hashes) == 1:
            return self.schedule_hashes[0]
        import hashlib
        joined = ",".join(self.schedule_hashes)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    @property
    def vectorized(self) -> bool:
        return any(isinstance(node, Loop) and node.vector
                   for launch in self.launches
                   for node in walk(launch.ast))

    def signature(self) -> str:
        """A stable textual signature of the compiled code (used to decide
        whether influence actually modified the result vs the baseline).

        Kernel names are normalized away so the per-cluster ``_k0`` suffixes
        of the distributed baseline do not create spurious differences."""
        parts = []
        for launch in self.launches:
            text = launch.emit_cuda().replace(launch.kernel.name, "<kernel>")
            parts.append(text)
        return "\n===\n".join(parts)


@dataclass
class OperatorTiming:
    """Measured execution of one compiled operator."""

    compiled: CompiledOperator
    profiles: list[KernelProfile]

    @property
    def time(self) -> float:
        return sum(p.time for p in self.profiles)

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.profiles)


def _state_hashes(states) -> list[str]:
    """Schedule content hashes for a sequence of pipeline states."""
    return [schedule_content_hash(s.schedule) if s.schedule is not None else ""
            for s in states]


def _domain_signature(statement: Statement) -> tuple:
    """Iteration-space signature used for isl-style clustering."""
    return (statement.depth, statement.domain.canonical()[1])


def _adjacent_clusters(kernel: Kernel) -> list[list[Statement]]:
    """Group textually adjacent statements with identical iteration spaces
    (the fusion granularity we observed from isl-0.22 inside AKG: identical
    spaces fuse into one kernel, space changes split the schedule as in
    Fig. 2(b))."""
    clusters: list[list[Statement]] = []
    current: list[Statement] = []
    current_sig = None
    for statement in kernel.statements:
        sig = _domain_signature(statement)
        if current and sig == current_sig:
            current.append(statement)
        else:
            if current:
                clusters.append(current)
            current = [statement]
            current_sig = sig
    if current:
        clusters.append(current)
    return clusters


def _sub_kernel(kernel: Kernel, statements: list[Statement],
                suffix: str) -> Kernel:
    """A kernel view over a subset of statements (tensors shared)."""
    sub = Kernel(f"{kernel.name}{suffix}", params=dict(kernel.params))
    sub.tensors = dict(kernel.tensors)
    sub.statements = list(statements)
    return sub


class AkgPipeline:
    """Compile and measure fused operators under the four variants."""

    def __init__(self, arch: GpuArch = V100, max_threads: int = 256,
                 sample_blocks: int = 8,
                 weights: Optional[CostWeights] = None,
                 scheduler_options: Optional[SchedulerOptions] = None,
                 cache: Optional[ScheduleCache] = None,
                 enable_cache: bool = True,
                 trace: bool = False,
                 sim: str = ""):
        self.arch = arch
        self.max_threads = max_threads
        self.sample_blocks = sample_blocks
        self.weights = weights = \
            weights if weights is not None else CostWeights()
        self.scheduler_options = scheduler_options or SchedulerOptions()
        # Simulator backend name: an explicit argument wins, else the
        # scheduler options' choice, else REPRO_SIM / registry default.
        self.sim = sim or self.scheduler_options.sim
        self.cache = cache if cache is not None \
            else (ScheduleCache() if enable_cache else None)
        self.session = CompilationSession(options=self.scheduler_options,
                                          weights=weights,
                                          max_threads=max_threads,
                                          cache=self.cache,
                                          trace=trace)

    @property
    def context(self) -> PassContext:
        """The session's accumulated per-pass metrics."""
        return self.session.context

    # -- compilation --------------------------------------------------------

    def _attempts(self, kernel: Kernel, variant: str) -> list[tuple]:
        """The degradation ladder for ``variant``, best rung first.

        Each entry is ``(level, tag, clusters, influence, enable_vec)``:
        ``tag`` is the variant label the compilation session (and the
        ``compile`` fault-injection site) sees for that rung.  The
        ``isl-baseline`` rung is tagged ``isl`` so it shares schedule
        cache entries — and compiled output — with the actual ``isl``
        baseline compile of the same operator.
        """
        isl_rung = ("isl-baseline", "isl", _adjacent_clusters(kernel),
                    False, False)
        if variant == "isl":
            return [("none", "isl", _adjacent_clusters(kernel), False, False)]
        if variant == "tvm":
            per_stmt = [[s] for s in kernel.statements]
            return [("none", "tvm", per_stmt, True, False),
                    ("no-influence", "tvm", per_stmt, False, False),
                    isl_rung]
        # novec / infl: whole-kernel influenced compilation.
        enable_vec = variant == "infl"
        return [("none", variant, None, True, enable_vec),
                ("no-influence", variant, None, False, enable_vec),
                isl_rung]

    def _compile_once(self, kernel: Kernel, variant: str, tag: str,
                      clusters, influence: bool,
                      enable_vec: bool) -> CompiledOperator:
        passes = variant_passes(influence=influence, enable_vec=enable_vec)
        if clusters is None:
            state = self.session.run(kernel, passes, variant=tag)
            return CompiledOperator(kernel=kernel, variant=variant,
                                    launches=[state.mapped],
                                    scheduler_stats=[state.scheduler_stats],
                                    schedule_hashes=_state_hashes([state]))
        states = []
        for index, cluster in enumerate(clusters):
            sub = _sub_kernel(kernel, cluster, f"_k{index}")
            states.append(self.session.run(sub, passes, variant=tag))
        return CompiledOperator(kernel=kernel, variant=variant,
                                launches=[s.mapped for s in states],
                                scheduler_stats=[s.scheduler_stats
                                                 for s in states],
                                schedule_hashes=_state_hashes(states))

    def compile(self, kernel: Kernel, variant: str) -> CompiledOperator:
        """Compile under ``variant``, degrading gracefully on failure.

        Typed failures (:class:`~repro.errors.ReproError`: solver
        timeouts, scheduling dead ends, codegen limits) descend the
        ladder from :meth:`_attempts`; the result records the rung it was
        produced at in ``CompiledOperator.degradation``.  Only when every
        rung fails does the last error propagate to the caller.
        """
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        attempts = self._attempts(kernel, variant)
        # One solve cache and warm-start pool per compile: degradation rungs
        # re-pose many of the same dimension ILPs (and the tvm variant's
        # per-statement clusters overlap heavily), so identical systems
        # replay and near-identical ones share incumbent bounds.  The scope
        # is at most per-operator, never per-session: each operator's
        # evaluation happens wholly inside one process in both serial and
        # parallel evaluation, keeping their metric streams identical.  When
        # a wider per-operator scope is already installed (the evaluation
        # runner wraps all four variants), reuse it instead of shadowing it.
        with ExitStack() as scopes:
            if get_solve_cache() is None:
                scopes.enter_context(use_solve_cache(SolveCache()))
            if get_warm_pool() is None:
                scopes.enter_context(use_warm_pool(WarmStartPool()))
            return self._compile_attempts(kernel, variant, attempts)

    def _compile_attempts(self, kernel: Kernel, variant: str,
                          attempts) -> CompiledOperator:
        last_error: Optional[ReproError] = None
        for level, tag, clusters, influence, enable_vec in attempts:
            try:
                compiled = self._compile_once(kernel, variant, tag, clusters,
                                              influence, enable_vec)
            except ReproError as exc:
                last_error = exc
                context = self.session.context
                context.count("resilience.fallback")
                context.record("resilience.fallback", kernel=kernel.name,
                               variant=variant, failed_level=level,
                               error=f"{type(exc).__name__}: {exc}")
                logger.warning("%s/%s: %s at degradation level %r; "
                               "descending the ladder",
                               kernel.name, variant,
                               type(exc).__name__, level)
                continue
            compiled.degradation = level
            if level != "none":
                self.session.context.count("resilience.degraded")
            return compiled
        assert last_error is not None
        raise last_error

    # -- measurement -----------------------------------------------------------

    def measure(self, compiled: CompiledOperator) -> OperatorTiming:
        with use_obs(self.session.context.obs):
            profiles = [simulate_kernel(launch, arch=self.arch,
                                        sample_blocks=self.sample_blocks,
                                        sim=self.sim)
                        for launch in compiled.launches]
        return OperatorTiming(compiled=compiled, profiles=profiles)

    def compile_and_measure(self, kernel: Kernel,
                            variant: str) -> OperatorTiming:
        # Content-identical launches dedup within this call.  Per-call
        # scope, mirroring `compile`'s solve cache: never wider than one
        # operator, so serial and parallel evaluations keep identical
        # metric streams.  A wider ambient cache (the evaluation runner's
        # per-operator scope, where novec/infl coincide whenever
        # vectorization does not fire) is reused instead of shadowed.
        with ExitStack() as scopes:
            if get_profile_cache() is None:
                scopes.enter_context(use_profile_cache(ProfileCache()))
            return self.measure(self.compile(kernel, variant))
