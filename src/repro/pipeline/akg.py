"""The AKG-like compilation pipeline and its four evaluation variants."""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Optional

from repro.codegen.cuda import MappedKernel, map_to_gpu
from repro.codegen.generate import generate_ast
from repro.codegen.vectorize import vectorize
from repro.codegen.ast import Loop, walk
from repro.deps.analysis import compute_dependences
from repro.gpu.arch import GpuArch, V100
from repro.gpu.simulator import KernelProfile, simulate_kernel
from repro.influence.builder import build_influence_tree
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.ir.statement import Statement
from repro.schedule.scheduler import (
    InfluencedScheduler,
    SchedulerOptions,
    SchedulerStats,
)

VARIANTS = ("isl", "tvm", "novec", "infl")


@dataclass
class CompiledOperator:
    """One fused operator compiled under one variant."""

    kernel: Kernel
    variant: str
    launches: list[MappedKernel]
    scheduler_stats: list[SchedulerStats] = field(default_factory=list)

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    @property
    def vectorized(self) -> bool:
        return any(isinstance(node, Loop) and node.vector
                   for launch in self.launches
                   for node in walk(launch.ast))

    def signature(self) -> str:
        """A stable textual signature of the compiled code (used to decide
        whether influence actually modified the result vs the baseline).

        Kernel names are normalized away so the per-cluster ``_k0`` suffixes
        of the distributed baseline do not create spurious differences."""
        parts = []
        for launch in self.launches:
            text = launch.emit_cuda().replace(launch.kernel.name, "<kernel>")
            parts.append(text)
        return "\n===\n".join(parts)


@dataclass
class OperatorTiming:
    """Measured execution of one compiled operator."""

    compiled: CompiledOperator
    profiles: list[KernelProfile]

    @property
    def time(self) -> float:
        return sum(p.time for p in self.profiles)

    @property
    def dram_bytes(self) -> float:
        return sum(p.dram_bytes for p in self.profiles)


def _domain_signature(statement: Statement) -> tuple:
    """Iteration-space signature used for isl-style clustering."""
    return (statement.depth, statement.domain.canonical()[1])


def _adjacent_clusters(kernel: Kernel) -> list[list[Statement]]:
    """Group textually adjacent statements with identical iteration spaces
    (the fusion granularity we observed from isl-0.22 inside AKG: identical
    spaces fuse into one kernel, space changes split the schedule as in
    Fig. 2(b))."""
    clusters: list[list[Statement]] = []
    current: list[Statement] = []
    current_sig = None
    for statement in kernel.statements:
        sig = _domain_signature(statement)
        if current and sig == current_sig:
            current.append(statement)
        else:
            if current:
                clusters.append(current)
            current = [statement]
            current_sig = sig
    if current:
        clusters.append(current)
    return clusters


def _sub_kernel(kernel: Kernel, statements: list[Statement],
                suffix: str) -> Kernel:
    """A kernel view over a subset of statements (tensors shared)."""
    sub = Kernel(f"{kernel.name}{suffix}", params=dict(kernel.params))
    sub.tensors = dict(kernel.tensors)
    sub.statements = list(statements)
    return sub


class AkgPipeline:
    """Compile and measure fused operators under the four variants."""

    def __init__(self, arch: GpuArch = V100, max_threads: int = 256,
                 sample_blocks: int = 8,
                 weights: CostWeights = CostWeights(),
                 scheduler_options: Optional[SchedulerOptions] = None):
        self.arch = arch
        self.max_threads = max_threads
        self.sample_blocks = sample_blocks
        self.weights = weights
        self.scheduler_options = scheduler_options or SchedulerOptions()
        # novec/infl share scheduling; weak keys so entries die with their
        # kernels (an id()-keyed dict would collide after GC reuses ids).
        self._influenced_cache: "weakref.WeakKeyDictionary[Kernel, tuple]" = \
            weakref.WeakKeyDictionary()

    # -- compilation --------------------------------------------------------

    def compile(self, kernel: Kernel, variant: str) -> CompiledOperator:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        if variant == "isl":
            return self._compile_clustered(kernel, _adjacent_clusters(kernel),
                                           variant="isl", influence=False,
                                           enable_vec=False)
        if variant == "tvm":
            clusters = [[s] for s in kernel.statements]
            return self._compile_clustered(kernel, clusters, variant="tvm",
                                           influence=True, enable_vec=False)
        return self._compile_influenced(kernel, enable_vec=(variant == "infl"),
                                        variant=variant)

    def _compile_clustered(self, kernel: Kernel,
                           clusters: list[list[Statement]], variant: str,
                           influence: bool,
                           enable_vec: bool) -> CompiledOperator:
        launches = []
        stats = []
        for index, cluster in enumerate(clusters):
            sub = _sub_kernel(kernel, cluster, f"_k{index}")
            relations = compute_dependences(sub)
            scheduler = InfluencedScheduler(sub, relations=relations,
                                            options=self.scheduler_options)
            tree = build_influence_tree(sub, weights=self.weights) \
                if influence else None
            schedule = scheduler.schedule(tree)
            stats.append(scheduler.stats)
            ast = generate_ast(sub, schedule)
            ast = vectorize(ast, sub, schedule, relations, enable=enable_vec)
            launches.append(map_to_gpu(sub, ast, schedule,
                                       max_threads=self.max_threads))
        return CompiledOperator(kernel=kernel, variant=variant,
                                launches=launches, scheduler_stats=stats)

    def _compile_influenced(self, kernel: Kernel, enable_vec: bool,
                            variant: str) -> CompiledOperator:
        # novec and infl share scheduling; cache the schedule per kernel.
        cached = self._influenced_cache.get(kernel)
        if cached is None:
            relations = compute_dependences(kernel)
            scheduler = InfluencedScheduler(kernel, relations=relations,
                                            options=self.scheduler_options)
            tree = build_influence_tree(kernel, weights=self.weights)
            schedule = scheduler.schedule(tree)
            cached = (relations, schedule, scheduler.stats)
            self._influenced_cache[kernel] = cached
        relations, schedule, stats = cached
        ast = generate_ast(kernel, schedule)
        ast = vectorize(ast, kernel, schedule, relations, enable=enable_vec)
        mapped = map_to_gpu(kernel, ast, schedule,
                            max_threads=self.max_threads)
        return CompiledOperator(kernel=kernel, variant=variant,
                                launches=[mapped], scheduler_stats=[stats])

    # -- measurement -----------------------------------------------------------

    def measure(self, compiled: CompiledOperator) -> OperatorTiming:
        profiles = [simulate_kernel(launch, arch=self.arch,
                                    sample_blocks=self.sample_blocks)
                    for launch in compiled.launches]
        return OperatorTiming(compiled=compiled, profiles=profiles)

    def compile_and_measure(self, kernel: Kernel,
                            variant: str) -> OperatorTiming:
        return self.measure(self.compile(kernel, variant))
