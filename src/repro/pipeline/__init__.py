"""End-to-end compilation pipelines (the AKG stand-in of Fig. 1(b)).

:class:`~repro.pipeline.akg.AkgPipeline` compiles a fused operator under
the paper's four evaluation configurations:

* ``isl``   — the baseline: isl-0.22-style scheduling as observed through
  AKG (per-cluster scheduling with textual-order tie-breaks, no influence,
  no vector types; multi-space operators distribute into several kernel
  launches, reproducing Fig. 2(b));
* ``tvm``   — the TVM manual-template baseline: per-statement kernels, each
  with a stride-optimal manual loop order, no cross-operator fusion, no
  vector types;
* ``novec`` — influenced scheduling with the backend vectorization pass
  disabled;
* ``infl``  — the full approach: influence-tree scheduling + explicit
  load/store vector types.
"""

from repro.pipeline.akg import AkgPipeline, CompiledOperator, OperatorTiming, VARIANTS
from repro.pipeline.cache import ScheduleCache, kernel_signature
from repro.pipeline.passes import (
    CompilationSession,
    PassContext,
    format_pass_summary,
    merge_contexts,
    merge_metric_dicts,
    variant_passes,
)

__all__ = [
    "AkgPipeline",
    "CompiledOperator",
    "OperatorTiming",
    "VARIANTS",
    "ScheduleCache",
    "kernel_signature",
    "CompilationSession",
    "PassContext",
    "format_pass_summary",
    "merge_contexts",
    "merge_metric_dicts",
    "variant_passes",
]
