"""Tile-size auto-tuning on the GPU model.

The paper's evaluation notes "Tile sizes are selected by respective tool
auto-tuners"; this module provides that stage for our pipeline: it applies
band tiling between code generation and mapping, measures each candidate
on the execution model, and keeps the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.gpu.arch import GpuArch, V100
from repro.gpu.profile_cache import ProfileCache, use_profile_cache
from repro.gpu.simulator import simulate_kernel
from repro.ir.kernel import Kernel
from repro.pipeline.cache import ScheduleCache
from repro.pipeline.passes import (
    CompilationSession,
    GpuMappingPass,
    TilingPass,
    variant_passes,
)

DEFAULT_CANDIDATES: tuple[tuple[int, ...], ...] = (
    (),            # untiled baseline
    (8, 8), (16, 16), (32, 32), (64, 64),
    (8, 32), (32, 8), (16, 64), (64, 16),
)


@dataclass
class TileCandidateResult:
    """One measured tiling candidate."""

    tile_sizes: tuple[int, ...]
    tiled_loops: int
    time: float
    dram_bytes: float


@dataclass
class AutotuneResult:
    """Outcome of a tile-size search."""

    kernel_name: str
    best: TileCandidateResult
    candidates: list[TileCandidateResult] = field(default_factory=list)

    def speedup_over_untiled(self) -> float:
        untiled = next((c for c in self.candidates if not c.tiled_loops),
                       None)
        if untiled is None:
            return 1.0
        return untiled.time / self.best.time


def compile_tiled(kernel: Kernel, tile_sizes: Sequence[int],
                  influenced: bool = False, enable_vec: bool = False,
                  max_threads: int = 256,
                  session: Optional[CompilationSession] = None):
    """Compile one kernel with band tiling applied before mapping.

    A :class:`TilingPass` is spliced into the variant pass list just before
    GPU mapping.  Pass a shared ``session`` (as the autotuner does) so the
    content-keyed cache reuses one schedule across all tiling candidates —
    only codegen/tile/vectorize/map rerun per candidate.

    Returns ``(mapped_kernel, tiled_loop_count)``.
    """
    if session is None:
        session = CompilationSession(max_threads=max_threads,
                                     cache=ScheduleCache())
    passes = list(variant_passes(influence=influenced, enable_vec=enable_vec))
    mapping_index = next(i for i, p in enumerate(passes)
                         if isinstance(p, GpuMappingPass))
    passes.insert(mapping_index, TilingPass(tile_sizes))
    state = session.run(kernel, tuple(passes), variant="tiled")
    return state.mapped, state.tiled_loops


def autotune_tile_sizes(kernel: Kernel,
                        candidates: Sequence[Sequence[int]] = DEFAULT_CANDIDATES,
                        influenced: bool = False,
                        enable_vec: bool = False,
                        arch: GpuArch = V100,
                        sample_blocks: int = 8,
                        max_threads: int = 256,
                        sim: str = "") -> AutotuneResult:
    """Measure every tiling candidate and return the fastest."""
    session = CompilationSession(max_threads=max_threads,
                                 cache=ScheduleCache())
    results: list[TileCandidateResult] = []
    # Candidates that lower to content-identical mapped kernels (tile
    # sizes larger than the extents collapse to the same mapping) dedup
    # their simulation through one search-scoped profile cache.
    with use_profile_cache(ProfileCache()):
        for sizes in candidates:
            mapped, tiled = compile_tiled(kernel, sizes,
                                          influenced=influenced,
                                          enable_vec=enable_vec,
                                          max_threads=max_threads,
                                          session=session)
            profile = simulate_kernel(mapped, arch=arch,
                                      sample_blocks=sample_blocks, sim=sim)
            results.append(TileCandidateResult(
                tile_sizes=tuple(sizes), tiled_loops=tiled,
                time=profile.time, dram_bytes=profile.dram_bytes))
    best = min(results, key=lambda r: r.time)
    return AutotuneResult(kernel_name=kernel.name, best=best,
                          candidates=results)
