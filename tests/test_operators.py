"""Tests for the fused-operator template library."""

import pytest

from repro.codegen.interp import check_semantics
from repro.influence import build_scenarios
from repro.ir.types import FLOAT16
from repro.pipeline import AkgPipeline, VARIANTS
from repro.workloads import operators


@pytest.fixture(scope="module")
def pipeline():
    return AkgPipeline(sample_blocks=2)


SMALL_OPS = {
    "elementwise": lambda: operators.elementwise_chain_op(
        "t_ew", rows=8, cols=4, length=2),
    "broadcast": lambda: operators.broadcast_bias_op("t_bias", rows=8, cols=4),
    "reduce_producer": lambda: operators.reduce_producer_op(
        "t_red", rows=8, red=4),
    "layout_conversion": lambda: operators.layout_conversion_op(
        "t_conv", 2, 4, 4, 4),
    "softmax_like": lambda: operators.softmax_like_op("t_sm", rows=8, cols=4),
    "strided_pool": lambda: operators.strided_pool_op("t_pool", rows=8,
                                                      cols=8),
    "transpose2d": lambda: operators.transpose2d_op("t_tr", rows=4, cols=4),
    "running_example": lambda: operators.running_example_op("t_run", outer=8,
                                                            inner=4),
}


class TestSemanticsAllClasses:
    """Every operator class round-trips through every variant."""

    @pytest.mark.parametrize("op_class", list(SMALL_OPS))
    def test_all_variants(self, pipeline, op_class):
        kernel = SMALL_OPS[op_class]()
        for variant in VARIANTS:
            compiled = pipeline.compile(kernel, variant)
            for launch in compiled.launches:
                problems = check_semantics(launch.kernel, launch.ast)
                assert problems == [], f"{op_class}/{variant}: {problems}"


class TestSoftmaxLike:
    def test_baseline_distributes(self, pipeline):
        kernel = operators.softmax_like_op("sm", rows=64, cols=8)
        assert pipeline.compile(kernel, "isl").n_launches == 2
        assert pipeline.compile(kernel, "infl").n_launches == 1

    def test_influenced_wins(self):
        pipe = AkgPipeline(sample_blocks=4)
        kernel = operators.softmax_like_op("sm_big", rows=8192, cols=32)
        isl = pipe.compile_and_measure(kernel, "isl").time
        infl = pipe.compile_and_measure(kernel, "infl").time
        assert infl <= isl * 1.05  # at worst break-even, usually faster


class TestStridedPool:
    def test_stride_two_not_vectorizable(self):
        kernel = operators.strided_pool_op("pool", rows=64, cols=64)
        scenarios = build_scenarios(kernel)["Pool"]
        # The innermost candidates stride by 2 on In: never a clean
        # vector store (Out is stride 1 along j but In gathers).
        pool = kernel.statement("Pool")
        in_access = [a for a in pool.reads if a.tensor.name == "In"][0]
        assert in_access.stride_along("j") == 2

    def test_odd_shape_rejected(self):
        with pytest.raises(ValueError):
            operators.strided_pool_op("bad", rows=7, cols=8)

    def test_address_model_strided(self, pipeline):
        kernel = operators.strided_pool_op("pool", rows=16, cols=16)
        timing = pipeline.compile_and_measure(kernel, "isl")
        # In (16x16) read fully + Out (8x8) written: at least that traffic.
        assert timing.dram_bytes >= (16 * 16 + 8 * 8) * 4


class TestFloat16Conversion:
    def test_f16_vector_width(self):
        kernel = operators.layout_conversion_op("c16", 2, 8, 4, 4,
                                                dtype=FLOAT16)
        scenarios = build_scenarios(kernel)["Conv"]
        primary = scenarios[0]
        assert primary.vector_width == 4  # half4 = 64 bits
