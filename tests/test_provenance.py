"""Tests for the scheduler decision journal and `repro explain`."""

import pytest

from repro.cli import main
from repro.influence.builder import build_influence_tree
from repro.influence.scenarios import build_statement_scenarios
from repro.ir.kparser import parse_kernel
from repro.obs.provenance import (
    NULL_JOURNAL,
    ProvenanceJournal,
    format_decision_path,
    get_journal,
    use_journal,
)
from repro.pipeline.akg import AkgPipeline
from repro.schedule.scheduler import InfluencedScheduler

KERNEL_TEXT = """
kernel prov_demo (M=64, N=16)
tensor A[M][N]
tensor B[M][N]
S[i: 0..M, j: 0..N]: B[i][j] = f(A[i][j])
"""

FUSED_TEXT = """
kernel prov_fused (M=32, N=8)
tensor A[M][N]
tensor T[M][N]
tensor B[M][N]
S0[i: 0..M, j: 0..N]: T[i][j] = f(A[i][j])
S1[i: 0..M, j: 0..N]: B[i][j] = g(T[i][j])
"""


@pytest.fixture
def kernel():
    return parse_kernel(KERNEL_TEXT)


class TestJournalHandle:
    def test_default_journal_is_disabled(self):
        assert get_journal() is NULL_JOURNAL
        assert not get_journal().enabled

    def test_disabled_journal_records_nothing(self):
        journal = ProvenanceJournal(enabled=False)
        journal.note("scenario", statement="S")
        assert len(journal) == 0

    def test_use_journal_installs_and_restores(self):
        with use_journal() as journal:
            assert get_journal() is journal
            assert journal.enabled
        assert get_journal() is NULL_JOURNAL

    def test_as_dict_copies_events(self):
        journal = ProvenanceJournal()
        journal.scenario("S", ["i"], 1.5, vector_width=4, rank=0, kept=True)
        payload = journal.as_dict()
        assert payload["events"][0]["kind"] == "scenario"
        payload["events"][0]["kind"] = "mutated"
        assert journal.events[0]["kind"] == "scenario"


class TestScenarioJournal:
    def test_kept_and_pruned_scenarios_recorded(self, kernel):
        statement = kernel.statements[0]
        with use_journal() as journal:
            kept = build_statement_scenarios(statement, kernel.params,
                                             max_alternatives=1)
        events = [e for e in journal.events if e["kind"] == "scenario"]
        assert len(kept) == 1
        kept_events = [e for e in events if e["kept"]]
        pruned_events = [e for e in events if not e["kept"]]
        assert len(kept_events) == 1
        assert len(pruned_events) == 1  # the other innermost candidate
        assert kept_events[0]["dims"] == kept[0].dims
        assert kept_events[0]["score"] == pytest.approx(kept[0].score)

    def test_tree_branch_pruning_recorded(self):
        kernel = parse_kernel(FUSED_TEXT)
        with use_journal() as journal:
            build_influence_tree(kernel, max_branches=1)
        branches = [e for e in journal.events if e["kind"] == "tree-branch"]
        assert sum(1 for e in branches if e["kept"]) == 1
        assert sum(1 for e in branches if not e["kept"]) >= 1


class TestSchedulerJournal:
    def test_dimension_events_carry_injected_constraints(self, kernel):
        scheduler = InfluencedScheduler(kernel)
        tree = build_influence_tree(kernel)
        with use_journal() as journal:
            scheduler.schedule(tree)
        dims = [e for e in journal.events if e["kind"] == "dimension"]
        built = [e for e in dims if e["feasible"]]
        assert built, "no feasible dimension events recorded"
        assert any(e["injected"] for e in built)
        assert all("node" in e for e in built)
        done = [e for e in journal.events if e["kind"] == "schedule-done"]
        assert done and done[-1]["dimensions"] == 2

    def test_plain_schedule_has_no_injections(self, kernel):
        scheduler = InfluencedScheduler(kernel)
        with use_journal() as journal:
            scheduler.schedule(None)
        dims = [e for e in journal.events if e["kind"] == "dimension"]
        assert dims
        assert all(e["injected"] == [] for e in dims)

    def test_disabled_journal_costs_no_events(self, kernel):
        scheduler = InfluencedScheduler(kernel)
        scheduler.schedule(build_influence_tree(kernel))
        assert len(get_journal()) == 0


class TestFormatDecisionPath:
    def test_render_names_constraints_and_costs(self, kernel):
        pipeline = AkgPipeline(enable_cache=False)
        with use_journal() as journal:
            pipeline.compile(kernel, "infl")
        text = format_decision_path(journal.events)
        assert "scenarios considered" in text
        assert "cost=" in text
        assert "inject " in text
        assert "dim 0" in text and "dim 1" in text

    def test_render_backtrack_event(self):
        journal = ProvenanceJournal()
        journal.backtrack("sibling", dim=1)
        assert "FALLBACK sibling" in format_decision_path(journal.events)

    def test_render_pruned_scenarios(self):
        journal = ProvenanceJournal()
        journal.scenario("S", ["i"], 2.0, vector_width=0, rank=3, kept=False)
        assert "PRUNED" in format_decision_path(journal.events)


class TestExplainCli:
    def test_explain_names_constraints_and_scenarios(self, capsys):
        assert main(["explain", "LSTM", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "scenarios considered" in out
        assert "cost=" in out
        assert "inject " in out          # the injected constraint...
        assert "dim 0" in out            # ...named per dimension
        assert "schedule hash" in out

    def test_explain_single_operator(self, capsys):
        assert main(["explain", "lstm", "--limit", "2",
                     "--operator", "lstm_op000_elementwise_vec"]) == 0
        out = capsys.readouterr().out
        assert out.count("=== lstm_op") == 1

    def test_explain_unknown_operator(self, capsys):
        assert main(["explain", "LSTM", "--limit", "1",
                     "--operator", "nope"]) == 2

    def test_explain_unknown_network(self, capsys):
        assert main(["explain", "NopeNet"]) == 2

    def test_explain_from_stored_run(self, capsys):
        assert main(["table2", "--limit", "1", "--networks", "LSTM"]) == 0
        capsys.readouterr()
        assert main(["explain", "LSTM", "--run", "latest"]) == 0
        assert "inject " in capsys.readouterr().out
