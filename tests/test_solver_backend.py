"""Solver backend registry, warm-start reuse and solve deduplication.

The contract under test: whatever reuse the incremental machinery applies
(incumbent bounds from warm-start handles, content-keyed solve replay),
results must be bitwise-identical to cold solves, and the ``simplex-nowarm``
backend must disable all of it.
"""

from fractions import Fraction

import pytest

from repro.ir.examples import matmul, running_example
from repro.pipeline.akg import AkgPipeline
from repro.eval.runner import evaluate_operator
from repro.schedule.scheduler import InfluencedScheduler, SchedulerOptions
from repro.solver.backend import (
    ENV_VAR,
    NoWarmstartSimplexBackend,
    RationalSimplexBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.solver.dedup import SolveCache, get_solve_cache, use_solve_cache
from repro.solver.ilp import solve_ilp
from repro.solver.lp import LPStatus
from repro.solver.problem import Problem, var
from repro.solver.warmstart import (
    WarmStartHandle,
    WarmStartPool,
    get_warm_pool,
    incumbent_bound,
    use_warm_pool,
)


# -- registry resolution ------------------------------------------------------


def test_default_backend_is_simplex(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    backend = resolve_backend()
    assert backend.name == "simplex"
    assert backend.incremental


def test_explicit_name_wins_over_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "simplex-nowarm")
    assert resolve_backend("simplex").name == "simplex"


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "simplex-nowarm")
    backend = resolve_backend()
    assert backend.name == "simplex-nowarm"
    assert not backend.incremental


def test_unknown_backend_raises(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    with pytest.raises(ValueError, match="unknown solver backend"):
        resolve_backend("no-such-solver")


def test_registry_is_open():
    class _Probe(RationalSimplexBackend):
        name = "test-probe"

    register_backend("test-probe", _Probe)
    try:
        assert "test-probe" in available_backends()
        assert resolve_backend("test-probe").name == "test-probe"
        # Instances are cached per name.
        assert resolve_backend("test-probe") is resolve_backend("test-probe")
    finally:
        from repro.solver import backend as backend_module
        backend_module._REGISTRY.pop("test-probe", None)
        backend_module._INSTANCES.pop("test-probe", None)


def test_builtin_backends_registered():
    names = available_backends()
    assert "simplex" in names
    assert "simplex-nowarm" in names


# -- incumbent bound correctness ----------------------------------------------


def _small_ilp() -> Problem:
    """min x + 2y  s.t.  x + y >= 3, 0 <= x,y <= 4  (optimum x=3, y=0)."""
    p = Problem()
    x = p.add_variable("x", lower=0, upper=4)
    y = p.add_variable("y", lower=0, upper=4)
    p.add_constraint(x + y >= 3)
    return p


def test_incumbent_bound_requires_feasible_candidate():
    p = _small_ilp()
    handle = WarmStartHandle()
    handle.offer({"x": Fraction(5), "y": Fraction(0)})  # violates x <= 4
    assert incumbent_bound(p, var("x") + 2 * var("y"), handle) is None
    handle.offer({"x": Fraction(1)})  # does not cover y
    assert incumbent_bound(p, var("x") + 2 * var("y"), handle) is None
    handle.offer({"x": Fraction(2), "y": Fraction(2)})
    assert incumbent_bound(p, var("x") + 2 * var("y"), handle) == 6


def test_warm_solve_with_suboptimal_candidate_matches_cold():
    # Pin the incremental backend: under a forced REPRO_SOLVER=simplex-nowarm
    # (the CI parity matrix) the default would silently skip the warm path.
    backend = resolve_backend("simplex")
    objective = var("x") + 2 * var("y")
    cold = _small_ilp().solve(objective, backend=backend)
    handle = WarmStartHandle()
    handle.offer({"x": Fraction(2), "y": Fraction(2)})  # feasible, value 6
    warm = _small_ilp().solve(objective, warm=handle, backend=backend)
    assert warm == cold == {"x": Fraction(3), "y": Fraction(0)}


def test_warm_solve_offered_the_optimum_itself_matches_cold():
    # The strict (>) prune means a candidate equal to the optimum must not
    # displace the point the cold depth-first order finds first.
    backend = resolve_backend("simplex")
    objective = var("x") + 2 * var("y")
    cold = _small_ilp().solve(objective, backend=backend)
    handle = WarmStartHandle()
    handle.offer(cold)
    warm = _small_ilp().solve(objective, warm=handle, backend=backend)
    assert warm == cold


def test_incumbent_bound_prunes_nodes():
    # With a bound equal to the optimum, branch and bound may prune
    # strictly-worse subtrees — but the status and point are unchanged.
    p = _small_ilp()
    lp = p.lower_to_lp(var("x") + 2 * var("y"))
    cold = solve_ilp(lp, integer_mask=p.integer_mask())
    bounded = solve_ilp(lp, integer_mask=p.integer_mask(),
                        incumbent_bound=cold.objective)
    assert bounded.status is LPStatus.OPTIMAL
    assert bounded.x == cold.x
    assert bounded.objective == cold.objective


def test_basis_captured_after_solve():
    p = _small_ilp()
    assert p.last_basis is None
    result = p.solve(var("x") + 2 * var("y"))
    assert result is not None
    assert p.last_basis is not None
    assert all(isinstance(j, int) for j in p.last_basis)


# -- solve deduplication ------------------------------------------------------


def test_dedup_replays_identical_problem():
    backend = resolve_backend("simplex")
    objective = var("x") + 2 * var("y")
    with use_solve_cache(SolveCache()) as cache:
        first = _small_ilp().solve(objective, backend=backend)
        second = _small_ilp().solve(objective, backend=backend)
    assert first == second
    assert cache.hits == 1
    assert cache.misses == 1


def test_dedup_key_is_positional_not_name_based():
    # The same system under renamed variables must hit the cache.
    backend = resolve_backend("simplex")

    def build(a: str, b: str) -> Problem:
        p = Problem()
        p.add_variable(a, lower=0, upper=4)
        p.add_variable(b, lower=0, upper=4)
        p.add_constraint(var(a) + var(b) >= 3)
        return p

    with use_solve_cache(SolveCache()) as cache:
        first = build("x", "y").solve(var("x") + 2 * var("y"),
                                      backend=backend)
        second = build("u", "v").solve(var("u") + 2 * var("v"),
                                       backend=backend)
    assert cache.hits == 1
    assert [first["x"], first["y"]] == [second["u"], second["v"]]


def test_dedup_caches_infeasible_answers():
    backend = resolve_backend("simplex")

    def build() -> Problem:
        p = Problem()
        x = p.add_variable("x", lower=0, upper=1)
        p.add_constraint(x >= 2)
        return p

    with use_solve_cache(SolveCache()) as cache:
        assert build().solve(var("x"), backend=backend) is None
        assert build().solve(var("x"), backend=backend) is None
    assert cache.hits == 1


def test_nowarm_backend_skips_cache_and_handles():
    backend = resolve_backend("simplex-nowarm")
    objective = var("x") + 2 * var("y")
    handle = WarmStartHandle()
    handle.offer({"x": Fraction(3), "y": Fraction(0)})
    with use_solve_cache(SolveCache()) as cache:
        first = _small_ilp().solve(objective, warm=handle, backend=backend)
        second = _small_ilp().solve(objective, warm=handle, backend=backend)
    assert first == second == {"x": Fraction(3), "y": Fraction(0)}
    assert cache.hits == 0 and cache.misses == 0


def test_ambient_scopes_nest_and_restore():
    assert get_solve_cache() is None
    assert get_warm_pool() is None
    with use_solve_cache(SolveCache()) as outer:
        with use_solve_cache(SolveCache()) as inner:
            assert get_solve_cache() is inner
        assert get_solve_cache() is outer
    with use_warm_pool(WarmStartPool()) as pool:
        assert get_warm_pool() is pool
        assert pool.peek(0) is None
        assert pool.handle(0) is pool.handle(0)
        assert pool.peek(0) is not None
    assert get_solve_cache() is None
    assert get_warm_pool() is None


# -- scheduler integration ----------------------------------------------------


def _schedule_signature(schedule) -> tuple:
    rows = {name: [(r.iter_coeffs, r.param_coeffs, r.const)
                   for r in built]
            for name, built in schedule.rows.items()}
    return (rows, [(info.band, info.coincident) for info in schedule.dims])


@pytest.mark.parametrize("maker", [matmul, running_example])
def test_schedule_identical_across_backends(maker):
    kernel = maker(16)
    plain = InfluencedScheduler(
        kernel, options=SchedulerOptions(solver="simplex")).schedule()
    nowarm = InfluencedScheduler(
        kernel, options=SchedulerOptions(solver="simplex-nowarm")).schedule()
    assert _schedule_signature(plain) == _schedule_signature(nowarm)


def test_operator_evaluation_has_warmstart_hits(monkeypatch):
    # The per-operator reuse scope shares incumbent candidates across the
    # four variants; a Table II style operator must register actual hits.
    monkeypatch.delenv(ENV_VAR, raising=False)
    kernel = running_example(16)
    pipeline = AkgPipeline(sample_blocks=2)
    result = evaluate_operator(pipeline, kernel.name, "test", kernel)
    assert result.status == "ok"
    counters = pipeline.context.counters
    assert counters.get("solver.warmstart.hits", 0) > 0


def test_operator_evaluation_identical_under_nowarm(monkeypatch):
    def run() -> dict:
        kernel = running_example(16)
        pipeline = AkgPipeline(sample_blocks=2)
        result = evaluate_operator(pipeline, kernel.name, "test", kernel)
        assert result.status == "ok"
        return result.times

    monkeypatch.delenv(ENV_VAR, raising=False)
    warm_times = run()
    monkeypatch.setenv(ENV_VAR, "simplex-nowarm")
    cold_times = run()
    assert warm_times == cold_times
