"""`run_verify` orchestration and the `repro verify` / `repro fuzz` CLI."""

import json

import pytest

from repro.cli import main
from repro.verify.runner import VerifyConfig, run_verify

# One small network, goldens engine only: the oracle/metamorphic/corpus
# engines have their own suites (family goldens in test_verify_golden.py),
# and this keeps the runner tests fast.
GOLDENS_ONLY = dict(networks=("LSTM",), limit=1, sample_blocks=1,
                    check_oracle=False, check_metamorphic=False,
                    check_corpus=False, check_families=False)
# The family engine alone, for its own round trip.
FAMILIES_ONLY = dict(networks=("LSTM",), limit=1, sample_blocks=1,
                     check_goldens=False, check_oracle=False,
                     check_metamorphic=False, check_corpus=False)


class TestRunVerify:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            run_verify(VerifyConfig(networks=("AlexNet",)))

    def test_missing_golden_is_a_problem(self, tmp_path):
        report = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                         **GOLDENS_ONLY))
        assert not report.ok
        assert any("no golden committed" in p
                   for p in report.problems["golden/LSTM"])
        assert "no golden committed" in report.render()

    def test_update_then_check_round_trip(self, tmp_path):
        blessed = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                          update_goldens=True,
                                          **GOLDENS_ONLY))
        assert blessed.ok
        assert len(blessed.updated_goldens) == 1
        assert "blessed" in blessed.render()
        checked = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                          **GOLDENS_ONLY))
        assert checked.ok, checked.render()

    def test_family_update_then_check_round_trip(self, tmp_path):
        blessed = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                          update_goldens=True,
                                          **FAMILIES_ONLY))
        assert blessed.ok
        # One golden per operator family.
        assert len(blessed.updated_goldens) == 4
        checked = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                          **FAMILIES_ONLY))
        assert checked.ok, checked.render()

    def test_missing_family_golden_is_a_problem(self, tmp_path):
        report = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                         **FAMILIES_ONLY))
        assert not report.ok
        assert any("no golden committed" in p
                   for p in report.problems["family/depthwise_conv"])

    def test_tampered_golden_fails_check(self, tmp_path):
        run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                update_goldens=True, **GOLDENS_ONLY))
        path = tmp_path / "LSTM.json"
        doc = json.loads(path.read_text())
        op = next(iter(doc["operators"].values()))
        op["variants"]["infl"]["n_launches"] += 1
        path.write_text(json.dumps(doc))
        report = run_verify(VerifyConfig(goldens_dir=str(tmp_path),
                                         **GOLDENS_ONLY))
        assert not report.ok
        assert any("n_launches" in p for p in report.problems["golden/LSTM"])


class TestVerifyCli:
    def test_update_then_verify_exit_codes(self, tmp_path, capsys):
        args = ["verify", "--networks", "LSTM", "--limit", "1",
                "--sample-blocks", "1", "--goldens-dir", str(tmp_path),
                "--no-oracle", "--no-metamorphic", "--no-corpus"]
        assert main(args + ["--update-goldens"]) == 0
        assert "blessed" in capsys.readouterr().out
        assert main(args) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_missing_goldens_exit_nonzero(self, tmp_path, capsys):
        code = main(["verify", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "1", "--goldens-dir",
                     str(tmp_path / "empty"), "--no-oracle",
                     "--no-metamorphic", "--no-corpus"])
        assert code == 1
        assert "no golden committed" in capsys.readouterr().out

    def test_unknown_network_exit_two(self, capsys):
        assert main(["verify", "--networks", "AlexNet"]) == 2
        assert "unknown network" in capsys.readouterr().err

    def test_metrics_export(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["verify", "--networks", "LSTM", "--limit", "1",
                     "--sample-blocks", "1", "--no-goldens",
                     "--no-families", "--no-corpus",
                     "--no-metamorphic", "--metrics",
                     str(metrics_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["verify.runs"] == 1
        assert payload["counters"]["verify.oracle.operators"] > 0


class TestFuzzCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        assert main(["fuzz", "--seed", "3", "--cases", "2",
                     "--corpus-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fuzz: seed=3 cases=2 failures=0" in out
        assert not list(tmp_path.iterdir())  # no failures -> no reproducers

    def test_render_is_deterministic_across_invocations(self, capsys):
        assert main(["fuzz", "--seed", "5", "--cases", "2",
                     "--no-corpus"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--seed", "5", "--cases", "2",
                     "--no-corpus"]) == 0
        assert capsys.readouterr().out == first
