"""Tests for influence-node objective injection (Section IV-A-4)."""

import pytest

from repro.influence import InfluenceNode, InfluenceTree, theta_iter
from repro.ir.examples import matmul
from repro.schedule import InfluencedScheduler
from repro.schedule.analysis import verify_schedule
from repro.solver.problem import var


def schedule_with(tree):
    kernel = matmul(8)
    scheduler = InfluencedScheduler(kernel)
    return scheduler, scheduler.schedule(tree)


class TestObjectiveInjection:
    def test_objective_steers_tie(self):
        """matmul's dims i and j tie under the builtin cost; an injected
        objective penalizing i's coefficient makes j come first."""
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(
            label="prefer-j",
            objectives=[var(theta_iter("S", 0, 0))]))  # minimize coeff of i
        scheduler, schedule = schedule_with(tree)
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        assert schedule.rows["S"][0].coefficient_of("j") == 1
        assert schedule.rows["S"][0].coefficient_of("i") == 0

    def test_objective_does_not_override_proximity(self):
        """An injected objective sits below the reuse-distance levels: it
        cannot force the reduction loop k outermost (that would need u=1
        where u=0 alternatives exist)."""
        tree = InfluenceTree()
        # "Maximize" k's coefficient by minimizing its negation.
        tree.root.add_child(InfluenceNode(
            label="want-k",
            objectives=[-1 * var(theta_iter("S", 0, 2))]))
        scheduler, schedule = schedule_with(tree)
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        # k still cannot be the (coincident) outermost dimension.
        assert schedule.rows["S"][0].coefficient_of("k") == 0

    def test_objectives_validated_for_future_dims(self):
        tree = InfluenceTree()
        tree.root.add_child(InfluenceNode(
            objectives=[var(theta_iter("S", 3, 0))]))
        with pytest.raises(ValueError):
            tree.validate()

    def test_combined_with_constraints(self):
        tree = InfluenceTree()
        node = tree.root.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 0, 2)).eq(0)],
            objectives=[var(theta_iter("S", 0, 0))]))
        node.add_child(InfluenceNode(
            constraints=[var(theta_iter("S", 1, 2)).eq(0)]))
        scheduler, schedule = schedule_with(tree)
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        assert schedule.rows["S"][0].coefficient_of("j") == 1
        assert schedule.rows["S"][1].coefficient_of("i") == 1
        assert schedule.rows["S"][2].coefficient_of("k") == 1
