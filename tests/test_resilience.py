"""Resilience: solve budgets, the exception taxonomy, fault injection,
the pipeline degradation ladder, and per-operator failure isolation."""

import time

import pytest

import repro.errors as errors
from repro.errors import (
    BranchLimitExceeded,
    CodegenError,
    ReproError,
    SchedulingError,
    SolverTimeout,
)
from repro.eval.runner import (
    EvaluationConfig,
    evaluate_network,
    evaluate_operator,
)
from repro.faultinject import (
    BUILTIN_PLANS,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    NULL_PLAN,
    fault_action,
    get_faults,
    parse_plan,
    resolve_plan,
    use_faults,
)
from repro.obs.runtime import Obs, use_obs
from repro.pipeline import AkgPipeline
from repro.schedule import InfluencedScheduler, SchedulerOptions
from repro.sets.polyhedron import Polyhedron
from repro.solver.budget import SolveBudget, get_budget, use_budget
from repro.solver.problem import var
from repro.workloads import operators

INFL_ONLY = "compile=timeout@variant=infl&influence=True"


class TestTaxonomy:
    def test_all_subclass_repro_error(self):
        for exc in (SchedulingError, SolverTimeout, BranchLimitExceeded,
                    CodegenError):
            assert issubclass(exc, ReproError)
        assert issubclass(ReproError, Exception)

    def test_historical_locations_reexport(self):
        from repro.codegen.generate import CodegenError as codegen_exc
        from repro.schedule.scheduler import SchedulingError as sched_exc
        from repro.solver.ilp import BranchLimitExceeded as ilp_exc
        assert codegen_exc is errors.CodegenError
        assert sched_exc is errors.SchedulingError
        assert ilp_exc is errors.BranchLimitExceeded


class TestSolveBudget:
    def test_pivot_budget_raises(self):
        active = SolveBudget(max_pivots=3).start()
        for _ in range(3):
            active.charge_pivot()
        with pytest.raises(SolverTimeout, match="pivot budget"):
            active.charge_pivot()

    def test_node_budget_raises(self):
        active = SolveBudget(max_ilp_nodes=2).start()
        active.charge_node()
        active.charge_node()
        with pytest.raises(SolverTimeout, match="node budget"):
            active.charge_node()

    def test_deadline_raises(self):
        active = SolveBudget(deadline_s=0.001).start()
        time.sleep(0.01)
        with pytest.raises(SolverTimeout, match="deadline"):
            active.check_deadline()

    def test_unlimited_budget_never_raises(self):
        active = SolveBudget().start()
        for _ in range(500):
            active.charge_pivot()
            active.charge_node()

    def test_ambient_scope(self):
        assert get_budget() is None
        active = SolveBudget(max_pivots=1).start()
        with use_budget(active):
            assert get_budget() is active
        assert get_budget() is None

    def test_scheduler_raises_on_exhausted_budget(self):
        kernel = operators.reduce_producer_op("budgeted", rows=64, red=8)
        scheduler = InfluencedScheduler(
            kernel, options=SchedulerOptions(budget=SolveBudget(max_pivots=1)))
        with pytest.raises(SolverTimeout):
            scheduler.schedule()

    def test_scheduler_succeeds_within_budget(self):
        kernel = operators.reduce_producer_op("roomy", rows=64, red=8)
        scheduler = InfluencedScheduler(
            kernel,
            options=SchedulerOptions(budget=SolveBudget(deadline_s=60.0)))
        schedule = scheduler.schedule()
        assert schedule.is_complete()


class TestFaultPlanParsing:
    def test_single_rule(self):
        plan = parse_plan("compile=timeout")
        assert plan.rules == (FaultRule(site="compile", action="timeout"),)
        assert plan.seed == 0
        assert bool(plan)

    def test_full_grammar(self):
        plan = parse_plan("seed=42;compile=timeout@variant=infl"
                          "&influence=True:p=0.5;worker=crash")
        assert plan.seed == 42
        assert plan.rules[0] == FaultRule(
            site="compile", action="timeout",
            match=(("variant", "infl"), ("influence", "True")),
            probability=0.5)
        assert plan.rules[1] == FaultRule(site="worker", action="crash")

    @pytest.mark.parametrize("spec", ["nonsense", "=action", "site=",
                                      "compile=timeout@variant"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultPlanError):
            parse_plan(spec)

    def test_resolve_builtin_by_name(self):
        assert resolve_plan("ci-chaos-1") is BUILTIN_PLANS["ci-chaos-1"]

    def test_null_plan_is_falsy(self):
        assert not NULL_PLAN
        assert NULL_PLAN.action_at("compile", variant="infl") is None


class TestFaultDecisions:
    def test_match_clauses_are_exact(self):
        plan = parse_plan("compile=timeout@variant=infl")
        assert plan.action_at("compile", variant="infl") == "timeout"
        assert plan.action_at("compile", variant="isl") is None
        assert plan.action_at("scheduler.dimension", variant="infl") is None

    def test_first_matching_rule_wins(self):
        plan = parse_plan("compile=timeout@variant=infl;"
                          "compile=codegen-error")
        assert plan.action_at("compile", variant="infl") == "timeout"
        assert plan.action_at("compile", variant="tvm") == "codegen-error"

    def test_probabilistic_rules_are_content_keyed(self):
        plan = parse_plan("seed=3;worker=crash:p=0.5")
        verdicts = {name: plan.action_at("worker", kernel=name)
                    for name in (f"op{i}" for i in range(40))}
        # Deterministic: the same attrs always produce the same verdict.
        for name, verdict in verdicts.items():
            assert plan.action_at("worker", kernel=name) == verdict
        fired = sum(1 for v in verdicts.values() if v == "crash")
        assert 0 < fired < len(verdicts)  # p=0.5 fires on some, not all

    def test_seed_changes_decisions(self):
        draw = lambda seed: tuple(
            parse_plan(f"seed={seed};worker=crash:p=0.5").action_at(
                "worker", kernel=f"op{i}")
            for i in range(40))
        assert draw(1) != draw(2)

    def test_use_faults_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "compile=timeout")
        assert get_faults().action_at("compile") == "timeout"
        with use_faults(NULL_PLAN):
            assert not get_faults()
        assert get_faults().action_at("compile") == "timeout"

    def test_bad_env_plan_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "nonsense")
        assert get_faults() is NULL_PLAN

    def test_fault_action_counts_and_traces(self):
        obs = Obs()
        with use_faults(parse_plan("compile=timeout")), use_obs(obs):
            assert fault_action("compile", variant="infl") == "timeout"
            assert fault_action("worker") is None
        assert obs.metrics.counters.get("faults.compile.timeout") == 1


class TestDegradationLadder:
    def test_infl_falls_back_to_no_influence(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("ladder1", rows=64, cols=8)
        with use_faults(parse_plan(INFL_ONLY)):
            compiled = pipe.compile(kernel, "infl")
        assert compiled.degradation == "no-influence"
        assert pipe.context.counters["resilience.fallback"] == 1
        assert pipe.context.counters["resilience.degraded"] == 1

    def test_infl_falls_back_to_isl_baseline(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("ladder2", rows=64, cols=8)
        with use_faults(parse_plan("compile=timeout@variant=infl")):
            compiled = pipe.compile(kernel, "infl")
        assert compiled.degradation == "isl-baseline"
        assert pipe.context.counters["resilience.fallback"] == 2
        # The bottom rung IS the isl baseline compile: identical output.
        assert compiled.signature() == pipe.compile(kernel,
                                                    "isl").signature()

    def test_every_rung_failing_raises_last_error(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("ladder3", rows=64, cols=8)
        with use_faults(parse_plan("compile=codegen-error")):
            with pytest.raises(CodegenError):
                pipe.compile(kernel, "infl")
        assert pipe.context.counters["resilience.fallback"] == 3

    def test_no_faults_means_no_degradation(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("ladder4", rows=64, cols=8)
        compiled = pipe.compile(kernel, "infl")
        assert compiled.degradation == "none"
        assert "resilience.fallback" not in pipe.context.counters


class TestOperatorIsolation:
    def test_degraded_operator_keeps_all_times(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("iso1", rows=64, cols=8)
        with use_faults(parse_plan(INFL_ONLY)):
            result = evaluate_operator(pipe, kernel.name, "elementwise",
                                       kernel)
        assert result.status == "degraded"
        assert result.degradation == {"infl": "no-influence"}
        assert set(result.times) == {"isl", "tvm", "novec", "infl"}

    def test_failed_operator_reports_errors(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("iso2", rows=64, cols=8)
        with use_faults(parse_plan("compile=timeout")):
            result = evaluate_operator(pipe, kernel.name, "elementwise",
                                       kernel)
        assert result.status == "failed"
        assert result.times == {}
        assert "SolverTimeout" in result.error

    def test_speedup_is_nan_for_missing_variants(self):
        pipe = AkgPipeline(sample_blocks=2)
        kernel = operators.elementwise_chain_op("iso3", rows=64, cols=8)
        with use_faults(parse_plan("compile=timeout")):
            result = evaluate_operator(pipe, kernel.name, "elementwise",
                                       kernel)
        assert result.speedup("infl") != result.speedup("infl")  # NaN


class TestSerialParallelParity:
    """The acceptance scenario: a fault-forced solver timeout on the infl
    variant degrades the operator identically under serial and --jobs 2
    evaluation, with exactly one resilience.fallback activation."""

    CONFIG = EvaluationConfig(limit_per_network=1, sample_blocks=2)

    def test_degradation_records_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", INFL_ONLY)
        serial = evaluate_network("LSTM", self.CONFIG)
        parallel = evaluate_network("LSTM", self.CONFIG, jobs=2)
        for result in (serial, parallel):
            assert result.count_degraded == 1
            assert result.count_failed == 0
            op = result.operators[0]
            assert op.status == "degraded"
            assert op.degradation == {"infl": "no-influence"}
            counters = result.metrics["counters"]
            assert counters["resilience.fallback"] == 1
        assert [op.degradation for op in serial.operators] == \
               [op.degradation for op in parallel.operators]
        assert [op.times for op in serial.operators] == \
               [op.times for op in parallel.operators]

    def test_worker_crash_retried_serially(self, monkeypatch):
        clean = evaluate_network("LSTM", self.CONFIG)
        monkeypatch.setenv("REPRO_FAULT_PLAN", "worker=crash")
        crashed = evaluate_network("LSTM", self.CONFIG, jobs=2)
        # Crashes only fire inside pool workers; the parent's serial retry
        # reproduces exactly what a healthy worker would have computed.
        assert crashed.metrics["counters"]["resilience.worker_retries"] >= 1
        assert [op.times for op in crashed.operators] == \
               [op.times for op in clean.operators]
        assert all(op.status == "ok" for op in crashed.operators)


class TestPolyhedronBranchLimit:
    def test_branch_limit_counted_not_swallowed(self):
        # Rational-feasible (x = 7919/2) but integer-infeasible; a zero
        # node cap forces the branch-and-bound give-up path.
        poly = Polyhedron(["x"], [(var("x") * 2).eq(7919),
                                  var("x") >= 0, var("x") <= 10000])
        obs = Obs()
        with use_obs(obs):
            assert poly.is_empty(max_nodes=0) is False  # safe over-approx
        assert obs.metrics.counters["sets.emptiness_branch_limit"] == 1


class TestEvaluationConfigDefaults:
    def test_weights_not_shared_between_instances(self):
        first, second = EvaluationConfig(), EvaluationConfig()
        assert first.weights is not second.weights


class TestCliExitCodes:
    ARGS = ["--quiet", "table2", "--networks", "LSTM", "--limit", "1"]

    def test_degraded_without_flag_fails(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_FAULT_PLAN", INFL_ONLY)
        assert main(self.ARGS) == 1
        out = capsys.readouterr().out
        assert "degradation summary" in out

    def test_degraded_with_allow_flag_passes(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_FAULT_PLAN", INFL_ONLY)
        assert main(self.ARGS + ["--allow-degraded"]) == 0
        assert "degraded" in capsys.readouterr().out
