"""Template baselines and the operator-class registry sync check.

The template compiler (:mod:`repro.workloads.templates`) must produce
valid, semantics-preserving, GPU-mapped launches for every operator class,
and the evaluation stack must carry its measurement as the ``template``
column end to end (runner -> table2 -> CSV -> checkpoint).
:func:`~repro.workloads.generator.validate_class_registry` must turn every
registry drift mode into an immediate error.
"""

import dataclasses

import pytest

from repro.codegen.interp import check_semantics
from repro.deps import compute_dependences
from repro.eval.checkpoint import operator_from_record, operator_to_record
from repro.eval.report import operators_csv
from repro.eval.runner import (EvaluationConfig, evaluate_network,
                               evaluate_operator)
from repro.eval.tables import format_table2, table2_row
from repro.pipeline import AkgPipeline
from repro.schedule.analysis import verify_schedule
from repro.workloads import templates
from repro.workloads.generator import (_VERIFY_BUILDERS, OPERATOR_CLASSES,
                                       validate_class_registry)
from repro.workloads.networks import NETWORKS, NetworkSpec
from repro.workloads.operators import (attention_block_op, depthwise_conv_op,
                                       softmax_like_op)
from repro.workloads.templates import (TEMPLATES, template_compile,
                                       template_kind, template_measure)


class TestTemplateCompile:
    @pytest.mark.parametrize("op_class", OPERATOR_CLASSES)
    def test_every_class_compiles_and_preserves_semantics(self, op_class):
        kernel = _VERIFY_BUILDERS[op_class](f"tmpl_{op_class}")
        launches = template_compile(kernel, op_class)
        # One launch per statement: templates never fuse.
        assert len(launches) == len(kernel.statements)
        for launch in launches:
            assert check_semantics(launch.kernel, launch.ast) == []
            relations = compute_dependences(launch.kernel)
            assert verify_schedule(launch.schedule, relations) == []

    def test_reduction_template_maps_parallel_loops(self):
        kernel = softmax_like_op("tmpl_softmax", rows=8, cols=8)
        for launch in template_compile(kernel, "softmax_like"):
            # Every statement of the family has at least one parallel
            # (row) loop the template must expose to the GPU mapping.
            assert launch.block or launch.grid

    def test_windowed_template_keeps_window_sequential(self):
        kernel = depthwise_conv_op("tmpl_dw", channels=2, height=4,
                                   width=4, kernel_size=2)
        launches = template_compile(kernel, "depthwise_conv")
        mapped_vars = {d.loop_var for launch in launches
                       for d in list(launch.grid) + list(launch.block)}
        # The window iterators must never be bound to blocks/threads.
        assert not {"r", "s"} & mapped_vars

    def test_measure_returns_time_and_kind(self):
        kernel = attention_block_op("tmpl_attn", seq=4, dmodel=4)
        result = template_measure(kernel, "attention_block", sample_blocks=2)
        assert result.time > 0
        assert result.kind == "reduce_inner"
        assert result.n_launches == len(kernel.statements)

    def test_every_class_has_a_kind(self):
        assert set(TEMPLATES) == set(OPERATOR_CLASSES)
        assert set(TEMPLATES.values()) <= {"injective", "reduce_inner"}
        assert template_kind("no_such_class") == "injective"


class TestTemplateColumn:
    @pytest.fixture(scope="class")
    def result(self):
        config = EvaluationConfig(limit_per_network=2, sample_blocks=2)
        return evaluate_network("LSTM", config)

    def test_operator_times_carry_template(self, result):
        for op in result.operators:
            assert "template" in op.times
            assert op.times["template"] > 0
            assert op.launches["template"] >= 1

    def test_direct_call_defaults_off(self):
        from repro.ir.examples import matmul
        pipeline = AkgPipeline(sample_blocks=2)
        op = evaluate_operator(pipeline, "mm", "matmul", matmul(8))
        assert "template" not in op.times

    def test_table2_and_csv_carry_template(self, result):
        row = table2_row(result)
        assert row["all"]["template_ms"] > 0
        assert "speedup_template" in row["all"]
        assert "tmpl" in format_table2([result])
        csv_text = operators_csv([result])
        assert "template_us" in csv_text.splitlines()[0]

    def test_checkpoint_roundtrip_keeps_template(self, result):
        op = result.operators[0]
        restored = operator_from_record(operator_to_record(op))
        assert restored.times.get("template") == op.times["template"]
        assert restored.launches.get("template") == op.launches["template"]


class TestRegistrySync:
    def test_current_registry_is_consistent(self):
        validate_class_registry()

    def _with_network(self, monkeypatch, spec):
        networks = dict(NETWORKS)
        networks[spec.name] = spec
        monkeypatch.setattr("repro.workloads.generator.NETWORKS", networks)

    def test_unknown_class_in_mix_rejected(self, monkeypatch):
        self._with_network(monkeypatch, NetworkSpec(
            name="Broken", kind="cv", dataset="x", total_operators=1,
            mix={"no_such_class": 1}))
        with pytest.raises(ValueError, match="unknown class"):
            validate_class_registry()

    def test_orphan_class_rejected(self, monkeypatch):
        builders = dict(
            __import__("repro.workloads.generator",
                       fromlist=["_BUILDERS"])._BUILDERS)
        builders["orphan_class"] = builders["broadcast"]
        monkeypatch.setattr("repro.workloads.generator._BUILDERS", builders)
        with pytest.raises(ValueError, match="no network mix"):
            validate_class_registry()

    def test_missing_verify_builder_rejected(self, monkeypatch):
        verify_builders = dict(_VERIFY_BUILDERS)
        verify_builders.pop("broadcast")
        monkeypatch.setattr("repro.workloads.generator._VERIFY_BUILDERS",
                            verify_builders)
        with pytest.raises(ValueError, match="verify builder"):
            validate_class_registry()

    def test_missing_template_rejected(self, monkeypatch):
        trimmed = dict(TEMPLATES)
        trimmed.pop("broadcast")
        monkeypatch.setattr(templates, "TEMPLATES", trimmed)
        with pytest.raises(ValueError, match="template"):
            validate_class_registry()

    def test_every_mix_class_exists(self):
        for spec in NETWORKS.values():
            assert set(spec.mix) <= set(OPERATOR_CLASSES)

    def test_every_class_reaches_some_network(self):
        mixed = set()
        for spec in NETWORKS.values():
            mixed |= set(spec.mix)
        assert mixed == set(OPERATOR_CLASSES)

    def test_evaluation_scope_pins_templates(self):
        from repro.eval.checkpoint import evaluation_scope
        scope = evaluation_scope(EvaluationConfig())
        assert scope["templates"] is True
        changed = dataclasses.replace(EvaluationConfig(), templates=False)
        assert evaluation_scope(changed)["templates"] is False
