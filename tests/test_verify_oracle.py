"""Differential-oracle tests: clean operators, degradation rungs, and
tamper detection via a stub pipeline."""

import pytest

from repro.faultinject import parse_plan, use_faults
from repro.ir.kparser import parse_kernel
from repro.pipeline.akg import AkgPipeline
from repro.verify.oracle import (
    differential_oracle,
    domain_points,
    instance_set,
)
from repro.workloads import operators

# Fails both full-quality and no-influence attempts of the infl variant
# (their compile site is tagged variant=infl), leaving only the
# isl-baseline rung.
TO_ISL_BASELINE = "compile=timeout@variant=infl"
# Fails only the full-quality influenced attempt.
TO_NO_INFLUENCE = "compile=timeout@variant=infl&influence=True"

SHIFTED = """\
kernel shifted_vec (N=8)
tensor In1[12]
tensor T0[12]
S0[i: 2..N + 2]: T0[i] = f(In1[i], T0[i])
"""


def small_op():
    return operators.elementwise_chain_op("oracle_small", rows=16, cols=8,
                                          length=2, extra_inputs=1)


class TestCleanOracle:
    def test_small_operator_passes_exhaustively(self):
        assert differential_oracle(small_op()) == []

    def test_large_operator_gets_analytic_tier(self):
        kernel = operators.elementwise_chain_op("oracle_large", rows=4096,
                                                cols=64)
        assert domain_points(kernel) is None
        assert differential_oracle(kernel) == []

    def test_misaligned_vector_start_allowed(self):
        # A vector loop starting at i=2 straddles one extra transaction
        # per group; the transaction bound must not fire on it.
        assert differential_oracle(parse_kernel(SHIFTED)) == []


class TestDegradationRungs:
    def test_no_influence_rung_passes(self):
        with use_faults(parse_plan(TO_NO_INFLUENCE)):
            pipeline = AkgPipeline()
            kernel = small_op()
            assert pipeline.compile(kernel, "infl").degradation \
                == "no-influence"
            assert differential_oracle(kernel, pipeline=pipeline) == []

    def test_isl_baseline_rung_passes_and_matches_baseline(self):
        with use_faults(parse_plan(TO_ISL_BASELINE)):
            pipeline = AkgPipeline()
            kernel = small_op()
            compiled = pipeline.compile(kernel, "infl")
            assert compiled.degradation == "isl-baseline"
            assert differential_oracle(kernel, pipeline=pipeline) == []

    def test_total_failure_reported_not_raised(self):
        with use_faults(parse_plan("compile=timeout")):
            problems = differential_oracle(small_op(),
                                           pipeline=AkgPipeline())
        assert problems
        assert all("compilation failed after full ladder" in p
                   for p in problems)


class _TamperedPipeline:
    """Returns the honest isl compile, but hands out a compile of a
    *different* (smaller) kernel as the influenced variant."""

    def __init__(self, impostor):
        self._real = AkgPipeline()
        self._impostor = impostor
        self.arch = self._real.arch

    def compile(self, kernel, variant):
        if variant == "infl":
            return self._real.compile(self._impostor, variant)
        return self._real.compile(kernel, variant)


class TestTamperDetection:
    def test_missing_statement_detected(self):
        kernel = operators.elementwise_chain_op("tamper", rows=16, cols=8,
                                                length=2)
        impostor = operators.elementwise_chain_op("tamper", rows=16, cols=8,
                                                  length=1)
        problems = differential_oracle(kernel,
                                       pipeline=_TamperedPipeline(impostor))
        assert any("instance sets differ" in p for p in problems)

    def test_instance_set_is_variant_independent_when_honest(self):
        kernel = small_op()
        pipeline = AkgPipeline()
        isl = pipeline.compile(kernel, "isl")
        infl = pipeline.compile(kernel, "infl")
        assert instance_set(isl) == instance_set(infl)
