"""Tests for band tiling and the tile-size autotuner."""

import pytest

from repro.codegen import generate_ast
from repro.codegen.ast import Loop, render_ast, walk
from repro.codegen.interp import check_semantics
from repro.codegen.tiling import outermost_band_chain, tile_band
from repro.ir import Kernel
from repro.ir.examples import elementwise_chain, matmul
from repro.pipeline.autotune import autotune_tile_sizes, compile_tiled
from repro.schedule import InfluencedScheduler


def compile_ast(kernel):
    scheduler = InfluencedScheduler(kernel)
    schedule = scheduler.schedule()
    return schedule, generate_ast(kernel, schedule)


class TestBandChain:
    def test_matmul_band(self):
        kernel = matmul(8)
        schedule, ast = compile_ast(kernel)
        chain = outermost_band_chain(ast, schedule, kernel.params)
        assert len(chain) == 3  # the whole permutable band (i, j, k)

    def test_chain_stops_at_band_break(self):
        kernel = elementwise_chain(8, 2)
        schedule, ast = compile_ast(kernel)
        chain = outermost_band_chain(ast, schedule, kernel.params)
        # i and j are one band; the final scalar dim is not a loop.
        assert len(chain) == 2


class TestTileBand:
    def test_structure(self):
        kernel = matmul(8)
        schedule, ast = compile_ast(kernel)
        assert tile_band(ast, schedule, kernel.params, (4, 4)) == 2
        text = render_ast(ast)
        assert "t0T" in text and "t0p" in text
        assert "t1T" in text and "t1p" in text

    def test_semantics_preserved(self):
        kernel = matmul(6)
        schedule, ast = compile_ast(kernel)
        tile_band(ast, schedule, kernel.params, (4, 2))
        assert check_semantics(kernel, ast) == []

    def test_ragged_extent_guarded(self):
        kernel = matmul(7)  # 7 % 4 != 0
        schedule, ast = compile_ast(kernel)
        tile_band(ast, schedule, kernel.params, (4, 4))
        assert check_semantics(kernel, ast) == []
        assert "if (" in render_ast(ast)

    def test_prefix_stops_at_small_size(self):
        kernel = matmul(8)
        schedule, ast = compile_ast(kernel)
        assert tile_band(ast, schedule, kernel.params, (4, 1, 4)) == 1

    def test_empty_sizes_noop(self):
        kernel = matmul(8)
        schedule, ast = compile_ast(kernel)
        before = render_ast(ast)
        assert tile_band(ast, schedule, kernel.params, ()) == 0
        assert render_ast(ast) == before

    def test_point_loops_keep_parallel_flags(self):
        kernel = elementwise_chain(8, 1)
        schedule, ast = compile_ast(kernel)
        tile_band(ast, schedule, kernel.params, (4, 4))
        points = [n for n in walk(ast)
                  if isinstance(n, Loop) and n.var.endswith("p")]
        assert points and all(p.parallel for p in points)

    def test_multi_statement_fused_tiling(self):
        kernel = elementwise_chain(8, 3)
        schedule, ast = compile_ast(kernel)
        assert tile_band(ast, schedule, kernel.params, (4, 4)) == 2
        assert check_semantics(kernel, ast) == []


class TestCompileTiled:
    def test_mapping_after_tiling(self):
        kernel = elementwise_chain(64, 1)
        mapped, tiled = compile_tiled(kernel, (16, 16), max_threads=16)
        assert tiled == 2
        assert mapped.block  # threads mapped from the tiled structure
        assert check_semantics(kernel, mapped.ast) == []

    def test_autotune_returns_best(self):
        kernel = Kernel("tr", params={"M": 64, "N": 64})
        kernel.add_tensor("A", (64, 64))
        kernel.add_tensor("B", (64, 64))
        kernel.add_statement("S", [("i", 0, "M"), ("j", 0, "N")],
                             writes=[("B", ["j", "i"])],
                             reads=[("A", ["i", "j"])])
        result = autotune_tile_sizes(kernel,
                                     candidates=((), (8, 8), (16, 16)),
                                     sample_blocks=4)
        assert len(result.candidates) == 3
        assert result.best.time == min(c.time for c in result.candidates)
        assert result.speedup_over_untiled() >= 1.0
