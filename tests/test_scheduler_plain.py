"""Tests for the scheduler without influence (plain isl-configured mode)."""

from fractions import Fraction

import pytest

from repro.deps import compute_dependences
from repro.ir.examples import elementwise_chain, matmul, running_example, transpose_add
from repro.schedule import InfluencedScheduler, SchedulerOptions
from repro.schedule.analysis import satisfaction_depth, verify_schedule


def schedule_kernel(kernel, **opts):
    scheduler = InfluencedScheduler(kernel, options=SchedulerOptions(**opts))
    return scheduler, scheduler.schedule()


class TestRunningExample:
    @pytest.fixture(scope="class")
    def result(self):
        return schedule_kernel(running_example(16))

    def test_valid(self, result):
        scheduler, schedule = result
        assert verify_schedule(schedule, scheduler.validity_relations) == []

    def test_complete(self, result):
        _, schedule = result
        assert schedule.is_complete()

    def test_outer_dimension_fused_and_parallel(self, result):
        _, schedule = result
        # Dimension 0 should be (i, i): coincident fusion on i.
        row_x = schedule.rows["X"][0]
        row_y = schedule.rows["Y"][0]
        assert row_x.coefficient_of("i") == 1
        assert row_y.coefficient_of("i") == 1
        assert schedule.dims[0].coincident
        assert schedule.dims[0].parallel

    def test_statement_order_preserved(self, result):
        """X instances run before the Y instances that consume them."""
        _, schedule = result
        params = {"N": 16}
        x_date = schedule.date_of("X", {"i": Fraction(1), "k": Fraction(2)}, params)
        y_date = schedule.date_of(
            "Y", {"i": Fraction(1), "j": Fraction(0), "k": Fraction(2)}, params)
        assert x_date < y_date

    def test_reduction_dimension_not_parallel(self, result):
        _, schedule = result
        # Some dimension carries the C self-dependence (the k loop of Y).
        assert not all(info.parallel for info in schedule.dims)


class TestMatmul:
    @pytest.fixture(scope="class")
    def result(self):
        return schedule_kernel(matmul(8))

    def test_valid_and_complete(self, result):
        scheduler, schedule = result
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        assert schedule.is_complete()

    def test_two_parallel_one_sequential(self, result):
        _, schedule = result
        flags = [info.parallel for info in schedule.dims]
        assert flags.count(True) >= 2
        assert flags.count(False) >= 1

    def test_textual_order_preference(self, result):
        _, schedule = result
        # With textual tie-break, the band should come out as (i, j, k).
        rows = schedule.rows["S"]
        assert rows[0].coefficient_of("i") == 1 and rows[0].coefficient_of("j") == 0
        assert rows[1].coefficient_of("j") == 1
        assert rows[2].coefficient_of("k") == 1

    def test_self_dependence_satisfied_at_k(self, result):
        scheduler, schedule = result
        flows = [r for r in scheduler.validity_relations
                 if r.kind == "flow" and r.source.name == "S"]
        assert flows
        assert all(satisfaction_depth(r, schedule) == 2 for r in flows)


class TestElementwiseChain:
    def test_fusion_zero_traffic_schedule(self):
        scheduler, schedule = schedule_kernel(elementwise_chain(8, length=3))
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        # All three statements share the first two (parallel) dimensions.
        for d in range(2):
            coeffs = {name: schedule.rows[name][d].iter_coeffs
                      for name in ("S0", "S1", "S2")}
            assert coeffs["S0"] == coeffs["S1"] == coeffs["S2"]
            assert schedule.dims[d].parallel

    def test_final_scalar_dimension_orders_statements(self):
        _, schedule = schedule_kernel(elementwise_chain(8, length=3))
        last = schedule.n_dims - 1
        consts = [schedule.rows[f"S{k}"][last].const for k in range(3)]
        assert consts == sorted(consts)
        assert consts[0] < consts[1] < consts[2]


class TestTransposeAdd:
    def test_valid(self):
        scheduler, schedule = schedule_kernel(transpose_add(8))
        assert verify_schedule(schedule, scheduler.validity_relations) == []
        assert schedule.is_complete()


class TestStats:
    def test_counters_populated(self):
        scheduler, schedule = schedule_kernel(running_example(8))
        assert scheduler.stats.ilp_solves > 0
        assert scheduler.stats.dimensions_built == schedule.n_dims
        assert not scheduler.stats.influence_abandoned

    def test_coincidence_retry_on_reduction(self):
        scheduler, _ = schedule_kernel(matmul(8))
        # The k dimension cannot be coincident: at least one retry happened.
        assert scheduler.stats.coincidence_retries >= 1
