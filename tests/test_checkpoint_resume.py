"""Crash-safe checkpointing and ``--resume``.

The end-to-end test SIGKILLs a real ``table2`` subprocess mid-evaluation
and asserts the resumed run's report is byte-identical to an
uninterrupted one (everything before the wall-clock pass-timing section,
which legitimately varies between runs).
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import main
from repro.eval.checkpoint import (
    CheckpointError,
    EvalCheckpoint,
    operator_from_record,
    operator_to_record,
)
from repro.eval.runner import EvaluationConfig, evaluate_all

REPORT_SPLIT = "per-pass compile time:"


def _deterministic_part(text: str) -> str:
    """Everything before the wall-clock pass-timing section."""
    return text.split(REPORT_SPLIT)[0]


def _config(**overrides) -> EvaluationConfig:
    base = dict(limit_per_network=2)
    base.update(overrides)
    return EvaluationConfig(**base)


class TestOperatorRoundtrip:
    def test_lossless_including_scheduler_stats(self):
        results = evaluate_all(_config(limit_per_network=1), ["LSTM"])
        (op,) = results["LSTM"].operators
        assert op.scheduler_stats  # the part as_record drops
        restored = operator_from_record(
            json.loads(json.dumps(operator_to_record(op))))
        assert restored == op

    def test_attempts_and_kill_reason_survive(self):
        results = evaluate_all(_config(limit_per_network=1), ["LSTM"])
        (op,) = results["LSTM"].operators
        op.attempts, op.kill_reason = 3, "hung;worker-died(exit 9)"
        restored = operator_from_record(
            json.loads(json.dumps(operator_to_record(op))))
        assert restored.attempts == 3
        assert restored.kill_reason == "hung;worker-died(exit 9)"


class TestEvalCheckpoint:
    def test_restore_schedules_only_the_remainder(self):
        config = _config()
        checkpoint = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        full = evaluate_all(config, ["LSTM"], checkpoint=checkpoint)
        assert checkpoint.counters["resilience.checkpoint.appends"] == 2

        evaluated = []
        resumed_ckpt = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        resumed = evaluate_all(config, ["LSTM"], checkpoint=resumed_ckpt,
                               resume=True,
                               progress=evaluated.append)
        # Everything restored, nothing recompiled; results identical.
        assert all("(restored)" in line for line in evaluated)
        assert resumed["LSTM"].operators == full["LSTM"].operators
        assert resumed_ckpt.counters[
            "resilience.checkpoint.restored"] == 2

    def test_config_change_invalidates_content_keys(self):
        config = _config()
        checkpoint = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        evaluate_all(config, ["LSTM"], checkpoint=checkpoint)

        other = _config(seed=1)
        other_ckpt = EvalCheckpoint.for_eval("table2", ["LSTM"], other)
        other_ckpt.restore_path = checkpoint.path  # force the old file
        progress = []
        evaluate_all(other, ["LSTM"], checkpoint=other_ckpt, resume=True,
                     progress=progress.append)
        # Different seed -> different kernels -> no content-key matches.
        assert not any("(restored)" in line for line in progress)

    def test_torn_tail_line_skipped(self):
        config = _config()
        checkpoint = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        full = evaluate_all(config, ["LSTM"], checkpoint=checkpoint)
        with open(checkpoint.path, "a") as handle:
            handle.write('{"schema":1,"content_key":"zzz","opera')
        resumed_ckpt = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        resumed = evaluate_all(config, ["LSTM"], checkpoint=resumed_ckpt,
                               resume=True)
        assert resumed["LSTM"].operators == full["LSTM"].operators

    def test_enospc_disables_checkpoint_but_not_results(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "store.append=enospc@kind=checkpoint")
        config = _config()
        clean = evaluate_all(config, ["LSTM"])
        checkpoint = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        results = evaluate_all(config, ["LSTM"], checkpoint=checkpoint)
        assert results["LSTM"].operators == clean["LSTM"].operators
        assert not os.path.exists(checkpoint.path)
        assert checkpoint.counters[
            "resilience.checkpoint.append_errors"] == 1
        assert "resilience.checkpoint.appends" not in checkpoint.counters

    def test_unknown_and_ambiguous_refs(self, tmp_path):
        config = _config()
        checkpoint = EvalCheckpoint.for_eval("table2", ["LSTM"], config)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            checkpoint.use_ref("deadbeef")
        os.makedirs(checkpoint.root, exist_ok=True)
        for name in ("aa11.jsonl", "aa22.jsonl"):
            open(os.path.join(checkpoint.root, name), "w").close()
        with pytest.raises(CheckpointError, match="ambiguous"):
            checkpoint.use_ref("aa")
        checkpoint.use_ref("aa1")  # unique prefix resolves
        assert checkpoint.restore_path.endswith("aa11.jsonl")


class TestCliResume:
    def test_resume_report_byte_identical(self, capsys):
        args = ["--quiet", "table2", "--networks", "LSTM", "--limit", "2",
                "--no-record"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert _deterministic_part(resumed) == _deterministic_part(first)

    def test_resume_unknown_checkpoint_exits_2(self, capsys):
        assert main(["--quiet", "table2", "--networks", "LSTM",
                     "--limit", "1", "--no-record",
                     "--resume", "deadbeef"]) == 2
        capsys.readouterr()


def _repro_env() -> dict:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSigkillResumeEndToEnd:
    """Kill a real `table2` run mid-evaluation; resume must complete and
    match an uninterrupted run byte for byte."""

    ARGS = ["-m", "repro", "-q", "table2", "--networks", "ResNet50",
            "--limit", "0", "--no-record"]

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        env = _repro_env()
        reference = subprocess.run(
            [sys.executable] + self.ARGS + ["--no-checkpoint"],
            env=env, capture_output=True, text=True, timeout=300)
        assert reference.returncode == 0, reference.stderr

        runs_dir = str(tmp_path / "runs")
        env["REPRO_RUNS_DIR"] = runs_dir
        proc = subprocess.Popen([sys.executable] + self.ARGS, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            lines = 0
            while time.monotonic() < deadline and proc.poll() is None:
                files = glob.glob(os.path.join(runs_dir, "checkpoints",
                                               "*.jsonl"))
                if files:
                    with open(files[0]) as handle:
                        lines = sum(1 for _ in handle)
                    if lines >= 3:
                        break
                time.sleep(0.01)
        finally:
            proc.kill() if proc.poll() is None else None
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert lines >= 3, "run finished before it could be killed mid-way"

        resumed = subprocess.run(
            [sys.executable] + self.ARGS + ["--resume"], env=env,
            capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        assert _deterministic_part(resumed.stdout) == \
            _deterministic_part(reference.stdout)


class TestSigpipe:
    def test_obs_list_broken_pipe_exits_141(self):
        # stdout is a pipe whose read end is already closed: the flush
        # inside main() hits EPIPE and must map to the silent 141.
        read_fd, write_fd = os.pipe()
        os.close(read_fd)
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "obs", "list"],
                env=_repro_env(), stdout=write_fd,
                stderr=subprocess.DEVNULL, timeout=60)
        finally:
            os.close(write_fd)
        assert proc.returncode == 141
