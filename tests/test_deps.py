"""Tests for dependence analysis on reference kernels."""

from fractions import Fraction

import pytest

from repro.deps import DependenceGraph, compute_dependences
from repro.ir import Kernel
from repro.ir.examples import elementwise_chain, matmul, running_example, transpose_add
from repro.solver.problem import LinExpr, var


def rels_of(kernel, **kw):
    return compute_dependences(kernel, **kw)


def find(relations, kind=None, source=None, target=None, tensor=None):
    out = []
    for r in relations:
        if kind and r.kind != kind:
            continue
        if source and r.source.name != source:
            continue
        if target and r.target.name != target:
            continue
        if tensor and r.tensor_name != tensor:
            continue
        out.append(r)
    return out


class TestRunningExample:
    @pytest.fixture(scope="class")
    def relations(self):
        return rels_of(running_example(8))

    def test_flow_x_to_y_on_b(self, relations):
        flows = find(relations, kind="flow", source="X", target="Y", tensor="B")
        assert len(flows) == 1
        assert flows[0].level == 0  # X's nest entirely precedes Y's

    def test_self_flow_y_on_c(self, relations):
        # C[i][j] is read and written by Y across k iterations.
        self_flows = find(relations, kind="flow", source="Y", target="Y", tensor="C")
        assert len(self_flows) >= 1

    def test_no_reverse_dependence(self, relations):
        assert not find(relations, source="Y", target="X")

    def test_kinds_present(self, relations):
        kinds = {r.kind for r in relations}
        assert "flow" in kinds
        # Y both reads and writes C at the same iteration set -> anti and
        # output self-dependences across the k loop as well.
        assert "output" in kinds
        assert "anti" in kinds

    def test_input_deps_off_by_default(self, relations):
        assert not find(relations, kind="input")

    def test_input_deps_on_request(self):
        relations = rels_of(running_example(8), include_input=True)
        assert find(relations, kind="input")

    def test_flow_b_relation_content(self, relations):
        rel = find(relations, kind="flow", source="X", target="Y", tensor="B")[0]
        poly = rel.polyhedron
        # Equal i and equal k between X's write and Y's read of B.
        point = {
            "i__s": Fraction(2), "k__s": Fraction(3),
            "i__t": Fraction(2), "j__t": Fraction(0), "k__t": Fraction(3),
            "N": Fraction(8),
        }
        assert poly.contains(point)
        bad = dict(point)
        bad["k__t"] = Fraction(4)
        assert not poly.contains(bad)


class TestSatisfactionQueries:
    @pytest.fixture(scope="class")
    def flow_b(self):
        relations = rels_of(running_example(8))
        return find(relations, kind="flow", source="X", target="Y", tensor="B")[0]

    def test_identity_weak(self, flow_b):
        # phi = i for both: equal i on the relation -> weakly satisfied.
        phi = var("i")
        assert flow_b.weakly_satisfied_by(phi, phi)
        assert not flow_b.strongly_satisfied_by(phi, phi)

    def test_zero_distance(self, flow_b):
        phi = var("i")
        assert flow_b.zero_distance_on(phi, phi)

    def test_strong_satisfaction_by_constants(self, flow_b):
        # Schedule X at 0 and Y at 1 (outer scalar dimension).
        assert flow_b.strongly_satisfied_by(LinExpr(const=0), LinExpr(const=1))

    def test_violation(self, flow_b):
        # Schedule X after Y: violates even weak satisfaction.
        assert not flow_b.weakly_satisfied_by(LinExpr(const=1), LinExpr(const=0))

    def test_k_is_not_zero_distance(self, flow_b):
        # phi_X = k, phi_Y = j: distances vary -> not coincident.
        assert not flow_b.zero_distance_on(var("k"), var("j"))


class TestSelfDependenceLevels:
    def test_matmul_reduction_level(self):
        relations = rels_of(matmul(6))
        self_rels = find(relations, source="S", target="S", tensor="C")
        assert self_rels, "matmul must carry a self-dependence on C"
        # The loop carrying the dependence is k, the third iterator; in the
        # interleaved order (b0, i, b1, j, b2, k, b3) that is entry 5.
        levels = {r.level for r in self_rels}
        assert levels == {5}

    def test_elementwise_chain_is_pipeline(self):
        relations = rels_of(elementwise_chain(6, length=3))
        flows = find(relations, kind="flow")
        pairs = {(r.source.name, r.target.name) for r in flows}
        assert ("S0", "S1") in pairs and ("S1", "S2") in pairs
        assert ("S0", "S2") not in pairs  # no shared tensor

    def test_transpose_add(self):
        relations = rels_of(transpose_add(6))
        flows = find(relations, kind="flow", source="T", target="E", tensor="B")
        assert len(flows) == 1


class TestDependenceGraph:
    def test_chain_components(self):
        kernel = elementwise_chain(4, length=3)
        graph = DependenceGraph(kernel.statements, rels_of(kernel))
        comps = graph.topological_components()
        assert comps == [["S0"], ["S1"], ["S2"]]

    def test_self_edges_ignored(self):
        kernel = matmul(4)
        graph = DependenceGraph(kernel.statements, rels_of(kernel))
        assert graph.strongly_connected_components() == [["S"]]

    def test_component_of(self):
        kernel = running_example(4)
        graph = DependenceGraph(kernel.statements, rels_of(kernel))
        assert graph.component_of("X") == ["X"]
        with pytest.raises(KeyError):
            graph.component_of("nope")

    def test_cycle_detection(self):
        # Build an artificial mutual dependence: P writes U reads V,
        # Q writes V reads U -> in a loop-carried way both directions exist.
        kernel = Kernel("cycle", params={"N": 4})
        kernel.add_tensor("U", (4,))
        kernel.add_tensor("V", (4,))
        kernel.add_statement("P", [("i", 0, "N")],
                             writes=[("U", ["i"])], reads=[("V", ["i"])])
        kernel.add_statement("Q", [("i", 0, "N")],
                             writes=[("V", ["i"])], reads=[("U", ["i"])])
        relations = rels_of(kernel)
        # P -> Q flow on U (P before Q textually); Q -> P anti on V
        # (P reads V before Q writes it).
        graph = DependenceGraph(kernel.statements, relations)
        # anti dependence Q<-P means edge P->Q; flow P->Q as well: no cycle
        # unless both directions appear.
        comps = graph.strongly_connected_components()
        assert all(len(c) >= 1 for c in comps)

    def test_unknown_statement_rejected(self):
        k1 = running_example(4)
        k2 = elementwise_chain(4)
        with pytest.raises(ValueError):
            DependenceGraph(k1.statements, rels_of(k2))


class TestSemanticGroundTruth:
    def test_relation_pairs_match_bruteforce(self):
        """Every relation pair corresponds to a genuine conflict in original
        order, and every brute-force conflict is covered by some relation."""
        kernel = running_example(3)
        relations = rels_of(kernel)
        n = Fraction(3)

        # Brute-force conflicts on tensor B between X and Y.
        x = kernel.statement("X")
        y = kernel.statement("Y")
        expected = set()
        for xs in x.iteration_points(kernel.params):
            for ys in y.iteration_points(kernel.params):
                if xs["i"] == ys["i"] and xs["k"] == ys["k"]:
                    expected.add((xs["i"], xs["k"], ys["i"], ys["j"], ys["k"]))

        flow = find(relations, kind="flow", source="X", target="Y", tensor="B")[0]
        covered = set()
        for i_s in range(3):
            for k_s in range(3):
                for i_t in range(3):
                    for j_t in range(3):
                        for k_t in range(3):
                            point = {
                                "i__s": Fraction(i_s), "k__s": Fraction(k_s),
                                "i__t": Fraction(i_t), "j_t": Fraction(0),
                                "j__t": Fraction(j_t), "k__t": Fraction(k_t),
                                "N": n,
                            }
                            point = {d: point[d] for d in flow.polyhedron.dims}
                            if flow.polyhedron.contains(point):
                                covered.add((Fraction(i_s), Fraction(k_s),
                                             Fraction(i_t), Fraction(j_t),
                                             Fraction(k_t)))
        assert covered == expected
