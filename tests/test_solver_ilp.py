"""Tests for branch-and-bound ILP, lexmin, and the Problem builder."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (
    Constraint,
    LinearProgram,
    LinExpr,
    LPStatus,
    Problem,
    integer_feasible,
    lexicographic_minimize,
    solve_ilp,
    var,
)
from repro.solver.ilp import BranchLimitExceeded


def boxed_lp(obj, a_ub=(), b_ub=(), lo=0, hi=10):
    n = len(obj)
    return LinearProgram(
        objective=list(obj),
        a_ub=[list(r) for r in a_ub], b_ub=list(b_ub),
        lower=[Fraction(lo)] * n, upper=[Fraction(hi)] * n,
    )


class TestILP:
    def test_integrality_forced(self):
        # LP optimum of max x + y s.t. 2x + 2y <= 5 is fractional (2.5).
        result = solve_ilp(boxed_lp([-1, -1], a_ub=[[2, 2]], b_ub=[5]))
        assert result.status is LPStatus.OPTIMAL
        assert result.objective == -2
        assert all(v.denominator == 1 for v in result.x)

    def test_knapsack_style(self):
        # max 5x + 4y s.t. 6x + 5y <= 10 -> best integer (x=1,y=0) value 5.
        result = solve_ilp(boxed_lp([-5, -4], a_ub=[[6, 5]], b_ub=[10]))
        assert result.objective == -8  # x=0,y=2 gives 8: 5*0+4*2
        # double-check feasibility of the winner
        x, y = result.x
        assert 6 * x + 5 * y <= 10

    def test_infeasible_integer(self):
        # 2x == 1 has no integer solution.
        problem = LinearProgram(objective=[0], a_eq=[[2]], b_eq=[1],
                                lower=[Fraction(0)], upper=[Fraction(5)])
        assert solve_ilp(problem).status is LPStatus.INFEASIBLE

    def test_mixed_integer(self):
        # y continuous: min -y s.t. 2y <= 3 -> y = 3/2 allowed.
        problem = boxed_lp([0, -1], a_ub=[[0, 2]], b_ub=[3])
        result = solve_ilp(problem, integer_mask=[True, False])
        assert result.x[1] == Fraction(3, 2)

    def test_branch_limit(self):
        problem = boxed_lp([-1, -1], a_ub=[[2, 2]], b_ub=[5])
        with pytest.raises(BranchLimitExceeded):
            solve_ilp(problem, max_nodes=1)

    def test_mask_length_check(self):
        with pytest.raises(ValueError):
            solve_ilp(boxed_lp([1, 1]), integer_mask=[True])

    def test_integer_feasible_true(self):
        assert integer_feasible(boxed_lp([0, 0], a_ub=[[1, 1]], b_ub=[3]))

    def test_integer_feasible_false(self):
        problem = LinearProgram(objective=[0], a_eq=[[2]], b_eq=[3],
                                lower=[Fraction(0)], upper=[Fraction(10)])
        assert not integer_feasible(problem)


class TestLexmin:
    def test_two_level(self):
        # Feasible: x + y >= 3 (as -x - y <= -3), box [0,5].
        problem = boxed_lp([0, 0], a_ub=[[-1, -1]], b_ub=[-3], hi=5)
        result = lexicographic_minimize(
            problem, [[1, 0], [0, 1]])
        # Lex-min (x, y): first drive x to 0, then y to 3.
        assert result.x == [0, 3]

    def test_order_matters(self):
        problem = boxed_lp([0, 0], a_ub=[[-1, -1]], b_ub=[-3], hi=5)
        result = lexicographic_minimize(problem, [[0, 1], [1, 0]])
        assert result.x == [3, 0]

    def test_single_level(self):
        problem = boxed_lp([0, 0], a_ub=[[-1, -1]], b_ub=[-2], hi=5)
        result = lexicographic_minimize(problem, [[1, 1]])
        assert result.objective == 2

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValueError):
            lexicographic_minimize(boxed_lp([0]), [])

    def test_infeasible_propagates(self):
        problem = boxed_lp([0], a_ub=[[1]], b_ub=[-1])
        result = lexicographic_minimize(problem, [[1]])
        assert result.status is LPStatus.INFEASIBLE


class TestLinExpr:
    def test_arith(self):
        e = 2 * var("x") + var("y") - 3
        assert e.coeffs == {"x": Fraction(2), "y": Fraction(1)}
        assert e.const == -3

    def test_sub_cancels(self):
        e = var("x") - var("x")
        assert e.is_constant()

    def test_rsub(self):
        e = 5 - var("x")
        assert e.coeffs == {"x": Fraction(-1)} and e.const == 5

    def test_evaluate(self):
        e = var("x") + 2 * var("y") + 1
        assert e.evaluate({"x": 1, "y": 2}) == 6

    def test_comparison_builds_constraint(self):
        c = (var("x") + 1 <= 5)
        assert isinstance(c, Constraint)
        assert c.sense == "<="
        assert c.satisfied_by({"x": 4})
        assert not c.satisfied_by({"x": 5})

    def test_eq_constraint(self):
        c = var("x").eq(3)
        assert c.satisfied_by({"x": 3})
        assert not c.satisfied_by({"x": 2})

    def test_bad_sense(self):
        with pytest.raises(ValueError):
            Constraint(LinExpr(), "<")


class TestProblem:
    def test_feasibility(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=10)
        p.add_constraint(x >= 4)
        sol = p.solve()
        assert sol is not None and sol["x"] >= 4

    def test_minimize(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=10)
        y = p.add_variable("y", lower=0, upper=10)
        p.add_constraint(x + y >= 3)
        sol = p.solve(objective=x + y)
        assert sol["x"] + sol["y"] == 3

    def test_lexmin(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=10)
        y = p.add_variable("y", lower=0, upper=10)
        p.add_constraint(x + y >= 3)
        sol = p.lexmin([x, y])
        assert (sol["x"], sol["y"]) == (0, 3)

    def test_infeasible_returns_none(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=1)
        p.add_constraint(x >= 2)
        assert p.solve() is None

    def test_undeclared_variable_rejected(self):
        p = Problem()
        with pytest.raises(KeyError):
            p.add_constraint(var("ghost") >= 0)

    def test_bounds_tighten(self):
        p = Problem()
        p.add_variable("x", lower=0, upper=10)
        p.add_variable("x", lower=2, upper=8)
        sol = p.solve(objective=var("x"))
        assert sol["x"] == 2

    def test_continuous_variable(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=10, integer=False)
        p.add_constraint((2 * x).eq(3))
        sol = p.solve()
        assert sol["x"] == Fraction(3, 2)

    def test_clone_independent(self):
        p = Problem()
        x = p.add_variable("x", lower=0, upper=5)
        q = p.clone()
        q.add_constraint(x >= 4)
        assert p.solve(objective=x)["x"] == 0
        assert q.solve(objective=x)["x"] == 4


@given(st.integers(0, 6), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_ilp_matches_bruteforce_1d(bound, coeff):
    """min x s.t. coeff*x >= bound over integers equals ceil division."""
    p = Problem()
    x = p.add_variable("x", lower=0, upper=100)
    p.add_constraint(coeff * x >= bound)
    sol = p.solve(objective=x)
    expected = -(-bound // coeff)  # ceil(bound / coeff)
    assert sol["x"] == expected
