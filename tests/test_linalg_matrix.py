"""Unit tests for the exact matrix class."""

from fractions import Fraction

import pytest

from repro.linalg import Matrix
from repro.linalg.rational import (
    clear_denominators,
    frac,
    primitive,
    vec_add,
    vec_dot,
    vec_scale,
    vec_sub,
)


class TestRationalHelpers:
    def test_frac_int(self):
        assert frac(3) == Fraction(3)

    def test_frac_str(self):
        assert frac("2/3") == Fraction(2, 3)

    def test_frac_rejects_float(self):
        with pytest.raises(TypeError):
            frac(0.5)

    def test_frac_rejects_bool(self):
        with pytest.raises(TypeError):
            frac(True)

    def test_vec_add(self):
        assert vec_add([frac(1), frac(2)], [frac(3), frac(4)]) == [4, 6]

    def test_vec_sub(self):
        assert vec_sub([frac(1), frac(2)], [frac(3), frac(5)]) == [-2, -3]

    def test_vec_scale(self):
        assert vec_scale([frac(1), frac(2)], "1/2") == [Fraction(1, 2), 1]

    def test_vec_dot(self):
        assert vec_dot([frac(1), frac(2)], [frac(3), frac(4)]) == 11

    def test_vec_length_mismatch(self):
        with pytest.raises(ValueError):
            vec_add([frac(1)], [frac(1), frac(2)])

    def test_clear_denominators(self):
        assert clear_denominators([Fraction(1, 2), Fraction(1, 3)]) == [3, 2]

    def test_primitive_reduces_gcd(self):
        assert primitive([4, 6, 8]) == [2, 3, 4]

    def test_primitive_zero(self):
        assert primitive([0, 0]) == [0, 0]

    def test_primitive_fractions(self):
        assert primitive([Fraction(1, 2), Fraction(3, 2)]) == [1, 3]


class TestMatrixBasics:
    def test_zeros(self):
        m = Matrix.zeros(2, 3)
        assert m.shape == (2, 3)
        assert all(x == 0 for row in m.rows for x in row)

    def test_identity(self):
        eye = Matrix.identity(3)
        assert eye[1, 1] == 1 and eye[0, 1] == 0

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_transpose(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().rows == Matrix([[1, 4], [2, 5], [3, 6]]).rows

    def test_add_sub(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert (a + b).rows == [[6, 8], [10, 12]]
        assert (b - a).rows == [[4, 4], [4, 4]]

    def test_scalar_mul(self):
        assert (2 * Matrix([[1, 2]])).rows == [[2, 4]]

    def test_matmul_matrix(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert (a @ b).rows == [[2, 1], [4, 3]]

    def test_matmul_vector(self):
        a = Matrix([[1, 2], [3, 4]])
        assert a @ [1, 1] == [3, 7]

    def test_hstack_vstack(self):
        a = Matrix([[1], [2]])
        b = Matrix([[3], [4]])
        assert a.hstack(b).rows == [[1, 3], [2, 4]]
        assert a.vstack(b).rows == [[1], [2], [3], [4]]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Matrix([[1]]) + Matrix([[1, 2]])


class TestElimination:
    def test_rref_pivots(self):
        m = Matrix([[1, 2, 3], [2, 4, 6], [1, 1, 1]])
        red, pivots = m.rref()
        assert pivots == [0, 1]
        assert m.rank() == 2

    def test_nullspace_orthogonal(self):
        m = Matrix([[1, 2, 3], [0, 1, 1]])
        for v in m.nullspace():
            assert m @ v == [0, 0]

    def test_nullspace_dimension(self):
        m = Matrix([[1, 0, 0]])
        assert len(m.nullspace()) == 2

    def test_solve_consistent(self):
        m = Matrix([[2, 1], [1, 3]])
        x = m.solve([5, 10])
        assert m @ x == [5, 10]

    def test_solve_inconsistent(self):
        m = Matrix([[1, 1], [1, 1]])
        assert m.solve([1, 2]) is None

    def test_inverse(self):
        m = Matrix([[2, 1], [1, 1]])
        inv = m.inverse()
        assert (m @ inv).rows == Matrix.identity(2).rows

    def test_inverse_singular(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [2, 4]]).inverse()

    def test_determinant(self):
        assert Matrix([[2, 1], [1, 1]]).determinant() == 1
        assert Matrix([[1, 2], [2, 4]]).determinant() == 0

    def test_determinant_sign_on_swap(self):
        assert Matrix([[0, 1], [1, 0]]).determinant() == -1
