"""Tests for cross-run analytics (repro.obs.analyze) and `repro obs`."""

import json

import pytest

from repro.cli import main
from repro.obs.analyze import (
    Delta,
    TrendSeries,
    build_trend,
    diff_runs,
)
from repro.obs.store import RunStore


def _run_record(run_id="aaaa", started=1.0, time_infl=1e-5,
                schedule_hash="h1", status="ok", network="LSTM"):
    return {
        "schema": 1,
        "run_id": run_id,
        "command": "table2",
        "started_at": started,
        "status": "ok",
        "config": {"networks": network},
        "operators": [{
            "name": "op0",
            "op_class": "elementwise",
            "times": {"isl": 2e-5, "infl": time_infl},
            "schedule_hashes": {"isl": "base", "infl": schedule_hash},
            "status": status,
            "launches": {"isl": 1, "infl": 1},
        }],
        "passes": {"schedule": {"seconds": 0.5}},
        "metrics": {"counters": {"scheduler.ilp_solves": 4.0},
                    "gauges": {}, "histograms": {}},
    }


class TestDelta:
    def test_insignificant_below_threshold(self):
        delta = Delta("x", 1.0, 1.02)
        assert not delta.significant(0.05)
        assert delta.significant(0.01)

    def test_appeared_and_disappeared_always_significant(self):
        assert Delta("x", None, 1.0).significant(0.5)
        assert Delta("x", 1.0, None).significant(0.5)

    def test_regressed_is_one_sided(self):
        assert Delta("x", 1.0, 1.2).regressed(0.1)
        assert not Delta("x", 1.2, 1.0).regressed(0.1)  # improvement


class TestDiffRuns:
    def test_identical_runs_report_zero_schedule_changes(self):
        diff = diff_runs(_run_record(run_id="aaaa"),
                         _run_record(run_id="bbbb", started=2.0))
        assert diff.n_schedule_changes == 0
        assert diff.significant_deltas() == []
        assert "schedule-hash changes: 0" in diff.render()

    def test_schedule_hash_change_detected(self):
        diff = diff_runs(_run_record(), _run_record(schedule_hash="h2"))
        assert diff.n_schedule_changes == 1
        (name, old, new) = diff.schedule_changes[0]
        assert name == "op0/infl"
        assert (old, new) == ("h1", "h2")
        assert "op0/infl: h1 -> h2" in diff.render()

    def test_timing_regression_beyond_threshold(self):
        diff = diff_runs(_run_record(time_infl=1e-5),
                         _run_record(time_infl=2e-5), threshold=0.05)
        regressions = diff.regressions()
        assert [d.name for d in regressions] == ["op0/infl"]
        assert "2.00x" in regressions[0].render()

    def test_noise_below_threshold_not_reported(self):
        diff = diff_runs(_run_record(time_infl=1.00e-5),
                         _run_record(time_infl=1.02e-5), threshold=0.05)
        assert diff.significant_deltas() == []
        assert diff.regressions() == []

    def test_status_transition_reported(self):
        diff = diff_runs(_run_record(), _run_record(status="degraded"))
        assert diff.status_changes

    def test_benchmark_records_diff(self):
        a = {"run_id": "a", "benchmarks": {"bench::one": 1.0}}
        b = {"run_id": "b", "benchmarks": {"bench::one": 1.5}}
        diff = diff_runs(a, b, threshold=0.1)
        assert [d.name for d in diff.regressions()] == ["bench::one"]


class TestTrend:
    def test_series_built_per_kernel_in_time_order(self):
        records = [_run_record(run_id="b", started=2.0, time_infl=2e-5),
                   _run_record(run_id="a", started=1.0, time_infl=1e-5)]
        report = build_trend(records)
        series = {s.name: s for s in report.series}
        assert series["LSTM/op0/infl"].values == [1e-5, 2e-5]

    def test_regression_flagged_vs_best_previous(self):
        records = [_run_record(run_id="a", started=1.0, time_infl=1e-5),
                   _run_record(run_id="b", started=2.0, time_infl=2e-5)]
        report = build_trend(records, threshold=0.05)
        assert [s.name for s in report.regressions()] == ["LSTM/op0/infl"]
        assert "REGRESSED" in report.render()

    def test_improvement_not_flagged(self):
        records = [_run_record(run_id="a", started=1.0, time_infl=2e-5),
                   _run_record(run_id="b", started=2.0, time_infl=1e-5)]
        assert build_trend(records, threshold=0.05).regressions() == []

    def test_match_filters_series(self):
        report = build_trend([_run_record()], match="nomatch")
        assert report.series == []

    def test_single_point_never_regresses(self):
        series = TrendSeries("x", points=[(1.0, "a", 5.0)])
        assert series.best_previous is None

    def test_empty_report_renders(self):
        assert "(no runs stored)" in build_trend([]).render()


class TestObsCli:
    """`repro obs list|show|diff|trend|bench-append` against a tmp store
    (the autouse fixture points REPRO_RUNS_DIR at tmp_path)."""

    @pytest.fixture
    def seeded_store(self):
        store = RunStore()
        a = store.append(_run_record(run_id="", started=1.0))
        b = store.append(_run_record(run_id="", started=2.0,
                                     time_infl=2e-5, schedule_hash="h2"))
        return store, a, b

    def test_obs_list(self, seeded_store, capsys):
        assert main(["obs", "list"]) == 0
        out = capsys.readouterr().out
        _, a, b = seeded_store
        assert a in out and b in out and "table2" in out

    def test_obs_list_empty(self, capsys):
        assert main(["obs", "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_obs_show_empty(self, capsys):
        assert main(["obs", "show", "latest"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_obs_trend_empty(self, capsys):
        assert main(["obs", "trend"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_obs_show(self, seeded_store, capsys):
        _, a, _ = seeded_store
        assert main(["obs", "show", a]) == 0
        assert json.loads(capsys.readouterr().out)["run_id"] == a

    def test_obs_diff_identical_zero_changes(self, capsys):
        store = RunStore()
        a = store.append(_run_record(run_id="", started=1.0))
        b = store.append(_run_record(run_id="", started=2.0))
        assert main(["obs", "diff", a, b]) == 0
        assert "schedule-hash changes: 0" in capsys.readouterr().out

    def test_obs_diff_fail_on_regression(self, seeded_store, capsys):
        _, a, b = seeded_store
        assert main(["obs", "diff", a, b, "--fail-on-regression",
                     "--threshold", "0.10"]) == 1
        out = capsys.readouterr().out
        assert "schedule-hash changes: 1" in out
        # The improvement direction passes.
        assert main(["obs", "diff", b, a, "--fail-on-regression",
                     "--threshold", "0.10"]) == 0

    def test_obs_diff_unknown_run(self, capsys):
        assert main(["obs", "diff", "nope", "alsono"]) == 2

    def test_obs_trend(self, seeded_store, capsys):
        assert main(["obs", "trend"]) == 0
        out = capsys.readouterr().out
        assert "LSTM/op0/infl" in out and "REGRESSED" in out
        assert main(["obs", "trend", "--fail-on-regression"]) == 1

    def test_obs_bench_append_idempotent(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "datetime": "2026-08-06T08:05:24.600012+00:00",
            "benchmarks": [
                {"fullname": "bench.py::test_one",
                 "stats": {"mean": 0.25}},
            ]}))
        assert main(["obs", "bench-append", str(bench)]) == 0
        first = capsys.readouterr().out.strip()
        assert main(["obs", "bench-append", str(bench)]) == 0
        second = capsys.readouterr().out.strip()
        assert first == second  # byte-identical record -> dedup
        store = RunStore()
        assert len(store.records()) == 1
        record = store.read(first)
        assert record["benchmarks"]["bench.py::test_one"] == 0.25
        assert record["command"] == "bench"
