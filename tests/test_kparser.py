"""Tests for the textual kernel format."""

import pytest

from repro.deps import compute_dependences
from repro.ir.examples import running_example
from repro.ir.kparser import KernelParseError, parse_kernel
from repro.ir.types import FLOAT16, FLOAT32
from repro.schedule import InfluencedScheduler
from repro.schedule.analysis import verify_schedule

RUNNING = """
# the paper's running example
kernel fused_mul_sub_mul_tensoradd (N=16)
tensor A[N][N]
tensor B[N][N]
tensor C[N][N]
tensor D[N][N][N]
X[i: 0..N, k: 0..N]: B[i][k] = f(A[i][k])
Y[i: 0..N, j: 0..N, k: 0..N] flops=3: C[i][j] = g(C[i][j], B[i][k], D[k][i][j])
"""


class TestParsing:
    def test_running_example_matches_builder(self):
        parsed = parse_kernel(RUNNING)
        built = running_example(16)
        assert [s.name for s in parsed.statements] == \
            [s.name for s in built.statements]
        for ps, bs in zip(parsed.statements, built.statements):
            assert ps.iterators == bs.iterators
            assert ps.flops == bs.flops
            assert [str(a) for a in ps.accesses] == \
                [str(a) for a in bs.accesses]

    def test_dtype_parsing(self):
        k = parse_kernel("""
kernel t (N=8)
tensor A[N] : float16
tensor B[N] : f32
S[i: 0..N]: B[i] = f(A[i])
""")
        assert k.tensors["A"].dtype == FLOAT16
        assert k.tensors["B"].dtype == FLOAT32

    def test_affine_subscripts_and_bounds(self):
        k = parse_kernel("""
kernel tri (N=8)
tensor A[N][N]
S[i: 0..N, j: 0..i + 1]: A[i][j] = f(A[i][j])
""")
        points = k.statements[0].iteration_points(k.params)
        assert len(points) == 8 * 9 // 2

    def test_integer_extents(self):
        k = parse_kernel("""
kernel fixed (N=4)
tensor A[4][8]
S[i: 0..N]: A[i][0] = f(A[i][1])
""")
        assert k.tensors["A"].shape == (4, 8)

    def test_multiple_writes(self):
        k = parse_kernel("""
kernel two (N=4)
tensor A[N]
tensor B[N]
S[i: 0..N]: A[i], B[i] = f(A[i])
""")
        assert len(k.statements[0].writes) == 2

    def test_scheduling_parsed_kernel(self):
        kernel = parse_kernel(RUNNING)
        scheduler = InfluencedScheduler(
            kernel, relations=compute_dependences(kernel))
        schedule = scheduler.schedule()
        assert verify_schedule(schedule, scheduler.validity_relations) == []


class TestErrors:
    def err(self, text):
        with pytest.raises(KernelParseError) as info:
            parse_kernel(text)
        return str(info.value)

    def test_empty(self):
        assert "empty" in self.err("")

    def test_missing_header(self):
        assert "header" in self.err("tensor A[4]")

    def test_bad_param(self):
        assert "PARAM=INT" in self.err("kernel k (N)")

    def test_unknown_dtype(self):
        msg = self.err("kernel k (N=4)\ntensor A[N] : complex128")
        assert "dtype" in msg

    def test_unknown_extent(self):
        msg = self.err("kernel k (N=4)\ntensor A[M]")
        assert "extent" in msg

    def test_bad_statement(self):
        msg = self.err("kernel k (N=4)\ntensor A[N]\nS[i]: A[i] = f(A[i])")
        assert "lo..hi" in msg

    def test_missing_equals(self):
        msg = self.err("kernel k (N=4)\ntensor A[N]\nS[i: 0..N]: A[i]")
        assert "'='" in msg

    def test_unknown_tensor_in_statement(self):
        msg = self.err("kernel k (N=4)\nS[i: 0..N]: Z[i] = f(Z[i])")
        assert "Z" in msg

    def test_duplicate_header(self):
        msg = self.err("kernel a (N=4)\nkernel b (N=4)")
        assert "duplicate" in msg

    def test_line_numbers_reported(self):
        msg = self.err("kernel k (N=4)\ntensor A[N]\n\nbogus line here")
        assert "line 4" in msg


class TestErrorLineNumbers:
    """Every parse error carries the offending line, both as a structured
    ``line_no`` attribute and in the rendered message."""

    def err_at(self, text):
        with pytest.raises(KernelParseError) as info:
            parse_kernel(text)
        assert f"line {info.value.line_no}:" in str(info.value)
        return info.value

    def test_malformed_param_value(self):
        error = self.err_at("kernel k (N=x)")
        assert error.line_no == 1
        assert "integer value" in str(error)

    def test_unknown_extent_symbol(self):
        error = self.err_at("kernel k (N=4)\ntensor A[M]")
        assert error.line_no == 2
        assert "extent" in str(error)

    def test_nonpositive_extent(self):
        error = self.err_at("kernel k (N=4)\ntensor A[N]\ntensor B[0]")
        assert error.line_no == 3
        assert "extent" in str(error)

    def test_duplicate_statement_name(self):
        error = self.err_at("kernel k (N=4)\ntensor A[N]\n"
                            "S[i: 0..N]: A[i] = f()\n"
                            "S[i: 0..N]: A[i] = f()")
        assert error.line_no == 4
        assert "already exists" in str(error)

    def test_empty_subscript(self):
        error = self.err_at("kernel k (N=4)\ntensor A[N]\n"
                            "S[i: 0..N]: A[] = f()")
        assert error.line_no == 3
        assert "subscript" in str(error)

    def test_malformed_bounds(self):
        error = self.err_at("kernel k (N=4)\ntensor A[N]\n\n\n"
                            "S[i = 0..N]: A[i] = f()")
        assert error.line_no == 5
