"""Property tests for lexicographic-objective folding and presolve.

The scheduler decides every dimension through ``fold_objectives`` (one
weighted ILP instead of N sequential lexmin solves) and ``presolved``
(Farkas-multiplier elimination).  Both must be exact; these tests check
them against the reference paths on random problems.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import Problem, var
from repro.solver.problem import LinExpr


def random_problem(draw_vars, constraints):
    problem = Problem()
    names = [f"x{i}" for i in range(draw_vars)]
    for name in names:
        problem.add_variable(name, lower=0, upper=5)
    for coeffs, rhs in constraints:
        expr = LinExpr()
        for name, c in zip(names, coeffs):
            expr = expr + c * var(name)
        problem.add_constraint(expr >= rhs)
    return problem, names


@given(
    st.lists(st.tuples(
        st.lists(st.integers(-2, 3), min_size=3, max_size=3),
        st.integers(0, 6)), min_size=1, max_size=3),
    st.lists(st.lists(st.integers(0, 2), min_size=3, max_size=3),
             min_size=2, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_fold_matches_lexmin(constraints, objective_rows):
    """Folded single-solve == true sequential lexicographic minimization."""
    problem, names = random_problem(3, constraints)
    objectives = []
    for row in objective_rows:
        expr = LinExpr()
        for name, c in zip(names, row):
            expr = expr + c * var(name)
        objectives.append(expr)

    lex = problem.lexmin(objectives)
    folded_expr = problem.fold_objectives(objectives)
    assert folded_expr is not None
    fold = problem.solve(objective=folded_expr)

    assert (lex is None) == (fold is None)
    if lex is not None:
        # The objective *vectors* must agree (points may differ on ties
        # beyond the listed objectives).
        lex_vector = [obj.evaluate(lex) for obj in objectives]
        fold_vector = [obj.evaluate(fold) for obj in objectives]
        assert lex_vector == fold_vector


def test_fold_requires_bounds():
    problem = Problem()
    x = problem.add_variable("x", lower=0)  # unbounded above
    assert problem.fold_objectives([x]) is None


@given(
    st.lists(st.tuples(
        st.lists(st.integers(-2, 3), min_size=3, max_size=3),
        st.integers(0, 6)), min_size=1, max_size=3),
    st.lists(st.integers(-2, 2), min_size=3, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_presolve_matches_reference(constraints, objective_row):
    """Solving with and without presolve yields the same optimum."""
    problem, names = random_problem(3, constraints)
    # Add a continuous helper variable tied by an equality (the Farkas
    # multiplier pattern presolve is built for).
    lam = problem.add_variable("lam", lower=0, integer=False)
    problem.add_constraint((lam - var("x0") - var("x1")).eq(0))

    objective = LinExpr()
    for name, c in zip(names, objective_row):
        objective = objective + c * var(name)

    with_presolve = problem.solve(objective=objective, presolve=True)
    without = problem.solve(objective=objective, presolve=False)
    assert (with_presolve is None) == (without is None)
    if with_presolve is not None:
        assert objective.evaluate(with_presolve) == \
            objective.evaluate(without)
        # The eliminated variable's recovered value satisfies its equality.
        assert with_presolve["lam"] == \
            with_presolve["x0"] + with_presolve["x1"]


def test_presolve_keeps_protected_variables():
    problem = Problem()
    x = problem.add_variable("x", lower=0, upper=4)
    lam = problem.add_variable("lam", lower=0, integer=False)
    problem.add_constraint((lam - x).eq(0))
    reduced, eliminated = problem.presolved(protect={"lam"})
    assert "lam" in reduced.variables
    assert not eliminated
