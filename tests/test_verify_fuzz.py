"""Fuzzer determinism, spec round-trips, minimization, and the tier-1
corpus replay anchor."""

import random

import pytest

from repro.ir.kparser import parse_kernel
from repro.verify.fuzz import (
    NOMINAL_CASES_PER_SECOND,
    corpus_files,
    replay_corpus,
    run_fuzz,
    spec_digest,
    write_reproducer,
)
from repro.verify.generator import (
    minimize_spec,
    random_spec,
    spec_to_kernel,
    spec_to_text,
)


class TestGenerator:
    def test_random_spec_is_seed_deterministic(self):
        a = random_spec(random.Random(42), index=5)
        b = random_spec(random.Random(42), index=5)
        assert a == b

    def test_spec_text_parses_to_equivalent_kernel(self):
        for seed in range(6):
            spec = random_spec(random.Random(seed), index=seed)
            built = spec_to_kernel(spec)
            parsed = parse_kernel(spec_to_text(spec))
            assert parsed.name == built.name
            assert parsed.params == built.params
            assert [s.name for s in parsed.statements] \
                == [s.name for s in built.statements]
            for ps, bs in zip(parsed.statements, built.statements):
                assert ps.iteration_points(parsed.params) \
                    == bs.iteration_points(built.params)

    def test_digest_is_content_keyed(self):
        spec = random_spec(random.Random(1), index=1)
        assert spec_digest(spec) == spec_digest(spec)
        other = random_spec(random.Random(2), index=2)
        assert spec_digest(spec) != spec_digest(other)


class TestMinimize:
    def test_shrinks_to_single_plain_statement(self):
        # Predicate: "fails" whenever statement S0 is present, so the
        # minimizer should strip everything else down to a bare S0.
        spec = random_spec(random.Random(0), index=0)
        assert len(spec.statements) > 1

        def still_fails(candidate):
            return any(s.name == "S0" for s in candidate.statements)

        minimized = minimize_spec(spec, still_fails)
        assert [s.name for s in minimized.statements] == ["S0"]
        only = minimized.statements[0]
        assert only.reads == ()
        assert all(lo == 0 and hi == "N" for _, lo, hi in only.bounds)
        assert minimized.weights_index == 0

    def test_minimized_spec_still_builds(self):
        spec = random_spec(random.Random(9), index=9)
        minimized = minimize_spec(spec, lambda s: True)
        spec_to_kernel(minimized).validate()


class TestRun:
    def test_same_seed_renders_bit_identical(self):
        first = run_fuzz(seed=11, cases=3, write_corpus=False)
        second = run_fuzz(seed=11, cases=3, write_corpus=False)
        assert first.render() == second.render()

    def test_budget_converts_to_case_count(self):
        report = run_fuzz(seed=2, budget_s=2, write_corpus=False)
        assert report.cases == 2 * NOMINAL_CASES_PER_SECOND

    def test_reproducer_file_round_trips(self, tmp_path):
        spec = random_spec(random.Random(4), index=4)
        path = write_reproducer(spec, ["problem one", "problem two"],
                                seed=4, case_index=4,
                                corpus_dir=str(tmp_path))
        assert path in corpus_files(str(tmp_path))
        text = open(path).read()
        assert f"# repro fuzz reproducer {spec_digest(spec)}" in text
        assert "# found by: seed=4 case=4" in text
        assert "# problem: problem one" in text
        parsed = parse_kernel(text)  # header comments must not break replay
        assert parsed.name == spec.name

    @pytest.mark.fuzz
    def test_budget_30_seed_7_bit_identical(self):
        # The acceptance-criteria run, word for word.
        first = run_fuzz(seed=7, budget_s=30, write_corpus=False)
        second = run_fuzz(seed=7, budget_s=30, write_corpus=False)
        assert first.render() == second.render()
        assert first.ok, "\n" + first.render()


class TestCorpusReplay:
    """Tier-1 anchor: every committed reproducer stays green."""

    def test_committed_corpus_exists(self):
        assert corpus_files(), "tests/corpus/ must hold reproducers"

    def test_committed_corpus_replays_clean(self):
        problems = replay_corpus()
        assert problems == [], "\n".join(problems)

    def test_replay_flags_unparseable_files(self, tmp_path):
        (tmp_path / "broken.kernel").write_text("kernel k (N=4)\nbroken")
        problems = replay_corpus(str(tmp_path))
        assert len(problems) == 1
        assert "unparseable" in problems[0]
