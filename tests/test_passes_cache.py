"""Tests for the pass-manager compilation sessions and the content cache.

The regression class guards the refactor itself: the pass-manager pipeline
must produce exactly the compiled signatures (and modelled times) of the
former inline stage chain for all four variants on a fixed-seed suite.
"""

import math

import pytest

from repro.codegen.cuda import map_to_gpu
from repro.codegen.generate import generate_ast
from repro.codegen.vectorize import vectorize
from repro.deps.analysis import compute_dependences
from repro.influence.builder import build_influence_tree
from repro.influence.scenarios import CostWeights
from repro.ir.kernel import Kernel
from repro.pipeline import (
    AkgPipeline,
    CompilationSession,
    ScheduleCache,
    VARIANTS,
    kernel_signature,
    variant_passes,
)
from repro.pipeline.akg import CompiledOperator, _adjacent_clusters, _sub_kernel
from repro.pipeline.passes import (
    InfluenceTreePass,
    PassContext,
    format_pass_summary,
    merge_metric_dicts,
)
from repro.eval.runner import OperatorResult
from repro.schedule.scheduler import InfluencedScheduler, SchedulerOptions
from repro.workloads import generate_network_suite, operators


def legacy_compile(kernel, variant, weights=CostWeights(), max_threads=256):
    """The pre-refactor inline compilation chain (no caching, no passes)."""
    options = SchedulerOptions()

    def stages(sub, influence, enable_vec):
        relations = compute_dependences(sub)
        scheduler = InfluencedScheduler(sub, relations=relations,
                                        options=options)
        tree = build_influence_tree(sub, weights=weights) if influence else None
        schedule = scheduler.schedule(tree)
        ast = generate_ast(sub, schedule)
        ast = vectorize(ast, sub, schedule, relations, enable=enable_vec)
        return map_to_gpu(sub, ast, schedule, max_threads=max_threads)

    if variant == "isl":
        clusters, influence, enable_vec = _adjacent_clusters(kernel), False, False
    elif variant == "tvm":
        clusters = [[s] for s in kernel.statements]
        influence, enable_vec = True, False
    else:
        launch = stages(kernel, True, variant == "infl")
        return CompiledOperator(kernel=kernel, variant=variant,
                                launches=[launch])
    launches = [stages(_sub_kernel(kernel, cluster, f"_k{i}"), influence,
                       enable_vec)
                for i, cluster in enumerate(clusters)]
    return CompiledOperator(kernel=kernel, variant=variant, launches=launches)


class TestRegression:
    """Pass-manager output == legacy inline output (fixed seed)."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_signatures_match_legacy(self, variant):
        pipeline = AkgPipeline(sample_blocks=2)
        suite = generate_network_suite("LSTM", seed=0, limit=2)
        suite.append(("reduce_producer",
                      operators.reduce_producer_op("fixed_case", rows=64,
                                                   red=8)))
        for _, kernel in suite:
            ours = pipeline.compile(kernel, variant)
            legacy = legacy_compile(kernel, variant)
            assert ours.signature() == legacy.signature()
            assert ours.n_launches == legacy.n_launches
            assert pipeline.measure(ours).time == \
                pipeline.measure(legacy).time

    def test_cached_recompile_matches_legacy(self):
        """Cache-served schedules still produce the legacy signatures."""
        pipeline = AkgPipeline(sample_blocks=2)
        k1 = operators.layout_conversion_op("conv_one", 2, 16, 8, 8)
        k2 = operators.layout_conversion_op("conv_two", 2, 16, 8, 8)
        pipeline.compile(k1, "infl")
        hits_before = pipeline.cache.hits
        ours = pipeline.compile(k2, "infl")
        assert pipeline.cache.hits > hits_before
        assert ours.signature() == legacy_compile(k2, "infl").signature()


class TestPassManager:
    def test_variant_pass_lists(self):
        isl = variant_passes(influence=False, enable_vec=False)
        infl = variant_passes(influence=True, enable_vec=True)
        assert not any(isinstance(p, InfluenceTreePass) for p in isl)
        assert any(isinstance(p, InfluenceTreePass) for p in infl)
        assert [p.name for p in infl] == ["deps", "influence-tree",
                                          "schedule", "codegen",
                                          "vectorize", "gpu-map"]

    def test_context_records_all_passes(self):
        pipeline = AkgPipeline(sample_blocks=2)
        pipeline.compile(operators.reduce_producer_op("ctx_k", rows=64,
                                                      red=8), "infl")
        ctx = pipeline.context
        for name in ("deps", "influence-tree", "schedule", "codegen",
                     "vectorize", "gpu-map"):
            assert ctx.pass_calls[name] >= 1
            assert ctx.pass_seconds[name] >= 0.0
        assert ctx.counters["scheduler.ilp_solves"] > 0

    def test_session_runs_standalone(self):
        session = CompilationSession(cache=ScheduleCache())
        kernel = operators.elementwise_chain_op("standalone", rows=16,
                                                cols=8, length=1)
        state = session.run(kernel,
                            variant_passes(influence=True, enable_vec=True),
                            variant="infl")
        assert state.mapped is not None
        assert state.schedule.is_complete()
        assert state.scheduler_stats.dimensions_built > 0

    def test_trace_events(self):
        pipeline = AkgPipeline(sample_blocks=2, trace=True)
        pipeline.compile(operators.elementwise_chain_op("traced", rows=16,
                                                        cols=8, length=1),
                         "novec")
        events = pipeline.context.events
        assert any(e["event"] == "pass" and e["pass"] == "schedule"
                   for e in events)
        assert all("seconds" in e for e in events if e["event"] == "pass")

    def test_metrics_merge_roundtrip(self):
        a = PassContext()
        with a.timed("schedule"):
            pass
        a.count("cache.hits", 2)
        b = PassContext()
        with b.timed("schedule"):
            pass
        b.count("cache.misses", 3)
        merged = merge_metric_dicts([a.as_dict(), b.as_dict()])
        assert merged["passes"]["schedule"]["calls"] == 2
        assert merged["counters"] == {"cache.hits": 2, "cache.misses": 3}
        summary = format_pass_summary(merged)
        assert "schedule" in summary
        assert "2 hits / 3 misses" in summary


class TestScheduleCache:
    def test_equal_kernels_hit(self):
        """Two structurally equal but distinct Kernel objects share one
        cache entry; the schedule is reused, not recomputed."""
        pipeline = AkgPipeline(sample_blocks=2)
        k1 = operators.reduce_producer_op("cache_one", rows=64, red=8)
        k2 = operators.reduce_producer_op("cache_two", rows=64, red=8)
        c1 = pipeline.compile(k1, "infl")
        hits_before = pipeline.cache.hits
        c2 = pipeline.compile(k2, "infl")
        assert pipeline.cache.hits > hits_before
        assert c1.signature() == c2.signature()
        # The very same Schedule object serves both compilations.
        assert c2.launches[0].schedule is c1.launches[0].schedule

    def test_novec_and_infl_share_schedule(self):
        pipeline = AkgPipeline(sample_blocks=2)
        kernel = operators.reduce_producer_op("share_k", rows=64, red=8)
        novec = pipeline.compile(kernel, "novec")
        hits_before = pipeline.cache.hits
        infl = pipeline.compile(kernel, "infl")
        assert pipeline.cache.hits == hits_before + 1
        assert infl.launches[0].schedule is novec.launches[0].schedule

    def test_changed_params_miss(self):
        pipeline = AkgPipeline(sample_blocks=2)
        pipeline.compile(operators.reduce_producer_op("p_one", rows=64,
                                                      red=8), "infl")
        hits_before = pipeline.cache.hits
        pipeline.compile(operators.reduce_producer_op("p_two", rows=128,
                                                      red=8), "infl")
        assert pipeline.cache.hits == hits_before

    def test_changed_weights_miss(self):
        cache = ScheduleCache()
        kernel = operators.reduce_producer_op("w_k", rows=64, red=8)
        options = SchedulerOptions()
        key_default = cache.key_for(kernel, influence=True, options=options,
                                    weights=CostWeights())
        key_other = cache.key_for(kernel, influence=True, options=options,
                                  weights=CostWeights(w1=9.0))
        assert key_default != key_other

    def test_changed_options_miss(self):
        cache = ScheduleCache()
        kernel = operators.reduce_producer_op("o_k", rows=64, red=8)
        weights = CostWeights()
        key_a = cache.key_for(kernel, influence=True,
                              options=SchedulerOptions(), weights=weights)
        key_b = cache.key_for(kernel, influence=True,
                              options=SchedulerOptions(coeff_bound=5),
                              weights=weights)
        assert key_a != key_b

    def test_influence_flag_splits_entries(self):
        cache = ScheduleCache()
        kernel = operators.reduce_producer_op("i_k", rows=64, red=8)
        options, weights = SchedulerOptions(), CostWeights()
        assert cache.key_for(kernel, influence=True, options=options,
                             weights=weights) != \
            cache.key_for(kernel, influence=False, options=options,
                          weights=weights)

    def test_kernel_name_excluded_from_signature(self):
        k1 = operators.softmax_like_op("sig_one", rows=32, cols=8)
        k2 = operators.softmax_like_op("sig_two", rows=32, cols=8)
        assert kernel_signature(k1) == kernel_signature(k2)

    def test_unused_tensor_declarations_ignored(self):
        """Sub-kernels inherit all parent tensors; only referenced tensors
        may enter the content key."""
        def build(with_extra):
            k = Kernel("sub", params={"M": 8, "N": 4})
            k.add_tensor("A", (8, 4))
            k.add_tensor("B", (8, 4))
            if with_extra:
                k.add_tensor("Unused", (64, 64))
            k.add_statement("S", [("i", 0, "M"), ("j", 0, "N")],
                            writes=[("B", ["i", "j"])],
                            reads=[("A", ["i", "j"])])
            return k
        assert kernel_signature(build(False)) == kernel_signature(build(True))

    def test_eviction_bounds_entries(self):
        cache = ScheduleCache(max_entries=2)
        for index in range(4):
            cache.store((index,), relations=[], schedule=None)
        assert len(cache) == 2
        assert cache.lookup((0,)) is None  # evicted, counted as a miss
        assert cache.lookup((3,)) is not None

    def test_disabled_cache(self):
        pipeline = AkgPipeline(sample_blocks=2, enable_cache=False)
        assert pipeline.cache is None
        kernel = operators.elementwise_chain_op("nocache", rows=16, cols=8,
                                                length=1)
        compiled = pipeline.compile(kernel, "infl")
        assert compiled.n_launches == 1
        assert "cache.hits" not in pipeline.context.counters
        assert "cache.misses" not in pipeline.context.counters


class TestAutotuneSharesSchedules:
    def test_candidates_hit_cache(self):
        """Tiling candidates re-run only codegen/tile/map: the schedule
        comes from the shared session's content cache after candidate 1."""
        from repro.pipeline.autotune import compile_tiled
        session = CompilationSession(cache=ScheduleCache())
        kernel = operators.elementwise_chain_op("tune_k", rows=256, cols=32,
                                                length=1)
        mapped_a, _ = compile_tiled(kernel, (), session=session)
        mapped_b, tiled = compile_tiled(kernel, (8, 8), session=session)
        assert session.cache.hits == 1
        assert mapped_b.schedule is mapped_a.schedule

    def test_autotune_end_to_end(self):
        from repro.pipeline.autotune import autotune_tile_sizes
        kernel = operators.elementwise_chain_op("tune_e2e", rows=256,
                                                cols=32, length=1)
        result = autotune_tile_sizes(kernel,
                                     candidates=((), (8, 8), (16, 16)),
                                     sample_blocks=2)
        assert result.best.time > 0
        assert len(result.candidates) == 3


class TestSpeedupGuard:
    def test_zero_variant_time_is_nan(self):
        result = OperatorResult(
            name="z", op_class="x",
            times={"isl": 1.0, "tvm": 0.0, "novec": 0.5, "infl": 0.0},
            influenced=True, vectorized=False,
            launches={"isl": 1, "tvm": 1, "novec": 1, "infl": 1})
        assert math.isnan(result.speedup("tvm"))
        assert math.isnan(result.speedup("infl"))
        assert result.speedup("novec") == 2.0
